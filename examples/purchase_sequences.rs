//! Purchase-sequence mining: the "customers who buy X later buy Y"
//! analysis that motivated sequential-pattern mining. Generates a
//! synthetic customer-transaction history and mines the maximal
//! sequential patterns at several support levels.
//!
//! ```text
//! cargo run --release --example purchase_sequences
//! ```

// Example code: panicking with a clear message on failure is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::prelude::*;

fn main() {
    let generator =
        SequenceGenerator::new(SequenceConfig::standard(800), 21).expect("valid config");
    let db = generator.generate(22);
    println!(
        "customer histories: {} customers, avg {:.1} transactions each\n",
        db.len(),
        db.mean_len()
    );

    // One customer's history, for flavour.
    println!("customer 0's history:");
    for (t, txn) in db.sequence(0).iter().enumerate() {
        println!("  visit {t}: items {txn:?}");
    }

    let result = AprioriAll::new(0.03).mine(&db).expect("mining succeeds");
    println!(
        "\nat 3% customer support: {} large itemsets, {} maximal patterns",
        result.n_litemsets,
        result.patterns.len()
    );
    println!(
        "frequent sequences per length: {:?} (mined in {:.2?})",
        result.frequent_per_length, result.duration
    );

    // The ten best-supported multi-step patterns.
    let mut multi: Vec<&SequentialPattern> = result
        .patterns
        .iter()
        .filter(|p| p.elements.len() >= 2)
        .collect();
    multi.sort_by_key(|p| std::cmp::Reverse(p.support_count));
    println!("\nstrongest multi-step patterns (then -> then ...):");
    for p in multi.iter().take(10) {
        let steps: Vec<String> = p.elements.iter().map(|e| format!("{e:?}")).collect();
        println!("  {:>4} customers: {}", p.support_count, steps.join(" -> "));
    }

    // Support sweep: patterns emerge as the bar drops.
    println!("\npattern counts by support threshold:");
    for pct in [10.0, 5.0, 3.0, 2.0f64] {
        let r = AprioriAll::new(pct / 100.0)
            .mine(&db)
            .expect("mining succeeds");
        println!(
            "  minsup {pct:>4}%: {:>5} maximal patterns, longest {}",
            r.patterns.len(),
            r.frequent_per_length.len()
        );
    }
}
