//! Market-basket analysis: the motivating scenario of association-rule
//! mining. Generates a Quest retail workload, compares the miners —
//! candidate generation vs pattern growth vs vertical intersection —
//! and reports the strongest cross-sell rules.
//!
//! ```text
//! cargo run --release --example market_basket
//! ```

// Example code: panicking with a clear message on failure is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::prelude::*;
use std::time::Instant;

fn main() {
    let config = QuestConfig::standard(10.0, 4.0, 20_000);
    let name = config.name();
    let generator = QuestGenerator::new(config, 42).expect("valid config");
    let db = generator.generate(43);
    println!(
        "database {name}: {} transactions over {} items, mean basket {:.1}\n",
        db.len(),
        db.n_items(),
        db.mean_len()
    );

    // --- Compare the miners at one threshold. -------------------------
    let support = MinSupport::Fraction(0.0075);
    println!("mining at minsup 0.75%:");
    let mut reference: Option<FrequentItemsets> = None;
    for miner in [
        Box::new(Ais::new(support)) as Box<dyn ItemsetMiner>,
        Box::new(Apriori::new(support)),
        Box::new(AprioriTid::new(support)),
        Box::new(FpGrowth::new(support)),
        Box::new(Eclat::new(support)),
    ] {
        let t0 = Instant::now();
        let result = miner.mine(&db).expect("mining succeeds");
        let elapsed = t0.elapsed();
        println!(
            "  {:>12}: {:>8.2?}  ({} candidates counted over {} passes)",
            miner.name(),
            elapsed,
            result.stats.total_candidates(),
            result.stats.n_passes()
        );
        // All miners must find the identical frequent itemsets.
        match &reference {
            Some(r) => assert_eq!(r, &result.itemsets, "miners disagree!"),
            None => reference = Some(result.itemsets),
        }
    }
    let itemsets = reference.expect("at least one miner ran");
    println!(
        "\n{} frequent itemsets; per-level counts: {:?}",
        itemsets.len(),
        (1..=itemsets.max_len())
            .map(|k| itemsets.level_len(k))
            .collect::<Vec<_>>()
    );

    // --- Rules: what drives cross-sells? -------------------------------
    let rules = RuleGenerator::new(0.6)
        .generate(&itemsets)
        .expect("valid threshold");
    println!(
        "\n{} rules at 60% confidence; ten strongest by lift:",
        rules.len()
    );
    let mut by_lift = rules.clone();
    by_lift.sort_by(|a, b| b.lift.partial_cmp(&a.lift).expect("finite"));
    for rule in by_lift.iter().take(10) {
        println!("  {rule}");
    }

    // --- The threshold sweep every analyst runs. -----------------------
    println!("\nitemset counts by support threshold:");
    for pct in [2.0, 1.5, 1.0, 0.75, 0.5f64] {
        let mined = Apriori::new(MinSupport::Fraction(pct / 100.0))
            .mine(&db)
            .expect("mining succeeds");
        println!(
            "  minsup {pct:>4}%: {:>6} itemsets, deepest level {}",
            mined.itemsets.len(),
            mined.itemsets.max_len()
        );
    }
}
