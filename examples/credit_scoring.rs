//! Credit scoring: the classification workload the Agrawal benchmark was
//! designed around — decide whether an applicant belongs to group A or B
//! from demographic and financial attributes. Compares every classifier,
//! inspects the learned tree, and stress-tests label noise.
//!
//! ```text
//! cargo run --release --example credit_scoring
//! ```

// Example code: panicking with a clear message on failure is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::prelude::*;

fn main() {
    // F9 is a realistic "disposable income" predicate over salary,
    // commission, education and loan.
    let function = AgrawalFunction::F9;
    let (data, labels) = AgrawalGenerator::new(function, 3_000)
        .expect("rows > 0")
        .generate(11);
    println!(
        "scoring {} applicants, {} attributes, classes {:?}\n",
        data.n_rows(),
        data.n_cols(),
        labels.class_counts()
    );

    // --- Cross-validated comparison. -----------------------------------
    let classifiers: Vec<Box<dyn Classifier>> = vec![
        Box::new(TreeClassifier::new(
            DecisionTreeLearner::new()
                .with_criterion(SplitCriterion::GainRatio)
                .with_pruning(Pruning::Pessimistic { cf: 0.25 }),
        )),
        Box::new(TreeClassifier::new(
            DecisionTreeLearner::new().with_criterion(SplitCriterion::Gini),
        )),
        Box::new(BayesClassifier::default()),
        Box::new(KnnClassifier::new(
            Knn::new(7).with_weighting(Weighting::InverseDistance),
        )),
        Box::new(OneRClassifier::default()),
    ];
    println!(
        "{:>15} {:>9} {:>9} {:>10} {:>9}",
        "classifier", "accuracy", "std", "fit", "predict"
    );
    for c in &classifiers {
        let r = cross_validate(c.as_ref(), &data, &labels, 5, 0).expect("cv succeeds");
        println!(
            "{:>15} {:>9.3} {:>9.3} {:>9.1?} {:>9.1?}",
            r.name, r.mean_accuracy, r.std_accuracy, r.fit_time, r.predict_time
        );
    }

    // --- Interpretability: print the pruned tree's upper levels. -------
    let tree = DecisionTreeLearner::new()
        .with_max_depth(3)
        .with_pruning(Pruning::Pessimistic { cf: 0.25 })
        .fit(&data, &labels)
        .expect("fits");
    println!(
        "\ndepth-3 explanation tree ({} nodes, {} leaves):\n{}",
        tree.n_nodes(),
        tree.n_leaves(),
        tree.render()
    );

    // --- The C4.5rules view: a readable decision list. -----------------
    use datamining_suite::datamining::tree::rules_from_tree;
    let rule_tree = DecisionTreeLearner::new()
        .with_max_depth(4)
        .with_pruning(Pruning::Pessimistic { cf: 0.25 })
        .fit(&data, &labels)
        .expect("fits");
    let ruleset = rules_from_tree(&rule_tree, &data, &labels).expect("same rows");
    println!("top extracted rules (of {}):", ruleset.rules.len());
    for rule in ruleset.rules.iter().take(5) {
        println!("  {rule}");
    }
    let rule_acc = ruleset
        .predict(&data)
        .iter()
        .zip(labels.codes())
        .filter(|(p, t)| p == t)
        .count() as f64
        / data.n_rows() as f64;
    println!("rule-list training accuracy: {rule_acc:.3}\n");

    // --- Per-class quality: the confusion matrix. -----------------------
    let r = cross_validate(
        &TreeClassifier::new(
            DecisionTreeLearner::new().with_pruning(Pruning::Pessimistic { cf: 0.25 }),
        ),
        &data,
        &labels,
        5,
        0,
    )
    .expect("cv succeeds");
    println!("pooled confusion matrix over CV folds:\n{}", r.confusion);
    for class in 0..labels.n_classes() {
        println!(
            "class {class} ({}): precision {:.3}, recall {:.3}, f1 {:.3}",
            labels.dict().name(class as u32).expect("in range"),
            r.confusion.precision(class),
            r.confusion.recall(class),
            r.confusion.f1(class)
        );
    }

    // --- How dirty labels hurt, and how pruning helps. ------------------
    println!("\nlabel-noise stress test (accuracy on clean holdout):");
    let (test, test_labels) = AgrawalGenerator::new(function, 1_000)
        .expect("rows > 0")
        .generate(12);
    for noise in [0.0, 0.1, 0.2f64] {
        let noisy = flip_labels(&labels, noise, 99).expect("two classes");
        let unpruned = DecisionTreeLearner::new().fit(&data, &noisy).expect("fits");
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit(&data, &noisy)
            .expect("fits");
        let acc = |t: &datamining_suite::datamining::tree::DecisionTree| {
            t.predict(&test)
                .iter()
                .zip(test_labels.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / test.n_rows() as f64
        };
        println!(
            "  {:>3.0}% noise: unpruned {:.3} ({} nodes) | pruned {:.3} ({} nodes)",
            noise * 100.0,
            acc(&unpruned),
            unpruned.n_nodes(),
            acc(&pruned),
            pruned.n_nodes()
        );
    }
}
