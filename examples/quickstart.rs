//! Quickstart: one tour through the three pillars of the toolkit —
//! association rules, clustering and classification — on synthetic data.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Example code: panicking with a clear message on failure is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::prelude::*;

fn main() {
    // ----- 1. Association rules (market-basket data) ------------------
    println!("=== association rules ===");
    let quest = QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 2_000), 1).expect("config");
    let db = quest.generate(2);
    println!(
        "mined database {} with {} transactions (avg len {:.1})",
        quest.config().name(),
        db.len(),
        db.mean_len()
    );
    // `Method::Auto` picks the miner from the database's shape; pin
    // `Method::Apriori`, `Method::FpGrowth`, ... to choose explicitly —
    // every method returns bit-identical itemsets.
    let mined = mine(&db, MinSupport::Fraction(0.01), Method::Auto).expect("mining succeeds");
    println!(
        "{} frequent itemsets (largest has {} items) in {} passes",
        mined.itemsets.len(),
        mined.itemsets.max_len(),
        mined.stats.n_passes()
    );
    let rules = RuleGenerator::new(0.8)
        .generate(&mined.itemsets)
        .expect("valid threshold");
    println!("top rules at 80% confidence:");
    for rule in rules.iter().take(5) {
        println!("  {rule}");
    }

    // ----- 2. Clustering (customer-like point cloud) ------------------
    println!("\n=== clustering ===");
    let (points, truth) = GaussianMixture::well_separated(4, 2, 250, 8.0)
        .expect("mixture")
        .generate(3);
    let clustering = KMeans::new(4).with_seed(4).fit(&points).expect("k <= n");
    let ari = adjusted_rand_index(&truth, &clustering.assignments).expect("same length");
    println!(
        "k-means++ on {} points: ARI {:.3}, sizes {:?}",
        points.rows(),
        ari,
        clustering.cluster_sizes()
    );

    // ----- 3. Classification (the Agrawal benchmark) ------------------
    println!("\n=== classification ===");
    let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 1_500)
        .expect("rows > 0")
        .generate(5);
    for classifier in [
        Box::new(TreeClassifier::default()) as Box<dyn Classifier>,
        Box::new(BayesClassifier::default()),
        Box::new(OneRClassifier::default()),
    ] {
        let result =
            cross_validate(classifier.as_ref(), &data, &labels, 5, 0).expect("cv succeeds");
        println!(
            "{:>14}: {:.3} ± {:.3} (5-fold CV)",
            result.name, result.mean_accuracy, result.std_accuracy
        );
    }
}
