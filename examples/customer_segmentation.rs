//! Customer segmentation: cluster a two-dimensional "spend vs visits"
//! point cloud with every clusterer in the toolkit and compare quality,
//! robustness to noise, and the dendrogram view.
//!
//! ```text
//! cargo run --release --example customer_segmentation
//! ```

// Example code: panicking with a clear message on failure is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use datamining_suite::datamining::cluster::Dendrogram;
use datamining_suite::datamining::dataset::scale::{Scaler, StandardScaler};
use datamining_suite::datamining::prelude::*;

fn segments() -> GaussianMixture {
    // Four stylized customer segments (spend, visits), with a spray of
    // one-off customers as background noise.
    GaussianMixture::new(vec![
        ClusterSpec::new(vec![20.0, 2.0], 2.0, 300), // casual
        ClusterSpec::new(vec![60.0, 8.0], 3.0, 200), // regular
        ClusterSpec::new(vec![120.0, 6.0], 4.0, 80), // big-basket
        ClusterSpec::new(vec![90.0, 20.0], 3.0, 40), // power user
    ])
    .expect("valid mixture")
    .with_noise(30, 140.0)
}

/// Z-standardizes the features: spend and visits live on very different
/// scales, and every distance-based method here cares.
fn standardize(m: &Matrix) -> Matrix {
    StandardScaler
        .fit(m)
        .expect("non-empty")
        .transform(m)
        .expect("same width")
}

fn main() {
    let mixture = segments();
    let (raw, truth) = mixture.generate(7);
    let data = standardize(&raw);

    println!(
        "segmenting {} customers into {} segments (+noise)\n",
        data.rows(),
        mixture.k()
    );

    println!(
        "{:>14} {:>7} {:>7} {:>9} {:>7}",
        "algorithm", "ari", "nmi", "clusters", "noise"
    );
    let k = mixture.k();
    let clusterers: Vec<Box<dyn Clusterer>> = vec![
        Box::new(KMeans::new(k).with_seed(1)),
        Box::new(KMeans::new(k).with_init(Init::Random).with_seed(1)),
        Box::new(Pam::new(k)),
        Box::new(Agglomerative::new(k).with_linkage(Linkage::Ward)),
        Box::new(Agglomerative::new(k).with_linkage(Linkage::Single)),
        Box::new(Birch::new(k).with_threshold(0.3).with_seed(1)),
        Box::new(Dbscan::new(0.35, 8)),
    ];
    for c in clusterers {
        let result = c.fit(&data).expect("clustering succeeds");
        let ari = adjusted_rand_index(&truth, &result.assignments).expect("same length");
        let nmi = normalized_mutual_information(&truth, &result.assignments).expect("same length");
        println!(
            "{:>14} {:>7.3} {:>7.3} {:>9} {:>7}",
            c.name(),
            ari,
            nmi,
            result.n_clusters,
            result.n_noise()
        );
    }

    // The dendrogram view an analyst would eyeball for a natural k.
    let dendrogram: Dendrogram = Agglomerative::new(1)
        .with_linkage(Linkage::Ward)
        .fit_dendrogram(&data)
        .expect("non-empty data");
    let heights = dendrogram.heights();
    println!("\nlast 8 merge heights (look for the jump):");
    for h in heights.iter().rev().take(8).rev() {
        println!("  {h:.2}");
    }

    // Internal validation without ground truth: the elbow.
    println!("\nk-means elbow (SSE by k):");
    for k in 1..=8usize {
        let model = KMeans::new(k)
            .with_seed(5)
            .fit_model(&data)
            .expect("k <= n");
        println!("  k={k}: SSE {:.0}", model.inertia);
    }
}
