//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace carries
//! this std-only harness implementing the API subset its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: one warm-up call sizes the iteration batch so a
//! sample takes roughly `DM_BENCH_SAMPLE_MS` (default 30) milliseconds,
//! then `sample_size` samples are timed. Median/mean per-iteration times
//! print to stdout and append as JSON lines to
//! `target/dm-bench/results.jsonl` (override the directory with
//! `DM_BENCH_OUT`), which is what the repo's recorded benchmark tables
//! are built from.

pub use std::hint::black_box;

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    sample_size: usize,
    /// Filled by [`Bencher::iter`]: per-iteration nanoseconds, one entry
    /// per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: target ~DM_BENCH_SAMPLE_MS per sample.
        let target = Duration::from_millis(
            std::env::var("DM_BENCH_SAMPLE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(30),
        );
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            ((target.as_secs_f64() / once.as_secs_f64()).ceil() as usize).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn record(full_id: &str, sample_size: usize, samples_ns: &[f64]) {
    if samples_ns.is_empty() {
        println!("bench {full_id:<50} (no samples)");
        return;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "bench {full_id:<50} median {:>12}  mean {:>12}  ({} samples)",
        human(median),
        human(mean),
        sample_size
    );
    let dir = std::env::var("DM_BENCH_OUT").unwrap_or_else(|_| "target/dm-bench".into());
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(format!("{dir}/results.jsonl"))
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{full_id}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{sample_size}}}"
            );
        }
    }
}

/// The substring filter from the CLI (`cargo bench -- <filter>`), as in
/// real criterion: benchmarks whose full id doesn't contain it are
/// skipped. Flags (`--bench`, `--exact`, harness options) are ignored.
fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

fn run_bench<F: FnMut(&mut Bencher)>(full_id: &str, sample_size: usize, mut f: F) {
    if let Some(filter) = cli_filter() {
        if !full_id.contains(&filter) {
            return;
        }
    }
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    record(full_id, sample_size, &b.samples_ns);
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into().id, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        std::env::set_var("DM_BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self_test");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 3, "closure ran {calls} times");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("kmeans", 600).id, "kmeans/600");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }
}
