//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace carries
//! this std-only implementation of the subset its property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` and
//!   `pattern in strategy` arguments),
//! * range strategies (`0u32..10`, `-1.0f64..1.0`, …), tuple strategies,
//!   [`collection::vec`], [`option::of`], [`Just`],
//!   [`Strategy::prop_map`] and [`Strategy::prop_flat_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number and the seed is derived from the test name, so a
//! failure reproduces exactly by re-running the test.

use std::ops::{Range, RangeInclusive};

/// Test-runner configuration ([`ProptestConfig`]).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn seed_from_u64(state: u64) -> Self {
        TestRng { state }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..span` (`span > 0`).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (up to 1000 attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

/// Collection strategies ([`vec`]).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies ([`of`]).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some with probability 3/4, like real proptest's default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy, TestRng,
    };
}

/// Skips the current case when the precondition does not hold.
///
/// Expands to `continue` on the case loop, so it must appear at the top
/// level of the property body (which is how the workspace uses it) —
/// inside a user loop it would skip that loop's iteration instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ..)`
/// becomes a `#[test]` that samples its strategies `config.cases` times
/// and runs the body on every sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@config($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed from the test path so each property gets its own
                // deterministic stream.
                let seed = {
                    use std::hash::{Hash, Hasher};
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    concat!(module_path!(), "::", stringify!($name)).hash(&mut h);
                    h.finish()
                };
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_links_sizes() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (1usize..5)
            .prop_flat_map(|n| prop::collection::vec(0i32..100, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = prop::option::of(0u8..4);
        let samples: Vec<_> = (0..200).map(|_| s.sample(&mut rng)).collect();
        assert!(samples.iter().any(|v| v.is_none()));
        assert!(samples.iter().any(|v| v.is_some()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u32..10, 0u32..10), c in 0usize..5) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c.min(4), c);
        }
    }
}
