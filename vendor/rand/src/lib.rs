//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace carries this std-only implementation of the exact
//! API subset it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, so streams differ from upstream
//! `rand 0.8`, but every draw is deterministic per seed, which is the
//! property the workspace's seeded experiments and tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding from a plain `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain:
/// floats in `[0, 1)`, integers over their full range, `bool` fair.
pub trait Standard: Sized {
    /// Draws one value from the standard domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `0..span` with a widening multiply
/// (Lemire's method without the rejection step; the bias is far below
/// anything the statistical tests can see and keeps draws one-shot,
/// which determinism tests appreciate).
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard domain (see [`Standard`]).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic seeded generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let a = rng.gen_range(5..10u32);
            assert!((5..10).contains(&a));
            let b = rng.gen_range(0..=4usize);
            assert!(b <= 4);
            let c = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&c));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
