//! Prefix equivalence: the streaming engines' central contract,
//! property-tested.
//!
//! For every engine, the incremental state after absorbing the first
//! `N` records of a stream must be **bit-identical** to a batch run
//! over that same prefix — at every cut point, for any slicing of the
//! stream into insert calls:
//!
//! * [`StreamKMeans`] — one-by-one inserts vs one governed bulk feed of
//!   the prefix (flush boundaries depend only on absolute record
//!   index), compared snapshot-for-snapshot with centroid bits checked
//!   explicitly.
//! * [`StreamBirch`] — the streamed CF-tree vs batch condensation, and
//!   query-time centroids vs full batch `Birch::fit` on the prefix
//!   matrix (same seed ⇒ same bits).
//! * [`StreamFrequent`] — the incrementally maintained family vs a
//!   fresh batch Eclat mine over the window contents, in the canonical
//!   `FrequentItemsets` container.
//!
//! Each property slices the stream at ≥ 3 interior cut points plus the
//! full prefix.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_assoc::{Eclat, ItemsetMiner, MinSupport};
use dm_cluster::{Birch, CfTree, Clusterer};
use dm_dataset::{Matrix, TransactionDb};
use dm_guard::Guard;
use dm_stream::{StreamBirch, StreamEngine, StreamFrequent, StreamKMeans};
use dm_synth::{GaussianMixture, PointStream, QuestConfig, QuestGenerator, TxnStream};
use proptest::prelude::*;

/// Four cut points (three interior + the full prefix), all distinct for
/// any `len >= 8`.
fn cuts(len: usize) -> [usize; 4] {
    [len / 4, len / 2, 3 * len / 4, len]
}

fn point_stream(seed: u64, n: usize) -> Vec<Vec<f64>> {
    let gm = GaussianMixture::well_separated(3, 2, 100, 8.0).unwrap();
    PointStream::new(gm, seed).take(n).map(|(p, _)| p).collect()
}

fn txn_stream(seed: u64, n: usize) -> Vec<Vec<u32>> {
    let g = QuestGenerator::new(
        QuestConfig {
            n_transactions: 1,
            avg_txn_len: 6.0,
            avg_pattern_len: 3.0,
            n_patterns: 20,
            n_items: 40,
            correlation: 0.25,
            corruption_mean: 0.4,
            corruption_sd: 0.1,
        },
        seed,
    )
    .unwrap();
    TxnStream::new(g, seed.wrapping_add(17)).take(n).collect()
}

fn assert_centroid_bits_eq(a: &Matrix, b: &Matrix) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    for r in 0..a.rows() {
        for (x, y) in a.row(r).iter().zip(b.row(r)) {
            assert_eq!(x.to_bits(), y.to_bits(), "centroid bits diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mini-batch k-means: per-record inserts ≡ one bulk governed feed
    /// of the same prefix, at every cut point, bit for bit — for any
    /// batch size, decay and thread policy.
    #[test]
    fn stream_kmeans_prefix_equivalence(
        seed in 0u64..1000,
        batch in 1usize..12,
        decay_pct in 10u64..=100,
        threads in 1usize..4,
    ) {
        let records = point_stream(seed, 120);
        let decay = decay_pct as f64 / 100.0;
        let mut live = StreamKMeans::new(3, batch).unwrap()
            .with_decay(decay).unwrap()
            .with_parallelism(dm_par::Parallelism::Threads(threads));
        let mut fed = 0usize;
        for &cut in &cuts(records.len()) {
            for r in &records[fed..cut] {
                live.insert(r);
            }
            fed = cut;
            let mut fresh = StreamKMeans::new(3, batch).unwrap().with_decay(decay).unwrap();
            let out = fresh.insert_governed(&records[..cut], &Guard::unlimited());
            prop_assert!(out.is_complete());
            prop_assert_eq!(out.result, cut);
            let (a, b) = (live.snapshot(), fresh.snapshot());
            prop_assert_eq!(&a, &b);
            // PartialEq on f64 admits -0.0 == 0.0; pin the raw bits too.
            for (ca, cb) in a.centroids.iter().zip(&b.centroids) {
                for (x, y) in ca.iter().zip(cb) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            for (x, y) in a.weights.iter().zip(&b.weights) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Online BIRCH: the streamed CF-tree ≡ batch condensation of the
    /// prefix (entries, shape, split count), and the query-time global
    /// centroids ≡ full batch `Birch::fit` on the prefix matrix.
    #[test]
    fn stream_birch_prefix_equivalence(
        seed in 0u64..1000,
        threshold_tenths in 5u64..25,
        branching in 4usize..10,
    ) {
        let records = point_stream(seed, 160);
        let threshold = threshold_tenths as f64 / 10.0;
        let k = 3;
        let mut live = StreamBirch::new(k, threshold, branching).unwrap().with_seed(seed);
        let mut fed = 0usize;
        for &cut in &cuts(records.len()) {
            for r in &records[fed..cut] {
                live.insert(r);
            }
            fed = cut;
            // Batch oracle 1: direct CF-tree condensation of the prefix.
            let mut batch_tree = CfTree::new(threshold, branching).unwrap();
            for r in &records[..cut] {
                batch_tree.insert(r);
            }
            let snap = live.snapshot();
            prop_assert_eq!(snap.seen as usize, cut);
            prop_assert_eq!(&snap.stats, &batch_tree.stats());
            prop_assert_eq!(snap.splits, batch_tree.n_splits());
            let batch_entries: Vec<_> = batch_tree.leaf_entries().into_iter().cloned().collect();
            prop_assert_eq!(&snap.entries, &batch_entries);

            // Batch oracle 2: the full batch clusterer on the prefix.
            if snap.stats.leaf_entries >= k {
                let prefix = Matrix::from_rows(&records[..cut]).unwrap();
                let batch_fit = Birch::new(k)
                    .with_threshold(threshold)
                    .with_branching(branching)
                    .with_seed(seed)
                    .fit(&prefix)
                    .unwrap();
                let streamed = live.query(&Guard::unlimited()).unwrap();
                assert_centroid_bits_eq(&streamed, batch_fit.centroids.as_ref().unwrap());
            }
        }
    }

    /// Sliding-window frequent itemsets: the incrementally maintained
    /// family ≡ a fresh batch Eclat mine of the window contents, at
    /// every cut point — with and without eviction in play.
    #[test]
    fn stream_frequent_prefix_equivalence(
        seed in 0u64..1000,
        minsup in 2usize..6,
        cap_choice in 0usize..3,
    ) {
        let records = txn_stream(seed, 120);
        let capacity = [None, Some(40), Some(75)][cap_choice];
        let mut live = StreamFrequent::new(40, minsup, capacity).unwrap();
        let mut fed = 0usize;
        for &cut in &cuts(records.len()) {
            for r in &records[fed..cut] {
                live.insert(r);
            }
            fed = cut;
            let start = capacity.map_or(0, |c| cut.saturating_sub(c));
            let db = TransactionDb::with_universe(records[start..cut].to_vec(), 40).unwrap();
            let batch = Eclat::new(MinSupport::Count(minsup)).mine(&db).unwrap();
            prop_assert_eq!(live.query(), batch.itemsets, "diverged at cut {}", cut);
            prop_assert_eq!(live.window_len(), cut - start);
        }
    }

    /// Call-granularity invariance: slicing the same stream into
    /// arbitrary governed chunks leaves every engine in the same state
    /// as per-record inserts.
    #[test]
    fn chunked_feeding_is_equivalent(
        seed in 0u64..1000,
        chunk in 1usize..17,
    ) {
        let points = point_stream(seed, 80);
        let txns = txn_stream(seed, 80);
        let guard = Guard::unlimited();

        let mut km_a = StreamKMeans::new(3, 5).unwrap();
        let mut km_b = StreamKMeans::new(3, 5).unwrap();
        let mut bi_a = StreamBirch::new(3, 1.0, 6).unwrap();
        let mut bi_b = StreamBirch::new(3, 1.0, 6).unwrap();
        let mut fr_a = StreamFrequent::new(40, 3, Some(30)).unwrap();
        let mut fr_b = StreamFrequent::new(40, 3, Some(30)).unwrap();

        for p in &points {
            km_a.insert(p);
            bi_a.insert(p);
        }
        for t in &txns {
            fr_a.insert(t);
        }
        for c in points.chunks(chunk) {
            prop_assert!(km_b.insert_governed(c, &guard).is_complete());
            prop_assert!(bi_b.insert_governed(c, &guard).is_complete());
        }
        for c in txns.chunks(chunk) {
            prop_assert!(fr_b.insert_governed(c, &guard).is_complete());
        }
        prop_assert_eq!(km_a.snapshot(), km_b.snapshot());
        prop_assert_eq!(bi_a.snapshot(), bi_b.snapshot());
        prop_assert_eq!(fr_a.snapshot(), fr_b.snapshot());
    }
}
