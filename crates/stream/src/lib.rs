//! # dm-stream
//!
//! Streaming and incremental mining over unbounded record streams — the
//! "data that arrives" counterpart to the batch miners. Three engines
//! share one [`StreamEngine`] lifecycle:
//!
//! * [`StreamKMeans`] — mini-batch k-means: points buffer into fixed
//!   batches, each batch moves the centroids once (with optional decay
//!   of historical weight), so clustering keeps up with the stream at a
//!   bounded per-point cost.
//! * [`StreamBirch`] — BIRCH's CF-tree exposed as online insert/query
//!   (the tree was always an incremental structure; batch `Birch::fit`
//!   is now literally a wrapper over this insert loop).
//! * [`StreamFrequent`] — exact sliding-window frequent-itemset
//!   maintenance: each arriving or expiring transaction adjusts the
//!   tracked support counts instead of re-mining the window.
//!
//! ## Lifecycle and equivalence
//!
//! An engine is a state machine: `insert` absorbs one record and is the
//! *only* state transition; `query`-style methods are pure reads. The
//! governed entry point [`StreamEngine::insert_governed`] charges the
//! shared [`Guard`] one work unit per record *before* absorbing it, so a
//! budget trip or cancellation lands on a record boundary: the engine is
//! left in exactly the state reached by the records it absorbed, and the
//! un-absorbed suffix can be replayed later (resume) with no drift.
//!
//! That makes the central contract testable: **state after absorbing a
//! prefix is bit-identical to a fresh engine fed the same prefix**, no
//! matter how the prefix was sliced into `insert`/`insert_governed`
//! calls. The `prefix_equivalence` suite property-tests this against the
//! batch implementations (`KMeans`-style updates, batch `Birch`, batch
//! Eclat over the window contents).
//!
//! Engines record through `dm-obs` under `stream.*` names and feed
//! `dm-serve` via its `refresh_artifact` hook (e.g. a [`StreamKMeans`]
//! periodically publishing `KMeansModel::from_centroids`).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod birch;
pub mod frequent;
pub mod kmeans;

pub use birch::StreamBirch;
pub use frequent::StreamFrequent;
pub use kmeans::StreamKMeans;

use dm_guard::{Guard, Outcome};

/// The insert/query lifecycle shared by every streaming engine.
///
/// `insert` is the single state transition; everything else observes.
/// Implementations must be deterministic: the state after a record
/// sequence depends only on the sequence, never on call granularity,
/// thread count, or wall clock.
pub trait StreamEngine {
    /// One stream record (a point, a transaction, ...).
    type Record;

    /// Short name used in `stream.<name>.*` metric keys.
    fn name(&self) -> &'static str;

    /// Absorbs one record, returning the structural work it caused
    /// (engine-specific units: batch rows flushed, node splits, support
    /// updates + intersection steps). Deterministic per state+record.
    fn insert(&mut self, record: &Self::Record) -> u64;

    /// Total records absorbed since construction.
    fn records_seen(&self) -> u64;

    /// Absorbs records under a guard: one admitted work unit per record,
    /// charged *before* the insert, so a trip leaves the engine exactly
    /// at a record boundary. Returns how many records were absorbed;
    /// on [`dm_guard::RunStatus::Truncated`] the caller can resume by
    /// replaying the remaining suffix (here or on a fresh guard).
    ///
    /// Emits `stream.<name>.inserts` and `stream.<name>.work` counters,
    /// then the engine's own state gauges ([`StreamEngine::observe`]) —
    /// so every governed batch refreshes the series (inertia, leaf
    /// entries, ...) the `dm_obs::watch` drift detectors consume.
    fn insert_governed(&mut self, records: &[Self::Record], guard: &Guard) -> Outcome<usize> {
        let mut absorbed = 0usize;
        let mut work = 0u64;
        for record in records {
            if guard.try_work(1).is_err() {
                break;
            }
            work += self.insert(record);
            absorbed += 1;
        }
        let obs = guard.obs();
        if obs.enabled() {
            obs.counter_fmt(
                format_args!("stream.{}.inserts", self.name()),
                absorbed as u64,
            );
            obs.counter_fmt(format_args!("stream.{}.work", self.name()), work);
            self.observe(&obs);
        }
        guard.outcome(absorbed)
    }

    /// Emits the engine's current-state gauges/counters (sizes, splits,
    /// tracked families) through `obs`. Pure read; used by experiments
    /// and the metric-registry coverage test.
    fn observe(&self, obs: &dm_obs::Obs<'_>);
}
