//! Mini-batch k-means over an unbounded point stream.

use crate::StreamEngine;
use dm_cluster::kmeans::KMeansModel;
use dm_dataset::matrix::euclidean_sq;
use dm_dataset::{DataError, Matrix};
use dm_obs::Obs;
use dm_par::{par_range_map_reduce, Chunking, Parallelism};

/// Fixed assignment-pass chunk size: boundaries depend only on the batch
/// length, making threaded flushes bit-identical to sequential ones.
const ROW_CHUNK: usize = 256;

/// Mini-batch k-means (Sculley, WWW 2010 flavour, deterministic):
/// points buffer until `batch_size` of them are pending, then one
/// assignment pass moves each centroid to the decayed weighted mean of
/// its history and the new batch.
///
/// * The first `k` records initialize the centroids verbatim (weight 1)
///   — no RNG, so the whole engine is seed-free and replayable.
/// * `decay` in `(0, 1]` down-weights history at each flush: `1.0` is
///   the running exact weighted mean, smaller values track drift.
/// * Flush boundaries depend only on the absolute record index, which
///   is what makes prefix equivalence hold bit for bit regardless of
///   how the stream was sliced into insert calls.
#[derive(Debug, Clone)]
pub struct StreamKMeans {
    k: usize,
    batch_size: usize,
    decay: f64,
    parallelism: Parallelism,
    dims: Option<usize>,
    centroids: Vec<Vec<f64>>,
    weights: Vec<f64>,
    pending: Vec<Vec<f64>>,
    seen: u64,
    flushes: u64,
    last_inertia: Option<f64>,
}

/// The complete engine state, for equivalence tests: two engines that
/// absorbed the same record sequence compare equal (f64 equality here
/// means bit-identity — the engine never produces NaN or -0.0 surprises
/// from identical inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansSnapshot {
    /// Current centroids (initialized prefix only).
    pub centroids: Vec<Vec<f64>>,
    /// Accumulated (decayed) weight behind each centroid.
    pub weights: Vec<f64>,
    /// Buffered points not yet flushed.
    pub pending: Vec<Vec<f64>>,
    /// Records absorbed.
    pub seen: u64,
    /// Batch flushes performed.
    pub flushes: u64,
    /// Assignment inertia of the most recent flush (see
    /// [`StreamKMeans::last_inertia`]).
    pub last_inertia: Option<f64>,
}

impl StreamKMeans {
    /// An engine tracking `k` centroids, flushing every `batch_size`
    /// buffered points, with no decay (exact running weighted mean).
    pub fn new(k: usize, batch_size: usize) -> Result<Self, DataError> {
        if k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if batch_size == 0 {
            return Err(DataError::InvalidParameter(
                "batch_size must be >= 1".into(),
            ));
        }
        Ok(Self {
            k,
            batch_size,
            decay: 1.0,
            parallelism: Parallelism::Sequential,
            dims: None,
            centroids: Vec::with_capacity(k),
            weights: Vec::with_capacity(k),
            pending: Vec::new(),
            seen: 0,
            flushes: 0,
            last_inertia: None,
        })
    }

    /// Sets the per-flush history decay factor in `(0, 1]`.
    pub fn with_decay(mut self, decay: f64) -> Result<Self, DataError> {
        if !(decay > 0.0 && decay <= 1.0) {
            return Err(DataError::InvalidParameter(format!(
                "decay {decay} not in (0, 1]"
            )));
        }
        self.decay = decay;
        Ok(self)
    }

    /// Sets the thread policy for batch assignment passes. Results are
    /// bit-identical across settings (fixed chunk boundaries, in-order
    /// merge).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Number of centroids requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Batch flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Sum of squared distances from the most recent flushed batch to
    /// its assigned (pre-update) centroids — the per-flush inertia
    /// series concept-drift detectors watch. `None` before the first
    /// flush. Bit-identical across thread policies: per-chunk partial
    /// sums combine in chunk order.
    pub fn last_inertia(&self) -> Option<f64> {
        self.last_inertia
    }

    /// Current centroids (may be fewer than `k` before the stream has
    /// delivered `k` records).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// The engine state (for equivalence testing / checkpointing).
    pub fn snapshot(&self) -> KMeansSnapshot {
        KMeansSnapshot {
            centroids: self.centroids.clone(),
            weights: self.weights.clone(),
            pending: self.pending.clone(),
            seen: self.seen,
            flushes: self.flushes,
            last_inertia: self.last_inertia,
        }
    }

    /// Publishes the current centroids as a servable [`KMeansModel`]
    /// (the `refresh_artifact` payload for `dm-serve`). Errors until at
    /// least one centroid exists.
    pub fn model(&self) -> Result<KMeansModel, DataError> {
        if self.centroids.is_empty() {
            return Err(DataError::Empty("stream has not initialized centroids"));
        }
        KMeansModel::from_centroids(Matrix::from_rows(&self.centroids)?)
    }

    /// One assignment pass over the pending batch, then the decayed
    /// centroid update. Returns rows processed (the flush work).
    fn flush(&mut self) -> u64 {
        let rows = self.pending.len();
        let dims = self.centroids.first().map_or(0, Vec::len);
        let k = self.centroids.len();
        let (sums, counts, inertia) = par_range_map_reduce(
            self.parallelism,
            Chunking::Fixed(ROW_CHUNK),
            rows,
            || (vec![vec![0.0f64; dims]; k], vec![0u64; k], 0.0f64),
            |range| {
                let mut sums = vec![vec![0.0f64; dims]; k];
                let mut counts = vec![0u64; k];
                let mut inertia = 0.0f64;
                for i in range {
                    let p = &self.pending[i];
                    let (best, best_d) = self
                        .centroids
                        .iter()
                        .map(|c| euclidean_sq(c, p))
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.total_cmp(b))
                        .unwrap_or((0, 0.0));
                    for (s, &x) in sums[best].iter_mut().zip(p) {
                        *s += x;
                    }
                    counts[best] += 1;
                    inertia += best_d;
                }
                (sums, counts, inertia)
            },
            |(mut asums, mut acounts, ai), (bsums, bcounts, bi)| {
                for (a, b) in asums.iter_mut().zip(&bsums) {
                    for (x, &y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                }
                for (a, &b) in acounts.iter_mut().zip(&bcounts) {
                    *a += b;
                }
                (asums, acounts, ai + bi)
            },
        );
        for c in 0..k {
            let old_w = self.weights[c] * self.decay;
            if counts[c] > 0 {
                let new_w = old_w + counts[c] as f64;
                for (x, &s) in self.centroids[c].iter_mut().zip(&sums[c]) {
                    *x = (*x * old_w + s) / new_w;
                }
                self.weights[c] = new_w;
            } else {
                self.weights[c] = old_w;
            }
        }
        self.pending.clear();
        self.flushes += 1;
        self.last_inertia = Some(inertia);
        rows as u64
    }
}

impl StreamEngine for StreamKMeans {
    type Record = Vec<f64>;

    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn insert(&mut self, record: &Vec<f64>) -> u64 {
        let dims = *self.dims.get_or_insert(record.len());
        debug_assert_eq!(
            record.len(),
            dims,
            "stream points must share one dimensionality"
        );
        self.seen += 1;
        if self.centroids.len() < self.k {
            self.centroids.push(record.clone());
            self.weights.push(1.0);
            return 0;
        }
        self.pending.push(record.clone());
        if self.pending.len() >= self.batch_size {
            self.flush()
        } else {
            0
        }
    }

    fn records_seen(&self) -> u64 {
        self.seen
    }

    fn observe(&self, obs: &Obs<'_>) {
        if !obs.enabled() {
            return;
        }
        obs.counter("stream.kmeans.flushes", self.flushes);
        obs.gauge("stream.kmeans.centroids", self.centroids.len() as f64);
        obs.gauge("stream.kmeans.pending", self.pending.len() as f64);
        if let Some(inertia) = self.last_inertia {
            obs.gauge("stream.kmeans.inertia", inertia);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        // Two obvious blobs, deterministic without any RNG.
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 100.0 };
                vec![base + (i % 7) as f64 * 0.1, base - (i % 5) as f64 * 0.1]
            })
            .collect()
    }

    #[test]
    fn initializes_from_first_k_records() {
        let mut e = StreamKMeans::new(3, 10).unwrap();
        for p in points(3) {
            e.insert(&p);
        }
        assert_eq!(e.centroids().len(), 3);
        assert_eq!(e.snapshot().weights, vec![1.0, 1.0, 1.0]);
        assert_eq!(e.records_seen(), 3);
        assert_eq!(e.flushes(), 0);
    }

    #[test]
    fn flushes_on_batch_boundary_only() {
        let mut e = StreamKMeans::new(2, 4).unwrap();
        for p in points(2 + 3) {
            e.insert(&p);
        }
        assert_eq!(e.flushes(), 0);
        assert_eq!(e.snapshot().pending.len(), 3);
        e.insert(&vec![1.0, 1.0]);
        assert_eq!(e.flushes(), 1);
        assert!(e.snapshot().pending.is_empty());
    }

    #[test]
    fn converges_to_blob_means() {
        let mut e = StreamKMeans::new(2, 8).unwrap();
        for p in points(2 + 160) {
            e.insert(&p);
        }
        let c = e.centroids();
        let (lo, hi) = if c[0][0] < c[1][0] { (0, 1) } else { (1, 0) };
        assert!(c[lo][0].abs() < 2.0, "low blob centroid {:?}", c[lo]);
        assert!(
            (c[hi][0] - 100.0).abs() < 2.0,
            "high blob centroid {:?}",
            c[hi]
        );
    }

    #[test]
    fn decay_tracks_drift() {
        // Stream jumps from blob A to blob B; decayed engine must land
        // near B, no-decay engine stays dragged toward A.
        let k = 1;
        let phase_a: Vec<Vec<f64>> = (0..200).map(|_| vec![0.0]).collect();
        let phase_b: Vec<Vec<f64>> = (0..200).map(|_| vec![50.0]).collect();
        let mut decayed = StreamKMeans::new(k, 10).unwrap().with_decay(0.2).unwrap();
        let mut exact = StreamKMeans::new(k, 10).unwrap();
        for p in phase_a.iter().chain(&phase_b) {
            decayed.insert(p);
            exact.insert(p);
        }
        assert!(decayed.centroids()[0][0] > 49.0);
        assert!(exact.centroids()[0][0] < 30.0);
    }

    #[test]
    fn model_roundtrip_for_serving() {
        let mut e = StreamKMeans::new(2, 4).unwrap();
        assert!(e.model().is_err());
        for p in points(2 + 8) {
            e.insert(&p);
        }
        let model = e.model().unwrap();
        assert_eq!(model.centroids.rows(), 2);
        let labels = model
            .predict(&Matrix::from_rows(&[vec![0.0, 0.0], vec![100.0, 100.0]]).unwrap())
            .unwrap();
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn inertia_tracks_each_flush_and_matches_across_parallelism() {
        let mut seq = StreamKMeans::new(2, 8).unwrap();
        let mut par = StreamKMeans::new(2, 8)
            .unwrap()
            .with_parallelism(Parallelism::Threads(2));
        assert_eq!(seq.last_inertia(), None);
        for p in points(2 + 64) {
            seq.insert(&p);
            par.insert(&p);
        }
        let i_seq = seq.last_inertia().unwrap();
        let i_par = par.last_inertia().unwrap();
        assert!(i_seq.is_finite() && i_seq >= 0.0);
        assert_eq!(i_seq.to_bits(), i_par.to_bits(), "seq/par inertia differs");
        assert_eq!(seq.snapshot().last_inertia, Some(i_seq));
    }

    #[test]
    fn inertia_jumps_when_the_distribution_shifts() {
        // Warm on one blob, then shift the stream far away: the first
        // post-shift flush assigns distant points to stale centroids,
        // so the inertia series spikes — the signal drift rules watch.
        let mut e = StreamKMeans::new(1, 10).unwrap();
        for _ in 0..51 {
            e.insert(&vec![0.0, 0.0]);
        }
        let calm = e.last_inertia().unwrap();
        for _ in 0..10 {
            e.insert(&vec![100.0, 100.0]);
        }
        let shifted = e.last_inertia().unwrap();
        assert!(
            shifted > calm + 1000.0,
            "shift invisible: calm {calm}, shifted {shifted}"
        );
    }

    #[test]
    fn observe_emits_inertia_gauge_after_first_flush() {
        use dm_obs::InMemoryRecorder;
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let mut e = StreamKMeans::new(2, 4).unwrap();
        e.observe(&obs);
        assert_eq!(rec.snapshot().gauge("stream.kmeans.inertia"), None);
        for p in points(2 + 4) {
            e.insert(&p);
        }
        e.observe(&obs);
        let snap = rec.snapshot();
        assert_eq!(
            snap.gauge("stream.kmeans.inertia"),
            Some(e.last_inertia().unwrap())
        );
    }

    #[test]
    fn rejects_bad_params() {
        assert!(StreamKMeans::new(0, 4).is_err());
        assert!(StreamKMeans::new(2, 0).is_err());
        assert!(StreamKMeans::new(2, 4).unwrap().with_decay(0.0).is_err());
        assert!(StreamKMeans::new(2, 4).unwrap().with_decay(1.5).is_err());
    }
}
