//! Exact sliding-window frequent-itemset maintenance.
//!
//! The engine keeps, at all times, the *complete* family of itemsets
//! frequent in the current window (an itemset trie with exact counts)
//! plus per-item tid columns from the vertical substrate. Each arriving
//! or expiring transaction adjusts only the counts it touches:
//!
//! * **Insert** — every tracked itemset contained in the transaction
//!   gains one count (one trie walk); itemsets *crossing* the threshold
//!   are discovered by extending tracked nodes with the transaction's
//!   items and computing the exact support with galloping tid-column
//!   intersections. Anti-monotonicity makes this complete: a newly
//!   frequent set's prefix is at least as frequent, so the walk always
//!   reaches it.
//! * **Evict** — tracked itemsets contained in the expiring transaction
//!   lose one count; any that fall below the threshold are removed.
//!   Again by anti-monotonicity, every descendant of a falling node has
//!   already fallen (and is contained in the same expiring transaction),
//!   so subtree removal never discards a frequent set.
//!
//! The result is bit-identical to re-mining the window from scratch —
//! [`StreamFrequent::query`] emits the same canonical
//! [`FrequentItemsets`] a batch Eclat/FP-Growth run over the window
//! contents produces — at a per-update cost proportional to the counts
//! actually touched (experiment E16 gates the amortized gap).

use crate::StreamEngine;
use dm_assoc::{FrequentItemsets, Itemset};
use dm_dataset::vertical::galloping_intersect;
use dm_dataset::DataError;
use dm_guard::{Guard, Outcome};
use dm_obs::Obs;
use std::collections::VecDeque;

/// A per-item tid column: append-at-back on insert, pop-at-front on
/// evict, amortized compaction keeps the live slice contiguous for the
/// galloping intersections.
#[derive(Debug, Clone, Default)]
struct Column {
    tids: Vec<u32>,
    head: usize,
}

impl Column {
    fn push(&mut self, tid: u32) {
        self.tids.push(tid);
    }

    fn pop_front(&mut self) {
        self.head += 1;
        if self.head >= 64 && self.head * 2 >= self.tids.len() {
            self.tids.drain(..self.head);
            self.head = 0;
        }
    }

    fn as_slice(&self) -> &[u32] {
        &self.tids[self.head..]
    }

    fn len(&self) -> usize {
        self.tids.len() - self.head
    }
}

/// One tracked itemset: the path from the root spells the (sorted)
/// items; children are sorted by item for binary search.
#[derive(Debug, Clone)]
struct Node {
    item: u32,
    count: usize,
    children: Vec<Node>,
}

/// Exact incremental frequent-itemset mining over a sliding window of
/// transactions (or over the whole unbounded stream when no capacity is
/// set). The support threshold is an absolute count against the current
/// window.
#[derive(Debug, Clone)]
pub struct StreamFrequent {
    n_items: u32,
    minsup: usize,
    capacity: Option<usize>,
    window: VecDeque<Vec<u32>>,
    columns: Vec<Column>,
    roots: Vec<Node>,
    next_tid: u32,
    seen: u64,
    evictions: u64,
}

/// The complete engine state, for equivalence testing: the mined family
/// (canonical container), the window contents, and the stream position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentSnapshot {
    /// The currently frequent itemsets with exact counts.
    pub itemsets: FrequentItemsets,
    /// Window contents, oldest first.
    pub window: Vec<Vec<u32>>,
    /// Records absorbed.
    pub seen: u64,
}

impl StreamFrequent {
    /// An engine over an item universe of `n_items`, keeping itemsets
    /// with window support `>= minsup`, sliding over the last
    /// `capacity` transactions (`None` = never evict).
    pub fn new(n_items: u32, minsup: usize, capacity: Option<usize>) -> Result<Self, DataError> {
        if n_items == 0 {
            return Err(DataError::InvalidParameter("n_items must be >= 1".into()));
        }
        if minsup == 0 {
            return Err(DataError::InvalidParameter("minsup must be >= 1".into()));
        }
        if capacity == Some(0) {
            return Err(DataError::InvalidParameter(
                "window capacity must be >= 1".into(),
            ));
        }
        Ok(Self {
            n_items,
            minsup,
            capacity,
            window: VecDeque::new(),
            columns: vec![Column::default(); n_items as usize],
            roots: Vec::new(),
            next_tid: 0,
            seen: 0,
            evictions: 0,
        })
    }

    /// The absolute support threshold.
    pub fn minsup(&self) -> usize {
        self.minsup
    }

    /// Current window length.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Transactions evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of itemsets currently tracked (= currently frequent).
    pub fn tracked(&self) -> usize {
        fn count(children: &[Node]) -> usize {
            children.len() + children.iter().map(|n| count(&n.children)).sum::<usize>()
        }
        count(&self.roots)
    }

    /// The frequent itemsets of the current window, in the same
    /// canonical container every batch miner produces — so equality
    /// against a fresh Eclat/FP-Growth run over [`window`] contents is
    /// exact.
    ///
    /// [`window`]: FrequentSnapshot::window
    pub fn query(&self) -> FrequentItemsets {
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let mut path = Vec::new();
        collect(&self.roots, &mut path, &mut levels);
        FrequentItemsets::from_levels(levels, self.window.len())
    }

    /// `query` under a guard, `mine_governed`-style: one work unit per
    /// reported itemset; a trip truncates the report (smallest sets
    /// first remain), never the engine state.
    pub fn query_governed(&self, guard: &Guard) -> Outcome<FrequentItemsets> {
        let mut levels: Vec<Vec<(Itemset, usize)>> = Vec::new();
        let mut path = Vec::new();
        collect_governed(&self.roots, &mut path, &mut levels, guard);
        let sets = FrequentItemsets::from_levels(levels, self.window.len());
        // A tripped guard latches, so `outcome` reports Truncated itself.
        guard.outcome(sets)
    }

    /// The engine state (for equivalence testing / checkpointing).
    pub fn snapshot(&self) -> FrequentSnapshot {
        FrequentSnapshot {
            itemsets: self.query(),
            window: self.window.iter().cloned().collect(),
            seen: self.seen,
        }
    }

    fn evict(&mut self) -> u64 {
        let Some(old) = self.window.pop_front() else {
            return 0;
        };
        for &i in &old {
            self.columns[i as usize].pop_front();
        }
        let mut work = 0u64;
        walk_evict(&mut self.roots, &old, self.minsup, &mut work);
        self.evictions += 1;
        work
    }
}

/// Exact support of the itemset spelled by `path`, by folding the item
/// tid columns with galloping intersections. `work` gains the shorter
/// input length of every pairwise step.
fn support_count(path: &[u32], columns: &[Column], work: &mut u64) -> usize {
    debug_assert!(!path.is_empty());
    let first = columns[path[0] as usize].as_slice();
    if path.len() == 1 {
        return first.len();
    }
    let mut cur = first.to_vec();
    for &i in &path[1..] {
        let col = columns[i as usize].as_slice();
        *work += cur.len().min(col.len()) as u64;
        cur = galloping_intersect(&cur, col);
        if cur.is_empty() {
            break;
        }
    }
    cur.len()
}

/// Insert-side trie walk: increments every tracked itemset contained in
/// `t` and discovers newly frequent extensions (exact support via the
/// columns). `path` spells the items from the root to `children`'s
/// parent.
fn walk_insert(
    children: &mut Vec<Node>,
    t: &[u32],
    path: &mut Vec<u32>,
    columns: &[Column],
    minsup: usize,
    work: &mut u64,
) {
    for (idx, &j) in t.iter().enumerate() {
        *work += 1;
        match children.binary_search_by_key(&j, |n| n.item) {
            Ok(p) => {
                children[p].count += 1;
                path.push(j);
                walk_insert(
                    &mut children[p].children,
                    &t[idx + 1..],
                    path,
                    columns,
                    minsup,
                    work,
                );
                path.pop();
            }
            Err(p) => {
                // Untracked candidate `path ∪ {j}`. It can only have
                // crossed the threshold on this insert, and only if the
                // single-item bound allows it.
                if columns[j as usize].len() < minsup {
                    continue;
                }
                path.push(j);
                let count = support_count(path, columns, work);
                if count >= minsup {
                    let mut node = Node {
                        item: j,
                        count,
                        children: Vec::new(),
                    };
                    // The new set may itself enable supersets within `t`.
                    walk_insert(
                        &mut node.children,
                        &t[idx + 1..],
                        path,
                        columns,
                        minsup,
                        work,
                    );
                    children.insert(p, node);
                }
                path.pop();
            }
        }
    }
}

/// Evict-side trie walk: decrements every tracked itemset contained in
/// the expiring transaction and removes any that fall below `minsup`.
/// Anti-monotonicity guarantees a falling node's descendants have
/// already been removed by the recursion (see module docs).
fn walk_evict(children: &mut Vec<Node>, t: &[u32], minsup: usize, work: &mut u64) {
    for (idx, &j) in t.iter().enumerate() {
        *work += 1;
        if let Ok(p) = children.binary_search_by_key(&j, |n| n.item) {
            children[p].count -= 1;
            walk_evict(&mut children[p].children, &t[idx + 1..], minsup, work);
            if children[p].count < minsup {
                debug_assert!(
                    children[p].children.is_empty(),
                    "anti-monotonicity: descendants fall first"
                );
                children.remove(p);
            }
        }
    }
}

fn collect(children: &[Node], path: &mut Vec<u32>, levels: &mut Vec<Vec<(Itemset, usize)>>) {
    for n in children {
        path.push(n.item);
        if levels.len() < path.len() {
            levels.push(Vec::new());
        }
        levels[path.len() - 1].push((path.clone(), n.count));
        collect(&n.children, path, levels);
        path.pop();
    }
}

fn collect_governed(
    children: &[Node],
    path: &mut Vec<u32>,
    levels: &mut Vec<Vec<(Itemset, usize)>>,
    guard: &Guard,
) -> bool {
    for n in children {
        if guard.try_work(1).is_err() {
            return false;
        }
        path.push(n.item);
        if levels.len() < path.len() {
            levels.push(Vec::new());
        }
        levels[path.len() - 1].push((path.clone(), n.count));
        let full = collect_governed(&n.children, path, levels, guard);
        path.pop();
        if !full {
            return false;
        }
    }
    true
}

impl StreamEngine for StreamFrequent {
    type Record = Vec<u32>;

    fn name(&self) -> &'static str {
        "frequent"
    }

    fn insert(&mut self, record: &Vec<u32>) -> u64 {
        // Canonicalize; items outside the universe are ignored.
        let mut t: Vec<u32> = record
            .iter()
            .copied()
            .filter(|&i| i < self.n_items)
            .collect();
        t.sort_unstable();
        t.dedup();
        self.seen += 1;
        let tid = self.next_tid;
        self.next_tid += 1;
        for &i in &t {
            self.columns[i as usize].push(tid);
        }
        self.window.push_back(t.clone());
        let mut work = 0u64;
        let mut path = Vec::new();
        walk_insert(
            &mut self.roots,
            &t,
            &mut path,
            &self.columns,
            self.minsup,
            &mut work,
        );
        if let Some(cap) = self.capacity {
            if self.window.len() > cap {
                work += self.evict();
            }
        }
        work
    }

    fn records_seen(&self) -> u64 {
        self.seen
    }

    fn observe(&self, obs: &Obs<'_>) {
        if !obs.enabled() {
            return;
        }
        obs.counter("stream.frequent.evictions", self.evictions);
        obs.gauge("stream.frequent.window", self.window.len() as f64);
        obs.gauge("stream.frequent.tracked", self.tracked() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_assoc::{Eclat, ItemsetMiner, MinSupport};
    use dm_dataset::TransactionDb;
    use dm_synth::{QuestConfig, QuestGenerator, TxnStream};

    fn mine_window(window: &[Vec<u32>], n_items: u32, minsup: usize) -> FrequentItemsets {
        let db = TransactionDb::with_universe(window.to_vec(), n_items).unwrap();
        Eclat::new(MinSupport::Count(minsup))
            .mine(&db)
            .unwrap()
            .itemsets
    }

    fn stream(seed: u64) -> TxnStream {
        let g = QuestGenerator::new(
            QuestConfig {
                n_transactions: 1,
                avg_txn_len: 6.0,
                avg_pattern_len: 3.0,
                n_patterns: 20,
                n_items: 40,
                correlation: 0.25,
                corruption_mean: 0.4,
                corruption_sd: 0.1,
            },
            seed,
        )
        .unwrap();
        TxnStream::new(g, seed.wrapping_add(1))
    }

    #[test]
    fn matches_batch_mining_without_window() {
        let mut e = StreamFrequent::new(40, 5, None).unwrap();
        let txns: Vec<_> = stream(1).take(200).collect();
        for t in &txns {
            e.insert(t);
        }
        assert_eq!(e.query(), mine_window(&txns, 40, 5));
    }

    #[test]
    fn matches_batch_mining_at_every_slide() {
        let cap = 60;
        let mut e = StreamFrequent::new(40, 4, Some(cap)).unwrap();
        let txns: Vec<_> = stream(2).take(150).collect();
        for (i, t) in txns.iter().enumerate() {
            e.insert(t);
            if i % 17 == 0 || i + 1 == txns.len() {
                let start = (i + 1).saturating_sub(cap);
                let expect = mine_window(&txns[start..=i], 40, 4);
                assert_eq!(e.query(), expect, "diverged after {} inserts", i + 1);
            }
        }
        assert_eq!(e.window_len(), cap);
        assert!(e.evictions() > 0);
    }

    #[test]
    fn eviction_drops_stale_itemsets() {
        // Burst of {1,2} pairs, then unrelated singles push them out.
        let mut e = StreamFrequent::new(10, 3, Some(5)).unwrap();
        for _ in 0..4 {
            e.insert(&vec![1, 2]);
        }
        assert_eq!(e.query().support_count(&[1, 2]), Some(4));
        for i in 0..5 {
            e.insert(&vec![3 + i]);
        }
        assert_eq!(e.query().support_count(&[1, 2]), None);
        assert_eq!(e.query().support_count(&[1]), None);
        assert_eq!(e.window_len(), 5);
    }

    #[test]
    fn ignores_out_of_universe_items() {
        let mut e = StreamFrequent::new(4, 1, None).unwrap();
        e.insert(&vec![1, 99, 2]);
        assert_eq!(e.query().support_count(&[1, 2]), Some(1));
        assert_eq!(e.query().support_count(&[1]), Some(1));
    }

    #[test]
    fn governed_query_truncates_report_not_state() {
        use dm_guard::{Budget, RunStatus};
        let mut e = StreamFrequent::new(40, 2, None).unwrap();
        for t in stream(3).take(120) {
            e.insert(&t);
        }
        let full = e.query();
        let guard = Guard::new(Budget::unlimited().with_max_work(3));
        let out = e.query_governed(&guard);
        assert!(matches!(out.status, RunStatus::Truncated(_)));
        assert!(out.result.len() <= full.len());
        // Engine state untouched: a fresh query still reports everything.
        assert_eq!(e.query(), full);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(StreamFrequent::new(0, 1, None).is_err());
        assert!(StreamFrequent::new(4, 0, None).is_err());
        assert!(StreamFrequent::new(4, 1, Some(0)).is_err());
    }
}
