//! Online BIRCH: the CF-tree as a streaming insert/query engine.

use crate::StreamEngine;
use dm_cluster::{Birch, CfNodeStats, CfTree, ClusteringFeature};
use dm_dataset::{DataError, Matrix};
use dm_guard::Guard;
use dm_obs::{HeapSize, Obs};

/// BIRCH phase 1 running live: every arriving point is absorbed into
/// the CF-tree immediately (this is the same [`CfTree`] the batch
/// [`Birch`] condenses into — batch `fit` is a wrapper over this very
/// insert loop). [`StreamBirch::query`] runs phase 3 (weighted
/// k-means++ over the leaf entries) on demand, at any point in the
/// stream, without touching the ingest state.
#[derive(Debug)]
pub struct StreamBirch {
    tree: CfTree,
    k: usize,
    seed: u64,
    seen: u64,
}

/// The CF-tree state, for equivalence testing: leaf entries in tree
/// order plus structure counters. `ClusteringFeature` equality is exact
/// (`n`, `LS`, `SS` compare field-wise).
#[derive(Debug, Clone, PartialEq)]
pub struct BirchSnapshot {
    /// Leaf entries in tree order.
    pub entries: Vec<ClusteringFeature>,
    /// Tree shape.
    pub stats: CfNodeStats,
    /// Node splits performed.
    pub splits: u64,
    /// Records absorbed.
    pub seen: u64,
}

impl StreamBirch {
    /// An online BIRCH targeting `k` clusters, with the CF-tree's leaf
    /// radius `threshold` and `branching` factor.
    pub fn new(k: usize, threshold: f64, branching: usize) -> Result<Self, DataError> {
        if k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        Ok(Self {
            tree: CfTree::new(threshold, branching)?,
            k,
            seed: 0,
            seen: 0,
        })
    }

    /// Sets the seed of the query-time global clustering phase.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of clusters a query produces.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The live CF-tree.
    pub fn tree(&self) -> &CfTree {
        &self.tree
    }

    /// The engine state (for equivalence testing / checkpointing).
    pub fn snapshot(&self) -> BirchSnapshot {
        BirchSnapshot {
            entries: self.tree.leaf_entries().into_iter().cloned().collect(),
            stats: self.tree.stats(),
            splits: self.tree.n_splits(),
            seen: self.seen,
        }
    }

    /// Phase 3 on demand: clusters the current leaf entries into `k`
    /// global centroids under `guard`. Pure read — ingestion state is
    /// untouched, so queries can interleave with inserts freely. Errors
    /// while the stream has produced fewer than `k` leaf entries.
    ///
    /// With the same seed this matches batch `Birch::fit` on the stream
    /// prefix bit for bit (the batch path condenses into the same tree
    /// and runs the same phase 3).
    pub fn query(&self, guard: &Guard) -> Result<Matrix, DataError> {
        let entries = self.tree.leaf_entries();
        Birch::new(self.k)
            .with_seed(self.seed)
            .cluster_entries(&entries, guard)
    }
}

impl StreamEngine for StreamBirch {
    type Record = Vec<f64>;

    fn name(&self) -> &'static str {
        "birch"
    }

    fn insert(&mut self, record: &Vec<f64>) -> u64 {
        self.seen += 1;
        self.tree.insert(record)
    }

    fn records_seen(&self) -> u64 {
        self.seen
    }

    fn observe(&self, obs: &Obs<'_>) {
        if !obs.enabled() {
            return;
        }
        let stats = self.tree.stats();
        obs.counter("stream.birch.splits", self.tree.n_splits());
        obs.gauge("stream.birch.leaf_entries", stats.leaf_entries as f64);
        obs.gauge("stream.birch.height", stats.height as f64);
        obs.gauge_max(
            "stream.birch.cf_tree_mem_bytes",
            self.tree.heap_bytes() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{GaussianMixture, PointStream};

    #[test]
    fn absorbs_and_condenses() {
        let gm = GaussianMixture::well_separated(3, 2, 100, 10.0).unwrap();
        let mut e = StreamBirch::new(3, 1.0, 8).unwrap();
        for (p, _) in PointStream::new(gm, 1).take(300) {
            e.insert(&p);
        }
        assert_eq!(e.records_seen(), 300);
        let snap = e.snapshot();
        assert!(snap.stats.leaf_entries > 0);
        assert!(
            snap.stats.leaf_entries < 100,
            "should condense: {} entries",
            snap.stats.leaf_entries
        );
        let absorbed: usize = snap.entries.iter().map(|e| e.n).sum();
        assert_eq!(absorbed, 300);
    }

    #[test]
    fn query_is_pure_and_deterministic() {
        let gm = GaussianMixture::well_separated(3, 2, 100, 10.0).unwrap();
        let mut e = StreamBirch::new(3, 1.0, 8).unwrap().with_seed(7);
        for (p, _) in PointStream::new(gm, 2).take(200) {
            e.insert(&p);
        }
        let before = e.snapshot();
        let a = e.query(&Guard::unlimited()).unwrap();
        let b = e.query(&Guard::unlimited()).unwrap();
        assert_eq!(e.snapshot(), before, "query must not mutate");
        for r in 0..a.rows() {
            for (x, y) in a.row(r).iter().zip(b.row(r)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn query_errors_before_enough_entries() {
        let mut e = StreamBirch::new(4, 1e9, 8).unwrap();
        e.insert(&vec![0.0, 0.0]);
        e.insert(&vec![0.1, 0.1]);
        assert!(e.query(&Guard::unlimited()).is_err());
    }

    #[test]
    fn rejects_bad_params() {
        assert!(StreamBirch::new(0, 1.0, 8).is_err());
        assert!(StreamBirch::new(2, -1.0, 8).is_err());
        assert!(StreamBirch::new(2, 1.0, 1).is_err());
    }
}
