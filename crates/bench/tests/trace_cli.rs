//! End-to-end tests of `dm trace` through the real binary, replaying
//! the same fixtures `crates/obs/tests/trace_golden.rs` pins: listing
//! must print the committed golden byte-for-byte, filters must narrow
//! it, show/export must resolve ids, and the failure modes must map to
//! the documented exit codes — 1 for a well-formed id the sampler
//! dropped, 2 for a malformed trace file or id (the ISSUE's acceptance
//! criterion).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::{Command, Output};

fn dm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dm"))
        .args(args)
        .output()
        .expect("dm binary runs")
}

/// The fixture set lives with the renderer's golden test in dm-obs.
fn fixture_path(name: &str) -> String {
    format!(
        "{}/../obs/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is utf-8")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is utf-8")
}

/// The id of the pinned, degraded trace (seq 3) in trace_dump.json —
/// `TraceId::mint(0x901D, 3)`, pinned in the show golden's header line.
fn shown_id() -> String {
    let golden = fixture("trace_show.golden");
    let first = golden.lines().next().expect("golden has a header");
    first
        .split_whitespace()
        .nth(1)
        .expect("header starts `trace <id>`")
        .to_owned()
}

#[test]
fn list_prints_the_committed_golden() {
    let out = dm(&["trace", "list", &fixture_path("trace_dump.json")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(stdout(&out), fixture("trace_list.golden"));
}

#[test]
fn list_filters_compose_and_report_the_narrowing() {
    let dump = fixture_path("trace_dump.json");
    let out = dm(&[
        "trace",
        "list",
        &dump,
        "--anomalous",
        "--endpoint",
        "recommend",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let body = stdout(&out);
    assert!(body.contains("truncated"), "{body}");
    assert!(!body.contains("complete"), "filtered row leaked: {body}");
    assert!(stderr(&out).contains("[1 of 4 trace(s) match the filters]"));

    // An outcome filter matches shed reasons too.
    let sheds = dm(&["trace", "list", &dump, "--outcome", "queue_full"]);
    assert!(stdout(&sheds).contains("queue_full"));
    assert!(stderr(&sheds).contains("[1 of 4 trace(s)"));
}

#[test]
fn show_prints_the_committed_golden() {
    let out = dm(&[
        "trace",
        "show",
        &fixture_path("trace_dump.json"),
        &shown_id(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(stdout(&out), fixture("trace_show.golden"));
}

#[test]
fn export_writes_the_committed_chrome_golden() {
    let dest = std::env::temp_dir().join(format!("dm_trace_cli_{}.json", std::process::id()));
    let out = dm(&[
        "trace",
        "export",
        &fixture_path("trace_dump.json"),
        &shown_id(),
        "--out",
        dest.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let written = std::fs::read_to_string(&dest).unwrap();
    let _ = std::fs::remove_file(&dest);
    assert_eq!(written, fixture("trace_chrome.golden"));
    // Without --out the same document goes to stdout.
    let piped = dm(&[
        "trace",
        "export",
        &fixture_path("trace_dump.json"),
        &shown_id(),
    ]);
    assert_eq!(stdout(&piped), fixture("trace_chrome.golden"));
}

#[test]
fn malformed_trace_file_exits_2_with_a_readable_message() {
    let bad = std::env::temp_dir().join(format!("dm_trace_bad_{}.json", std::process::id()));
    std::fs::write(&bad, "{\"schema\": 1, \"traces\": [{\"truncated").unwrap();
    let out = dm(&["trace", "list", bad.to_str().unwrap()]);
    let _ = std::fs::remove_file(&bad);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        stderr(&out).contains("cannot parse trace file"),
        "{}",
        stderr(&out)
    );
    // A missing file is the same class of failure.
    let gone = dm(&["trace", "list", "/nonexistent/trace_dump.json"]);
    assert_eq!(gone.status.code(), Some(2));
    assert!(stderr(&gone).contains("cannot read trace file"));
}

#[test]
fn id_failures_split_between_data_and_usage_exit_codes() {
    let dump = fixture_path("trace_dump.json");
    // Well-formed but unretained id: a data outcome, exit 1.
    let dropped = dm(&["trace", "show", &dump, "00000000000000ff"]);
    assert_eq!(dropped.status.code(), Some(1), "{dropped:?}");
    assert!(stderr(&dropped).contains("not in this file"));
    // Not an id at all: a usage error, exit 2.
    let garbage = dm(&["trace", "show", &dump, "not-hex"]);
    assert_eq!(garbage.status.code(), Some(2), "{garbage:?}");
    assert!(stderr(&garbage).contains("not a trace id"));
    // Verbless invocation: usage, exit 2.
    let verbless = dm(&["trace"]);
    assert_eq!(verbless.status.code(), Some(2));
}
