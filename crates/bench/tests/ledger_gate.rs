//! End-to-end tests of the ledger gate through the real binaries: the
//! `dm` CLI must pass a clean record, fail a deliberately-injected
//! counter regression with a nonzero exit (the ISSUE's acceptance
//! criterion), and accept intentional drift via `--update-baseline`;
//! the `experiments` runner must emit truncated partial snapshots
//! rather than dropping them.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::obs::ledger::{ExperimentRun, MetricDoc, RunRecord};
use std::path::PathBuf;
use std::process::{Command, Output};

/// A scratch directory unique to this test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dm_ledger_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dm"))
        .args(args)
        .output()
        .expect("dm binary runs")
}

/// A small but realistic record: one experiment with work counters, a
/// memory gauge, and a span rollup.
fn sample_record() -> RunRecord {
    let mut record = RunRecord {
        created_unix_ms: 1_700_000_000_000,
        git_rev: "test".into(),
        label: "e1".into(),
        ..Default::default()
    };
    record
        .config
        .insert("parallelism".into(), "sequential".into());
    let mut metrics = MetricDoc::default();
    metrics
        .counters
        .insert("assoc.apriori.pass2.candidates".into(), 5_116);
    metrics
        .counters
        .insert("assoc.apriori.pass2.pruned".into(), 183_702);
    metrics.gauges.insert("assoc.mem.db_bytes".into(), 9_000.0);
    record.experiments.insert(
        "e1".into(),
        ExperimentRun {
            wall_ms: 42.0,
            truncated: None,
            metrics,
        },
    );
    record
}

#[test]
fn check_passes_clean_and_fails_injected_counter_regression() {
    let scratch = Scratch::new("gate");
    let baseline = scratch.path("baseline.json");
    let current = scratch.path("current.json");
    let record = sample_record();
    std::fs::write(&baseline, record.to_json()).unwrap();
    std::fs::write(&current, record.to_json()).unwrap();

    let out = dm(&["ledger", "check", "--baseline", &baseline, &current]);
    assert!(
        out.status.success(),
        "identical records must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Inject the regression the ISSUE names: Apriori's prune step
    // disabled — pruned collapses, the candidate count explodes. Both
    // are exact work counters; no band absorbs them.
    let mut regressed = record.clone();
    {
        let m = &mut regressed.experiments.get_mut("e1").unwrap().metrics;
        m.counters
            .insert("assoc.apriori.pass2.candidates".into(), 188_818);
        m.counters.insert("assoc.apriori.pass2.pruned".into(), 0);
    }
    std::fs::write(&current, regressed.to_json()).unwrap();
    let out = dm(&["ledger", "check", "--baseline", &baseline, &current]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "exact-counter drift must exit 1"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("VIOLATION"),
        "report names violations: {stdout}"
    );
    assert!(
        stdout.contains("assoc.apriori.pass2.candidates"),
        "report names the drifted counter: {stdout}"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--update-baseline"),
        "failure explains the baseline-refresh path"
    );

    // The documented acceptance path: refresh the baseline, recheck.
    let out = dm(&[
        "ledger",
        "check",
        "--baseline",
        &baseline,
        &current,
        "--update-baseline",
    ]);
    assert!(out.status.success(), "--update-baseline exits 0");
    let out = dm(&["ledger", "check", "--baseline", &baseline, &current]);
    assert!(out.status.success(), "check passes after baseline update");
}

#[test]
fn check_tolerates_noisy_timing_drift_but_not_beyond_band() {
    let scratch = Scratch::new("noise");
    let baseline = scratch.path("baseline.json");
    let current = scratch.path("current.json");
    let record = sample_record();
    std::fs::write(&baseline, record.to_json()).unwrap();

    // 8x slower wall-clock: noise on a shared runner, inside the
    // default 16x band -> pass.
    let mut slow = record.clone();
    slow.experiments.get_mut("e1").unwrap().wall_ms = 42.0 * 8.0;
    std::fs::write(&current, slow.to_json()).unwrap();
    let out = dm(&["ledger", "check", "--baseline", &baseline, &current]);
    assert!(
        out.status.success(),
        "in-band timing drift must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // 100x: a complexity change, not noise -> fail; and a tightened
    // band catches the 8x case too.
    slow.experiments.get_mut("e1").unwrap().wall_ms = 42.0 * 100.0;
    std::fs::write(&current, slow.to_json()).unwrap();
    let out = dm(&["ledger", "check", "--baseline", &baseline, &current]);
    assert_eq!(out.status.code(), Some(1), "out-of-band timing fails");

    slow.experiments.get_mut("e1").unwrap().wall_ms = 42.0 * 8.0;
    std::fs::write(&current, slow.to_json()).unwrap();
    let out = dm(&[
        "ledger",
        "check",
        "--baseline",
        &baseline,
        &current,
        "--band",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(1), "--band tightens the gate");
}

#[test]
fn diff_reports_and_json_report_flag_work() {
    let scratch = Scratch::new("diff");
    let a_path = scratch.path("a.json");
    let b_path = scratch.path("b.json");
    let record = sample_record();
    let mut changed = record.clone();
    changed
        .experiments
        .get_mut("e1")
        .unwrap()
        .metrics
        .counters
        .insert("assoc.apriori.pass2.candidates".into(), 6_000);
    std::fs::write(&a_path, record.to_json()).unwrap();
    std::fs::write(&b_path, changed.to_json()).unwrap();

    let out = dm(&["ledger", "diff", &a_path, &b_path]);
    assert!(out.status.success(), "diff is a report, not a gate");
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("assoc.apriori.pass2.candidates"));
    assert!(table.contains("+884"), "delta is shown: {table}");

    let report = scratch.path("report.json");
    let out = dm(&[
        "ledger",
        "check",
        "--baseline",
        &a_path,
        &b_path,
        "--json-report",
        &report,
    ]);
    assert_eq!(out.status.code(), Some(1));
    let written = std::fs::read_to_string(&report).expect("json report written");
    assert!(written.contains("\"assoc.apriori.pass2.candidates\""));

    // Self-diff renders the empty report.
    let out = dm(&["ledger", "diff", &a_path, &a_path]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("no differences"));
}

#[test]
fn malformed_and_missing_records_exit_2() {
    let scratch = Scratch::new("bad");
    let bad = scratch.path("bad.json");
    std::fs::write(&bad, "{ not a record").unwrap();
    let out = dm(&["ledger", "show", &bad]);
    assert_eq!(out.status.code(), Some(2));
    let out = dm(&["ledger", "show", &scratch.path("missing.json")]);
    assert_eq!(out.status.code(), Some(2));
    let out = dm(&["ledger", "frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

/// A malformed *baseline* (or current) record must be a usage error
/// (exit 2) with a message that names the file and where parsing
/// stopped — distinct from exit 1, which means "the gate caught a
/// regression". CI keys off that distinction.
#[test]
fn malformed_baseline_or_current_record_is_a_readable_exit_2() {
    let scratch = Scratch::new("badgate");
    let good = scratch.path("good.json");
    let bad = scratch.path("bad.json");
    std::fs::write(&good, sample_record().to_json()).unwrap();
    // A mid-file truncation, as a killed writer without atomic rename
    // would have produced.
    let full = sample_record().to_json();
    std::fs::write(&bad, &full[..full.len() / 2]).unwrap();

    for (baseline, current) in [(&bad, &good), (&good, &bad)] {
        let out = dm(&["ledger", "check", "--baseline", baseline, current]);
        assert_eq!(out.status.code(), Some(2), "malformed record is exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("cannot parse ledger record") && err.contains("bad.json"),
            "error names the offending file: {err}"
        );
        assert!(
            err.contains("byte"),
            "error locates the parse failure: {err}"
        );
    }
}

/// The satellite fix, end to end: `--update-baseline` must go through
/// the atomic temp-file + rename path — the refreshed baseline parses,
/// equals the current record, and no `*.tmp.*` litter survives.
#[test]
fn update_baseline_is_atomic_and_leaves_no_temp_files() {
    let scratch = Scratch::new("atomic");
    let baseline = scratch.path("baseline.json");
    let current = scratch.path("current.json");
    let record = sample_record();
    let mut drifted = record.clone();
    drifted
        .experiments
        .get_mut("e1")
        .unwrap()
        .metrics
        .counters
        .insert("assoc.apriori.pass2.candidates".into(), 9_999);
    std::fs::write(&baseline, record.to_json()).unwrap();
    std::fs::write(&current, drifted.to_json()).unwrap();

    let out = dm(&[
        "ledger",
        "check",
        "--baseline",
        &baseline,
        &current,
        "--update-baseline",
    ]);
    assert!(out.status.success());
    let refreshed = RunRecord::from_json(&std::fs::read_to_string(&baseline).unwrap())
        .expect("refreshed baseline parses");
    assert_eq!(refreshed.to_json(), drifted.to_json());
    let leftovers: Vec<_> = std::fs::read_dir(&scratch.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
}

/// The satellite fix, end to end: an experiment cut off by its guard
/// deadline must still land in `--metrics` (tagged) and in the ledger
/// record (with its truncation reason), not vanish.
#[test]
fn truncated_experiment_reaches_metrics_and_ledger() {
    let scratch = Scratch::new("trunc");
    let metrics = scratch.path("metrics.json");
    let ledger = scratch.path("ledger.json");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--deadline-ms",
            "150",
            "--metrics",
            &metrics,
            "--ledger",
            &ledger,
            "e1",
        ])
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "a gracefully truncated run is not an error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(
        metrics_json.contains("\"truncated\": \"wall-clock deadline exceeded\""),
        "partial snapshot carries the truncation marker"
    );
    let record = RunRecord::from_json(&std::fs::read_to_string(&ledger).expect("ledger written"))
        .expect("ledger record parses");
    let run = &record.experiments["e1"];
    assert_eq!(
        run.truncated.as_deref(),
        Some("wall-clock deadline exceeded")
    );
    assert!(
        !run.metrics.is_empty(),
        "partial metrics are preserved, not dropped"
    );
    assert!(record.git_rev.len() > 3, "provenance recorded");
}
