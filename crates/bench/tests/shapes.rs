//! Shape-regression harness for the EXPERIMENTS.md ordering claims.
//!
//! Each experiment report in `EXPERIMENTS.md` rests on a *shape* — who
//! generates more candidates, which pass dominates, where the hybrid
//! switches — rather than on wall-clock numbers. Wall-clock is noisy
//! under CI; per-pass work counters are not. These tests re-run
//! scaled-down E1/E2 configurations with an [`InMemoryRecorder`]
//! attached and assert the claimed orderings from the recorded metrics,
//! so a regression that changes the *work done* (not merely the speed)
//! fails loudly.
//!
//! The workload is the Quest generator with the same seeds the
//! experiment harness uses (pattern 101 / db 202), scaled to
//! T10.I4.D2000 at minsup 1% so the whole file runs in well under a
//! second.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_core::prelude::*;
use std::sync::Arc;

fn quest_small() -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(10.0, 4.0, 2_000), 101)
        .expect("valid config")
        .generate(202)
}

const MINSUP: MinSupport = MinSupport::Fraction(0.01);

/// Mines with a fresh recorder attached; returns the result and the
/// metric snapshot.
fn mine_with_metrics(miner: &dyn ItemsetMiner, db: &TransactionDb) -> (MiningResult, Snapshot) {
    let rec = Arc::new(InMemoryRecorder::new());
    let guard = Guard::unlimited().with_recorder(rec.clone());
    let result = miner
        .mine_governed(db, &guard)
        .expect("mining succeeds")
        .result;
    (result, rec.snapshot())
}

/// Per-pass counter values for `algo`, in pass order (metric names are
/// 1-based; the returned vec is 0-based).
fn per_pass(snap: &Snapshot, algo: &str, what: &str) -> Vec<u64> {
    let n = snap
        .counter(&format!("assoc.{algo}.passes"))
        .expect("passes counter present") as usize;
    (1..=n)
        .map(|k| {
            snap.counter(&format!("assoc.{algo}.pass{k}.{what}"))
                .expect("per-pass counter present")
        })
        .collect()
}

fn all_miners() -> Vec<(&'static str, Box<dyn ItemsetMiner>)> {
    vec![
        ("ais", Box::new(Ais::new(MINSUP)) as Box<dyn ItemsetMiner>),
        ("setm", Box::new(Setm::new(MINSUP))),
        ("apriori", Box::new(Apriori::new(MINSUP))),
        ("apriori_tid", Box::new(AprioriTid::new(MINSUP))),
        ("apriori_hybrid", Box::new(AprioriHybrid::new(MINSUP))),
    ]
}

/// Golden per-pass counts for the reference miner (E2 shape, scaled).
/// These are deterministic: fixed Quest seeds, sequential counting.
/// If this fails, the *work profile* of the miners changed — either a
/// generator change (every count moves) or an algorithmic change
/// (one miner's counts move). Update the goldens only after confirming
/// the new profile is intended and EXPERIMENTS.md still holds.
#[test]
fn golden_per_pass_counts_for_apriori() {
    let db = quest_small();
    let (result, snap) = mine_with_metrics(&Apriori::new(MINSUP), &db);
    assert_eq!(per_pass(&snap, "apriori", "candidates"), [1000, 148_240, 6]);
    assert_eq!(per_pass(&snap, "apriori", "frequent"), [545, 20, 4]);
    assert_eq!(result.itemsets.len(), 569);
}

/// The recorded counters must agree with the `MiningStats` the result
/// itself carries — the metrics layer is a second witness, not a second
/// source of truth.
#[test]
fn recorded_counters_match_mining_stats() {
    let db = quest_small();
    for (algo, miner) in all_miners() {
        let (result, snap) = mine_with_metrics(miner.as_ref(), &db);
        let stats_candidates: Vec<u64> = result
            .stats
            .passes
            .iter()
            .map(|p| p.candidates as u64)
            .collect();
        let stats_frequent: Vec<u64> = result
            .stats
            .passes
            .iter()
            .map(|p| p.frequent as u64)
            .collect();
        assert_eq!(
            per_pass(&snap, algo, "candidates"),
            stats_candidates,
            "{algo}: recorded candidates diverge from MiningStats"
        );
        assert_eq!(
            per_pass(&snap, algo, "frequent"),
            stats_frequent,
            "{algo}: recorded frequent counts diverge from MiningStats"
        );
        assert_eq!(
            snap.counter(&format!("assoc.{algo}.passes")),
            Some(result.stats.passes.len() as u64),
            "{algo}: pass count"
        );
    }
}

/// E1/E2 ordering claim: every miner finds the same frequent sets; the
/// difference is how many candidates they count to get there. All five
/// miners must agree on the per-pass frequent counts (prefix-wise: AIS
/// and SETM run one more, empty, pass).
#[test]
fn all_miners_agree_on_frequent_sets() {
    let db = quest_small();
    let mut reference: Option<Vec<u64>> = None;
    for (algo, miner) in all_miners() {
        let (result, snap) = mine_with_metrics(miner.as_ref(), &db);
        assert_eq!(
            result.itemsets.len(),
            569,
            "{algo}: total frequent itemsets"
        );
        let mut frequent = per_pass(&snap, algo, "frequent");
        while frequent.last() == Some(&0) {
            frequent.pop();
        }
        match &reference {
            Some(first) => assert_eq!(first, &frequent, "{algo}: per-pass frequent counts"),
            None => reference = Some(frequent),
        }
    }
}

/// E2's central claim (the VLDB'94 per-pass candidate figure): from
/// pass 3 on, AIS and SETM — which generate candidates by extending
/// frequent sets with *every* item seen in each transaction — count
/// orders of magnitude more candidates than the Apriori family, whose
/// candidates come from the L(k-1) self-join. This is why they are the
/// slowest miners in E1.
#[test]
fn ais_and_setm_blow_up_after_pass_two() {
    let db = quest_small();
    let late = |algo: &str, snap: &Snapshot| -> u64 {
        per_pass(snap, algo, "candidates").iter().skip(2).sum()
    };
    let (_, snap) = mine_with_metrics(&Apriori::new(MINSUP), &db);
    let apriori_late = late("apriori", &snap);
    let (_, snap) = mine_with_metrics(&Ais::new(MINSUP), &db);
    let ais_late = late("ais", &snap);
    let (_, snap) = mine_with_metrics(&Setm::new(MINSUP), &db);
    let setm_late = late("setm", &snap);
    assert!(
        ais_late >= 100 * apriori_late.max(1),
        "AIS pass>=3 candidates ({ais_late}) should dwarf Apriori's ({apriori_late})"
    );
    assert!(
        setm_late >= 100 * apriori_late.max(1),
        "SETM pass>=3 candidates ({setm_late}) should dwarf Apriori's ({apriori_late})"
    );
}

/// E1's hybrid claim, restated in counters: AprioriHybrid must be
/// best-or-tied on candidate work — per pass, it counts no more
/// candidates than either Apriori or AprioriTid (it runs the same
/// candidate generation, switching only the counting representation).
#[test]
fn hybrid_candidate_work_is_best_or_tied() {
    let db = quest_small();
    let (_, snap_hy) = mine_with_metrics(&AprioriHybrid::new(MINSUP), &db);
    let (_, snap_ap) = mine_with_metrics(&Apriori::new(MINSUP), &db);
    let (_, snap_tid) = mine_with_metrics(&AprioriTid::new(MINSUP), &db);
    let hy = per_pass(&snap_hy, "apriori_hybrid", "candidates");
    let ap = per_pass(&snap_ap, "apriori", "candidates");
    let tid = per_pass(&snap_tid, "apriori_tid", "candidates");
    assert_eq!(hy.len(), ap.len(), "hybrid runs the same passes as apriori");
    for (k, ((h, a), t)) in hy.iter().zip(&ap).zip(&tid).enumerate() {
        assert!(
            h <= a && h <= t,
            "pass {}: hybrid candidates {h} exceed apriori {a} or tid {t}",
            k + 1
        );
    }
}

/// After the pass-2 peak (the |L1| self-join), candidate counts fall
/// monotonically for every miner on this workload — the long tail that
/// makes later passes cheap. A non-monotone profile means candidate
/// generation regressed.
#[test]
fn candidates_monotone_after_pass_two() {
    let db = quest_small();
    for (algo, miner) in all_miners() {
        let (_, snap) = mine_with_metrics(miner.as_ref(), &db);
        let candidates = per_pass(&snap, algo, "candidates");
        for w in candidates[1..].windows(2) {
            assert!(
                w[1] <= w[0],
                "{algo}: candidates rose {} -> {} after pass 2 (profile {candidates:?})",
                w[0],
                w[1]
            );
        }
    }
}

/// The VLDB'94 memory story, restated in gauges: AprioriTid's candidate
/// tid-list relation C̄_k must outgrow the raw database in at least one
/// pass on this T10.I4-style workload (the reason AprioriTid loses the
/// early passes and the hybrid switches late), while Apriori's
/// hash-tree high-water mark stays below the database (its pair pass
/// uses the dense triangular array; trees are built only for the tiny
/// late-pass candidate sets).
#[test]
fn apriori_tid_ck_outgrows_database_but_hashtree_does_not() {
    let db = quest_small();
    let (_, snap) = mine_with_metrics(&AprioriTid::new(MINSUP), &db);
    let db_bytes = snap
        .gauge("assoc.mem.db_bytes")
        .expect("database footprint recorded");
    assert!(db_bytes > 0.0);
    let ck_peak = snap
        .gauge("assoc.mem.ck_bytes")
        .expect("tid-list footprint recorded");
    assert!(
        ck_peak > db_bytes,
        "C-bar peak {ck_peak} should exceed the database's {db_bytes} bytes"
    );
    let crossover_passes: Vec<String> = snap
        .gauges_with_prefix("assoc.apriori_tid.pass")
        .into_iter()
        .filter(|(name, v)| name.ends_with("ck_mem_bytes") && *v > db_bytes)
        .map(|(name, _)| name.to_owned())
        .collect();
    assert!(
        !crossover_passes.is_empty(),
        "at least one pass's C-bar must exceed the database"
    );

    let (_, snap) = mine_with_metrics(&Apriori::new(MINSUP), &db);
    let db_bytes = snap
        .gauge("assoc.mem.db_bytes")
        .expect("database footprint recorded");
    let tree_peak = snap
        .gauge("assoc.mem.hashtree_bytes")
        .expect("hash-tree footprint recorded");
    assert!(
        tree_peak < db_bytes,
        "Apriori's hash-tree peak {tree_peak} should stay below the database's {db_bytes} bytes"
    );
}

/// FP-Growth's headline claim (Han et al., SIGMOD 2000), restated in
/// counters: it finds the exact same per-pass frequent sets while
/// generating **zero** candidates — against Apriori's 148k-candidate
/// pass-2 blow-up on the same workload.
#[test]
fn fp_growth_counts_zero_candidates_where_apriori_blows_up() {
    let db = quest_small();
    let (result, snap) = mine_with_metrics(&FpGrowth::new(MINSUP), &db);
    assert_eq!(result.itemsets.len(), 569);
    let candidates = per_pass(&snap, "fp", "candidates");
    assert!(
        candidates.iter().all(|&c| c == 0),
        "FP-Growth generated candidates: {candidates:?}"
    );
    let mut frequent = per_pass(&snap, "fp", "frequent");
    while frequent.last() == Some(&0) {
        frequent.pop();
    }
    assert_eq!(frequent, [545, 20, 4]);
    // The same discovery costs Apriori a six-figure candidate pass.
    let (_, snap_ap) = mine_with_metrics(&Apriori::new(MINSUP), &db);
    assert_eq!(per_pass(&snap_ap, "apriori", "candidates")[1], 148_240);
    // Tree instrumentation is live: a materialized tree and at least one
    // conditional projection.
    assert!(snap.counter("assoc.fp.tree_nodes").unwrap() > 0);
    assert!(snap.counter("assoc.fp.cond_trees").unwrap() > 0);
    assert!(snap.gauge("assoc.mem.fptree_bytes").unwrap() > 0.0);
}

/// Eclat's projection depth is bounded by the longest frequent itemset:
/// the DFS never recurses past prefixes that are themselves frequent, so
/// the recorded max depth sits in `[max_len - 1, max_len]`. A deeper
/// recursion means the class pruning regressed.
#[test]
fn eclat_projection_depth_tracks_longest_itemset() {
    let db = quest_small();
    let (result, snap) = mine_with_metrics(&Eclat::new(MINSUP), &db);
    assert_eq!(result.itemsets.len(), 569);
    let mut frequent = per_pass(&snap, "eclat", "frequent");
    while frequent.last() == Some(&0) {
        frequent.pop();
    }
    assert_eq!(frequent, [545, 20, 4]);
    let max_len = result.itemsets.max_len();
    let depth = snap.gauge("assoc.eclat.max_depth").unwrap() as usize;
    assert!(
        depth + 1 >= max_len && depth <= max_len,
        "projection depth {depth} out of bounds for max itemset length {max_len}"
    );
    // Pass 1 admits every item column; later passes count intersections,
    // of which there is at least one per frequent extension.
    assert_eq!(per_pass(&snap, "eclat", "candidates")[0], 1000);
    let intersections = snap.counter("assoc.eclat.intersections").unwrap();
    assert!(intersections >= (result.itemsets.len() - frequent[0] as usize) as u64);
    assert!(snap.gauge("assoc.mem.vertical_bytes").unwrap() > 0.0);
}

/// The hash-tree visit counter (A1's ablation currency) must be live:
/// recorded for Apriori whenever a pass at k >= 3 actually counted
/// candidates through the tree.
#[test]
fn hashtree_visits_are_recorded_for_late_passes() {
    let db = quest_small();
    let (_, snap) = mine_with_metrics(&Apriori::new(MINSUP), &db);
    let visits: u64 = snap
        .counters_with_prefix("assoc.apriori.pass")
        .into_iter()
        .filter(|(k, _)| k.ends_with("hashtree_visits"))
        .map(|(_, v)| v)
        .sum();
    assert!(visits > 0, "pass-3 counting should traverse the hash tree");
}
