//! Serving experiment E15: throughput and overload behaviour of the
//! `dm-serve` request loop.
//!
//! Three sections, each driven by the bundled seeded load generator so
//! the *counters* are bit-reproducible run to run (that is what lets
//! the ledger gate them at 0% tolerance) while the *timings* land in
//! `_ns`-suffixed counters the ledger bands as noisy:
//!
//! 1. **Throughput** — the same closed-loop load against 1, 2 and 4
//!    workers; QPS and p50/p99 response latency.
//! 2. **Degradation** — a one-unit work budget per request forces the
//!    guard to trip mid-handler; every response must still be answered,
//!    split deterministically between full and degraded tiers.
//! 3. **Faults** — a zero-worker server with a one-slot queue: sheds
//!    are typed, the client retry pot bounds amplification, and the
//!    stalled-client chaos knob proves abandoned tickets cost nothing.

use crate::table::{fmt_duration, Table};
use dm_core::dataset::DataError;
use dm_core::guard::Guard;
use dm_serve::{loadgen, LoadGenConfig, LoadReport, ModelSet, ServeConfig, Server};
use std::time::Duration;

/// Seed for the served model bundle and the load streams.
const SEED: u64 = 15;

fn fmt_ns(ns: u64) -> String {
    fmt_duration(Duration::from_nanos(ns))
}

/// E15 — model serving under load and under fault injection. The
/// deterministic outcome counters land in the run ledger as
/// `serve.e15.*` (0%-gated); wall-clock aggregates as `serve.e15.*_ns`
/// (noisy-banded).
pub fn e15_serving(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E15: serving throughput, degradation and overload\n");
    out.push_str(
        "(dm-serve request loop: admission control, graceful degradation, typed sheds)\n\n",
    );
    let obs = guard.obs();

    // -- 1: throughput vs worker count --------------------------------
    let mut table = Table::new(
        "closed-loop load (2 clients x 40 requests, no deadline)",
        &["workers", "answered", "elapsed", "qps", "p50", "p99"],
    );
    for workers in [1usize, 2, 4] {
        if guard.should_stop() {
            break;
        }
        let server = Server::start(
            ModelSet::demo(SEED)?,
            ServeConfig {
                workers,
                queue_capacity: 64,
                default_deadline: None,
                trace: None,
            },
        );
        let report = loadgen::run(
            &server,
            &LoadGenConfig {
                seed: SEED,
                clients: 2,
                requests_per_client: 40,
                deadline: None,
                ..LoadGenConfig::default()
            },
        );
        server.shutdown();
        let p50 = report.latency_quantile_ns(0.50);
        let p99 = report.latency_quantile_ns(0.99);
        table.row(vec![
            workers.to_string(),
            report.ok.to_string(),
            fmt_duration(report.elapsed),
            format!("{:.0}", report.qps()),
            fmt_ns(p50),
            fmt_ns(p99),
        ]);
        if obs.enabled() {
            obs.counter_fmt(
                format_args!("serve.e15.throughput.w{workers}.completed"),
                report.ok,
            );
            obs.counter_fmt(format_args!("serve.e15.throughput.w{workers}.p50_ns"), p50);
            obs.counter_fmt(format_args!("serve.e15.throughput.w{workers}.p99_ns"), p99);
            obs.counter_fmt(
                format_args!("serve.e15.throughput.w{workers}.elapsed_ns"),
                u64::try_from(report.elapsed.as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
    out.push_str(&table.render());
    out.push('\n');

    // -- 2: deterministic degradation under a starved work budget -----
    if !guard.should_stop() {
        let server = Server::start(
            ModelSet::demo(SEED)?,
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                default_deadline: None,
                trace: None,
            },
        );
        let report = loadgen::run(
            &server,
            &LoadGenConfig {
                seed: SEED,
                clients: 1,
                requests_per_client: 40,
                deadline: None,
                max_work: Some(1),
                ..LoadGenConfig::default()
            },
        );
        server.shutdown();
        out.push_str(&degrade_table(&report).render());
        out.push('\n');
        if obs.enabled() {
            obs.counter("serve.e15.degrade.complete", report.ok);
            obs.counter("serve.e15.degrade.truncated", report.truncated);
            obs.counter("serve.e15.degrade.degraded", report.degraded);
        }
    }

    // -- 3: overload: typed sheds, bounded retries, stalled clients ---
    if !guard.should_stop() {
        let server = Server::start(
            ModelSet::demo(SEED)?,
            ServeConfig {
                workers: 0,
                queue_capacity: 1,
                default_deadline: None,
                trace: None,
            },
        );
        let report = loadgen::run(
            &server,
            &LoadGenConfig {
                seed: SEED,
                clients: 1,
                requests_per_client: 5,
                stall_ratio: 1.0,
                max_attempts: 3,
                retry_budget: 2,
                base_backoff: Duration::from_micros(10),
                deadline: None,
                ..LoadGenConfig::default()
            },
        );
        let drained = server.shutdown();
        let mut table = Table::new(
            "overload (0 workers, queue of 1, stalling client, retry pot of 2)",
            &[
                "attempts",
                "stalled",
                "shed",
                "retries",
                "drained at shutdown",
            ],
        );
        table.row(vec![
            report.attempts.to_string(),
            report.stalled.to_string(),
            report.shed.to_string(),
            report.retries.to_string(),
            drained.to_string(),
        ]);
        out.push_str(&table.render());
        if obs.enabled() {
            obs.counter("serve.e15.fault.attempts", report.attempts);
            obs.counter("serve.e15.fault.stalled", report.stalled);
            obs.counter("serve.e15.fault.shed", report.shed);
            obs.counter("serve.e15.fault.retries", report.retries);
            obs.counter("serve.e15.fault.drained", drained as u64);
        }
    }
    Ok(out)
}

fn degrade_table(report: &LoadReport) -> Table {
    let mut table = Table::new(
        "degradation under max_work = 1 (1 client x 40 requests)",
        &["answered", "complete", "truncated", "degraded tier"],
    );
    table.row(vec![
        (report.ok + report.truncated).to_string(),
        report.ok.to_string(),
        report.truncated.to_string(),
        report.degraded.to_string(),
    ]);
    table
}
