//! Clustering experiments E6–E8 and ablation A2.

use crate::table::{fmt_duration, Table};
use dm_core::prelude::*;
use std::time::Instant;

/// E6 — the k-means elbow curve at the true k, plus the k-means++ vs
/// random-init comparison (shape of the k-means++ evaluation).
pub fn e6_elbow_and_init(guard: &Guard) -> Result<String, DataError> {
    let mixture = GaussianMixture::well_separated(5, 2, 300, 7.0)?;
    let (data, _) = mixture.generate(31);
    let mut out = String::new();
    out.push_str("# E6: k-means elbow and initialization comparison (true k = 5)\n\n");

    let mut elbow = Table::new(
        "SSE vs k (kmeans++, best of 3 seeds)",
        &["k", "sse", "iterations"],
    );
    for k in 1..=10usize {
        let mut best = KMeans::new(k)
            .with_seed(0)
            .fit_model_governed(&data, guard)?
            .result;
        for seed in 1..3 {
            let m = KMeans::new(k)
                .with_seed(seed)
                .fit_model_governed(&data, guard)?
                .result;
            if m.inertia < best.inertia {
                best = m;
            }
        }
        elbow.row(vec![
            k.to_string(),
            format!("{:.0}", best.inertia),
            best.iterations.to_string(),
        ]);
    }
    out.push_str(&elbow.render());
    out.push('\n');

    let mut init = Table::new(
        "init strategy over 10 seeds (k = 5)",
        &["init", "mean sse", "worst sse", "mean iterations"],
    );
    for (label, strategy) in [("random", Init::Random), ("kmeans++", Init::KMeansPlusPlus)] {
        let models = (0..10)
            .map(|seed| {
                KMeans::new(5)
                    .with_init(strategy)
                    .with_seed(seed)
                    .fit_model_governed(&data, guard)
                    .map(|o| o.result)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mean_sse = models.iter().map(|m| m.inertia).sum::<f64>() / models.len() as f64;
        let worst = models.iter().map(|m| m.inertia).fold(0.0f64, f64::max);
        let mean_iter =
            models.iter().map(|m| m.iterations).sum::<usize>() as f64 / models.len() as f64;
        init.row(vec![
            label.into(),
            format!("{mean_sse:.0}"),
            format!("{worst:.0}"),
            format!("{mean_iter:.1}"),
        ]);
    }
    out.push_str(&init.render());
    Ok(out)
}

/// k-means with the conventional multiple-restart protocol: the restart
/// with the lowest inertia wins.
struct BestOfKMeans {
    k: usize,
    restarts: u64,
}

impl Clusterer for BestOfKMeans {
    fn name(&self) -> &'static str {
        "kmeans++ (x5)"
    }

    fn fit_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<Clustering>, dm_core::dataset::DataError> {
        let mut best = KMeans::new(self.k)
            .with_seed(0)
            .fit_model_governed(data, guard)?
            .result;
        for seed in 1..self.restarts {
            if guard.should_stop() {
                break;
            }
            let m = KMeans::new(self.k)
                .with_seed(seed)
                .fit_model_governed(data, guard)?
                .result;
            if m.inertia < best.inertia {
                best = m;
            }
        }
        Ok(guard.outcome(Clustering {
            assignments: best.assignments,
            n_clusters: self.k,
            centroids: Some(best.centroids),
        }))
    }
}

/// E7 — clustering quality across data regimes (the algorithm-comparison
/// table of the BIRCH/CLARANS era evaluations).
pub fn e7_quality_comparison(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E7: clustering quality (ARI / NMI) across data regimes\n\n");

    let regimes: Vec<(&str, GaussianMixture)> = vec![
        (
            "well-separated",
            GaussianMixture::well_separated(4, 2, 150, 8.0)?,
        ),
        (
            "overlapping",
            GaussianMixture::well_separated(4, 2, 150, 2.5)?,
        ),
        (
            "imbalanced",
            GaussianMixture::new(vec![
                ClusterSpec::new(vec![0.0, 0.0], 1.0, 450),
                ClusterSpec::new(vec![8.0, 0.0], 1.0, 100),
                ClusterSpec::new(vec![4.0, 7.0], 1.0, 50),
            ])?,
        ),
        (
            "noisy",
            GaussianMixture::well_separated(4, 2, 140, 8.0)?.with_noise(60, 15.0),
        ),
    ];

    for (regime, mixture) in regimes {
        let k = mixture.k();
        let (data, truth) = mixture.generate(77);
        let mut table = Table::new(
            format!("{regime} (n = {}, k = {k})", data.rows()),
            &["algorithm", "ari", "nmi", "clusters", "noise pts"],
        );
        let clusterers: Vec<Box<dyn Clusterer>> = vec![
            Box::new(BestOfKMeans { k, restarts: 5 }),
            Box::new(Pam::new(k)),
            Box::new(Clarans::new(k).with_seed(1)),
            Box::new(Agglomerative::new(k).with_linkage(Linkage::Ward)),
            Box::new(Birch::new(k).with_threshold(1.0).with_seed(1)),
            Box::new(Dbscan::new(1.2, 5)),
        ];
        for c in clusterers {
            let result = c.fit_governed(&data, guard)?.result;
            // Noise labels participate as their own "cluster" for scoring.
            let ari = adjusted_rand_index(&truth, &result.assignments)?;
            let nmi = normalized_mutual_information(&truth, &result.assignments)?;
            table.row(vec![
                c.name().into(),
                format!("{ari:.3}"),
                format!("{nmi:.3}"),
                result.n_clusters.to_string(),
                result.n_noise().to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    Ok(out)
}

/// E8 — wall-clock scaling of BIRCH vs hierarchical vs k-means (the
/// BIRCH SIGMOD'96 scaling figure: hierarchical blows up quadratically,
/// BIRCH stays near-linear).
pub fn e8_scaling(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E8: clustering time vs dataset size (d = 2, k = 5)\n\n");
    let mut table = Table::new(
        "time (and ARI) by n",
        &[
            "n",
            "kmeans++",
            "birch",
            "hierarchical",
            "ari kmeans",
            "ari birch",
            "ari hier",
        ],
    );
    for n_per in [100usize, 200, 400, 800, 1600] {
        let mixture = GaussianMixture::well_separated(5, 2, n_per, 8.0)?;
        let (data, truth) = mixture.generate(13);
        let n = data.rows();

        let t0 = Instant::now();
        let km = KMeans::new(5)
            .with_seed(3)
            .fit_governed(&data, guard)?
            .result;
        let t_km = t0.elapsed();

        let t0 = Instant::now();
        let bi = Birch::new(5)
            .with_threshold(1.0)
            .with_seed(3)
            .fit_governed(&data, guard)?
            .result;
        let t_bi = t0.elapsed();

        let t0 = Instant::now();
        let hi = Agglomerative::new(5)
            .with_linkage(Linkage::Average)
            .fit_governed(&data, guard)?
            .result;
        let t_hi = t0.elapsed();

        table.row(vec![
            n.to_string(),
            fmt_duration(t_km),
            fmt_duration(t_bi),
            fmt_duration(t_hi),
            format!("{:.3}", adjusted_rand_index(&truth, &km.assignments)?),
            format!("{:.3}", adjusted_rand_index(&truth, &bi.assignments)?),
            format!("{:.3}", adjusted_rand_index(&truth, &hi.assignments)?),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// A2 — BIRCH sensitivity to its CF-tree parameters.
pub fn a2_birch_ablation(guard: &Guard) -> Result<String, DataError> {
    let mixture = GaussianMixture::well_separated(5, 2, 600, 8.0)?;
    let (data, truth) = mixture.generate(5);
    let mut out = String::new();
    out.push_str("# A2: BIRCH threshold / branching ablation (n = 3000, k = 5)\n\n");
    let mut table = Table::new(
        "CF-tree shape and quality",
        &["threshold", "branching", "leaf entries", "time", "ari"],
    );
    for threshold in [0.25, 0.5, 1.0, 2.0, 4.0f64] {
        for branching in [4usize, 16] {
            let birch = Birch::new(5)
                .with_threshold(threshold)
                .with_branching(branching)
                .with_seed(7);
            let stats = birch.tree_stats(&data)?;
            let t0 = Instant::now();
            let result = birch.fit_governed(&data, guard)?.result;
            let time = t0.elapsed();
            let ari = adjusted_rand_index(&truth, &result.assignments)?;
            table.row(vec![
                format!("{threshold}"),
                branching.to_string(),
                stats.leaf_entries.to_string(),
                fmt_duration(time),
                format!("{ari:.3}"),
            ]);
        }
    }
    out.push_str(&table.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_elbow_shape_holds_on_small_instance() {
        use dm_core::prelude::*;
        let (data, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
            .unwrap()
            .generate(1);
        let sse_at = |k: usize| {
            KMeans::new(k)
                .with_seed(0)
                .fit_model(&data)
                .unwrap()
                .inertia
        };
        // SSE falls steeply up to the true k, then flattens.
        let s1 = sse_at(1);
        let s3 = sse_at(3);
        let s6 = sse_at(6);
        assert!(s3 < s1 * 0.2, "elbow drop: {s3} vs {s1}");
        assert!(s6 > s3 * 0.3, "beyond the elbow the drop flattens");
    }
}
