//! Trace experiment E18: request-scoped tracing with tail-based
//! sampling and histogram exemplars, end to end through
//! `dm_obs::trace` and the `dm-serve` request path.
//!
//! Four sections:
//!
//! 1. **Shed burst** — a zero-worker, one-slot server sheds a scripted
//!    burst; every shed and the shutdown-drained straggler is anomalous
//!    and therefore *always* retained, so the retention counters are
//!    exact and the ledger gates them at 0% tolerance.
//! 2. **Degradation mix** — a scripted run interleaving clean requests
//!    with zero-deadline guard trips; anomalous traces survive
//!    unconditionally, boring ones by the deterministic 1-in-N
//!    sampler. `slowest_k` is off in every gated section, so no
//!    wall-clock reading can change the retained set.
//! 3. **Exemplar coverage** — with full sampling, every populated
//!    `serve.latency.*` bucket must carry an exemplar that resolves to
//!    a retained trace (the ISSUE's acceptance criterion).
//! 4. **Overhead** — the same workload with tracing off and on;
//!    wall-clock lands in `_ns` counters the ledger noise-bands.
//!
//! Each serving section runs against a private recorder; the
//! deterministic `trace.*` counters are re-exported into the
//! experiment guard's recorder alongside `trace.e18.*` summaries.

use crate::table::Table;
use dm_core::dataset::DataError;
use dm_core::guard::{Budget, CancelToken, Guard, RunStatus};
use dm_core::obs::trace::TraceConfig;
use dm_core::obs::{InMemoryRecorder, Obs, Recorder, Snapshot, TraceId};
use dm_serve::{ModelKind, ModelSet, Request, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed for the served bundle and every minted trace id.
const SEED: u64 = 18;

/// Serving failures are setup bugs here, not data outcomes — surface
/// them as the experiment error instead of panicking in library code.
fn served<T, E: std::fmt::Debug>(result: Result<T, E>, what: &str) -> Result<T, DataError> {
    result.map_err(|e| DataError::InvalidParameter(format!("e18 {what}: {e:?}")))
}

/// The trace store a traced config is guaranteed to carry.
fn tracer_of(server: &Server) -> Result<Arc<dm_core::obs::trace::TraceStore>, DataError> {
    server
        .tracer()
        .ok_or_else(|| DataError::InvalidParameter("e18: traced config lost its store".into()))
}

/// A cheap request for every section's traffic.
fn predict() -> Request {
    Request::Predict {
        model: ModelKind::Tree,
        rows: vec![vec![0.5, 0.5]],
    }
}

/// A traced config with `slowest_k` off: retention is a pure function
/// of the request script, never of wall-clock durations.
fn traced(workers: usize, capacity: usize, sample_every: u64) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: capacity,
        default_deadline: None,
        trace: Some(TraceConfig {
            seed: SEED,
            sample_every,
            slowest_k: 0,
            ..TraceConfig::default()
        }),
    }
}

/// Re-emits the deterministic sampler counters from a section's private
/// recorder into the experiment guard's recorder, where the ledger
/// gates them at 0%. Counters accumulate across sections.
fn export_trace_series(obs: &Obs<'_>, snap: &Snapshot) {
    for (name, v) in &snap.counters {
        if name.starts_with("trace.") {
            obs.counter(name, *v);
        }
    }
}

/// E18 — tail-based trace sampling and exemplars over live serving.
/// Retention counts land as `trace.e18.*` plus the re-exported
/// `trace.*` series (0%-gated); wall-clock stays in `_ns` names.
pub fn e18_trace(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E18: request tracing, tail-based sampling and exemplars\n");
    out.push_str(
        "(dm_obs::trace through dm-serve: seeded ids, anomaly-first retention, slowest-k off)\n\n",
    );
    let obs = guard.obs();
    let wait = Duration::from_secs(10);

    // -- 1: shed burst -> every anomalous trace is retained -----------
    if !guard.should_stop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let server = Server::start_recorded(
            ModelSet::demo(SEED)?,
            traced(0, 1, 0), // sampling off: retention == anomaly
            rec.clone() as Arc<dyn Recorder>,
        );
        let held = server.submit(predict()).map(|t| t.trace_id());
        let mut sheds = 0u64;
        for _ in 0..7 {
            if server.submit(predict()).is_err() {
                sheds += 1;
            }
        }
        let tracer = tracer_of(&server)?;
        let drained = server.shutdown();
        let retained = tracer.retained();
        let stats = tracer.stats();

        let mut table = Table::new(
            "shed burst: 0 workers, queue of 1, 8 submissions (sampling off)",
            &["outcome", "retained", "anomalous"],
        );
        for outcome in ["queue_full", "shutdown"] {
            let matching: Vec<_> = retained.iter().filter(|t| t.outcome() == outcome).collect();
            table.row(vec![
                outcome.to_string(),
                matching.len().to_string(),
                matching
                    .iter()
                    .filter(|t| t.is_anomalous())
                    .count()
                    .to_string(),
            ]);
        }
        out.push_str(&table.render());
        let _ = {
            use std::fmt::Write as _;
            writeln!(
                out,
                "held id {:?} drained at shutdown ({drained} request(s)); {} dropped, {} bytes live\n",
                held.ok().flatten(),
                stats.dropped,
                stats.bytes
            )
        };
        if obs.enabled() {
            obs.counter("trace.e18.burst.submitted", 8);
            obs.counter("trace.e18.burst.sheds", sheds);
            obs.counter("trace.e18.burst.drained", drained as u64);
            obs.counter("trace.e18.burst.retained", stats.retained);
            obs.counter("trace.e18.burst.dropped", stats.dropped);
            export_trace_series(&obs, &rec.snapshot());
        }
    }

    // -- 2: degradation mix -> anomaly-first, sampled boring tail -----
    if !guard.should_stop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let server = Server::start_recorded(
            ModelSet::demo(SEED)?,
            traced(1, 16, 4), // keep every 4th boring trace
            rec.clone() as Arc<dyn Recorder>,
        );
        let mut truncated = 0u64;
        let mut complete = 0u64;
        // Sequential script: every 3rd request carries a zero deadline,
        // trips the guard at its first check and is served degraded.
        for seq in 1..=12u64 {
            let budget = if seq % 3 == 0 {
                Budget::unlimited().with_deadline(Duration::ZERO)
            } else {
                Budget::unlimited()
            };
            let ticket = served(
                server.submit_with(predict(), budget, CancelToken::new()),
                "mix submit",
            )?;
            let response = served(ticket.wait(wait), "mix wait")?;
            match response.status {
                RunStatus::Truncated(_) => truncated += 1,
                RunStatus::Complete => complete += 1,
            }
        }
        let tracer = tracer_of(&server)?;
        server.shutdown();
        let retained = tracer.retained();
        let stats = tracer.stats();
        let anomalous = retained.iter().filter(|t| t.is_anomalous()).count() as u64;
        let resolvable = retained
            .iter()
            .filter(|t| tracer.find(t.id).is_some())
            .count() as u64;

        let mut table = Table::new(
            "degradation mix: 12 sequential requests, every 3rd with a zero deadline (1-in-4 sampling)",
            &["series", "count"],
        );
        for (name, v) in [
            ("complete responses", complete),
            ("truncated responses", truncated),
            ("retained traces", stats.retained),
            ("  of which anomalous", anomalous),
            ("sampled-out (dropped)", stats.dropped),
        ] {
            table.row(vec![name.to_string(), v.to_string()]);
        }
        out.push_str(&table.render());
        out.push('\n');
        if obs.enabled() {
            obs.counter("trace.e18.mix.complete", complete);
            obs.counter("trace.e18.mix.truncated", truncated);
            obs.counter("trace.e18.mix.retained", stats.retained);
            obs.counter("trace.e18.mix.anomalous", anomalous);
            obs.counter("trace.e18.mix.dropped", stats.dropped);
            obs.counter("trace.e18.mix.resolvable", resolvable);
            export_trace_series(&obs, &rec.snapshot());
        }
    }

    // -- 3: exemplar coverage -> every populated bucket resolves ------
    if !guard.should_stop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let server = Server::start_recorded(
            ModelSet::demo(SEED)?,
            traced(1, 16, 1), // retain everything: exemplars must resolve
            rec.clone() as Arc<dyn Recorder>,
        );
        for _ in 0..8 {
            let ticket = served(server.submit(predict()), "exemplar submit")?;
            served(ticket.wait(wait), "exemplar wait")?;
        }
        let tracer = tracer_of(&server)?;
        server.shutdown();
        let snap = rec.snapshot();
        let mut buckets = 0u64;
        let mut observations = 0u64;
        let mut resolved = 0u64;
        for (name, hist) in &snap.histograms {
            if !name.starts_with("serve.latency.") {
                continue;
            }
            let exemplars = snap.exemplars.get(name);
            for (bucket, count) in hist.nonzero_buckets() {
                buckets += 1;
                observations += count;
                if let Some(ex) = exemplars.and_then(|m| m.get(&bucket)) {
                    if tracer.find(TraceId(ex.trace_id)).is_some() {
                        resolved += 1;
                    }
                    // Replay the exemplar observation into the
                    // experiment recorder, so the run's `--prom`
                    // capture carries OpenMetrics exemplar lines (the
                    // CI trace-smoke step validates them). The values
                    // are wall-clock: `_ns` names keep them in the
                    // ledger's noisy class.
                    if obs.enabled() {
                        obs.value_traced(name, ex.value, TraceId(ex.trace_id));
                    }
                }
            }
        }
        let all_resolved = u64::from(buckets > 0 && resolved == buckets);

        let mut table = Table::new(
            "exemplar coverage: 8 fully-sampled requests (bucket counts are timing noise; coverage is not)",
            &["series", "count"],
        );
        for (name, v) in [
            ("latency observations", observations),
            ("populated buckets", buckets),
            ("buckets with resolvable exemplar", resolved),
            ("full coverage (0/1)", all_resolved),
        ] {
            table.row(vec![name.to_string(), v.to_string()]);
        }
        out.push_str(&table.render());
        out.push('\n');
        if obs.enabled() {
            // Bucket placement follows wall-clock durations, so only
            // the observation total and the coverage verdict are gated.
            obs.counter("trace.e18.exemplar.observations", observations);
            obs.counter("trace.e18.exemplar.full_coverage", all_resolved);
            export_trace_series(&obs, &snap);
        }
    }

    // -- 4: overhead -> tracing off vs on, noise-banded ---------------
    if !guard.should_stop() {
        let requests = 64u64;
        let run_wall = |config: ServeConfig| -> Result<u64, DataError> {
            let server = Server::start(ModelSet::demo(SEED)?, config);
            let start = Instant::now();
            for _ in 0..requests {
                let ticket = served(server.submit(predict()), "overhead submit")?;
                served(ticket.wait(wait), "overhead wait")?;
            }
            let wall = start.elapsed().as_nanos() as u64;
            server.shutdown();
            Ok(wall)
        };
        let untraced_ns = run_wall(ServeConfig {
            workers: 1,
            queue_capacity: 16,
            default_deadline: None,
            trace: None,
        })?;
        let traced_ns = run_wall(traced(1, 16, 1))?;

        let mut table = Table::new(
            "overhead: 64 sequential predicts, tracing off vs fully sampled (wall-clock, noisy)",
            &["config", "wall_ms", "per_req_us"],
        );
        for (name, ns) in [("trace: None", untraced_ns), ("sample_every: 1", traced_ns)] {
            table.row(vec![
                name.to_string(),
                format!("{:.2}", ns as f64 / 1e6),
                format!("{:.1}", ns as f64 / 1e3 / requests as f64),
            ]);
        }
        out.push_str(&table.render());
        let _ = {
            use std::fmt::Write as _;
            writeln!(
                out,
                "traced/untraced wall ratio: {:.3} (untraced is the default path: one Option check per submit)\n",
                traced_ns as f64 / untraced_ns.max(1) as f64
            )
        };
        if obs.enabled() {
            obs.counter("trace.e18.overhead.untraced_wall_ns", untraced_ns);
            obs.counter("trace.e18.overhead.traced_wall_ns", traced_ns);
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_core::obs::Recorder;

    fn run_once() -> (String, Snapshot) {
        let rec = Arc::new(InMemoryRecorder::new());
        let guard = Guard::unlimited().with_recorder(rec.clone() as Arc<dyn Recorder>);
        let report = e18_trace(&guard).unwrap();
        (report, rec.snapshot())
    }

    #[test]
    fn e18_sections_cover_sheds_degrades_and_exemplars() {
        let (report, snap) = run_once();
        // Shed burst: 7 sheds + 1 drained straggler, all retained.
        assert_eq!(snap.counter("trace.e18.burst.sheds"), Some(7), "{report}");
        assert_eq!(snap.counter("trace.e18.burst.retained"), Some(8));
        assert_eq!(snap.counter("trace.e18.burst.dropped"), Some(0));
        // Mix: every 3rd of 12 trips the guard; every retained trace
        // resolves by id.
        assert_eq!(snap.counter("trace.e18.mix.truncated"), Some(4));
        assert_eq!(snap.counter("trace.e18.mix.complete"), Some(8));
        assert_eq!(snap.counter("trace.e18.mix.anomalous"), Some(4), "{report}");
        assert_eq!(
            snap.counter("trace.e18.mix.retained"),
            snap.counter("trace.e18.mix.resolvable")
        );
        // Exemplars: 8 observations, every populated bucket resolves.
        assert_eq!(snap.counter("trace.e18.exemplar.observations"), Some(8));
        assert_eq!(snap.counter("trace.e18.exemplar.full_coverage"), Some(1));
        // The re-exported sampler series accumulated across sections.
        assert!(snap.counter("trace.retained").unwrap_or(0) >= 8);
    }

    /// Same binary, same script ⇒ identical gated series. `_ns` names
    /// are wall-clock and excluded, exactly as the ledger's noisy
    /// class excludes them from the 0% gate.
    #[test]
    fn e18_gated_series_are_deterministic() {
        let gated = |snap: &Snapshot| -> Vec<(String, u64)> {
            snap.counters
                .iter()
                .filter(|(k, _)| !k.ends_with("_ns"))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        let (_, a) = run_once();
        let (_, b) = run_once();
        assert_eq!(gated(&a), gated(&b));
    }
}
