//! # dm-bench
//!
//! The experiment harness reproducing every table and figure of the
//! evaluation plan in `DESIGN.md` (experiments E1–E12 plus the two
//! ablations A1–A2). Each experiment is a pure function returning the
//! formatted table/series it regenerates; the `experiments` binary
//! prints them, and Criterion benches (in `benches/`) time the hot
//! kernels.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p dm-bench --bin experiments -- all
//! ```
//!
//! or a single experiment by id (`e1` … `e18`, `a1`, `a2`).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod assoc_exp;
pub mod classify_exp;
pub mod cluster_exp;
pub mod seq_exp;
pub mod serve_exp;
pub mod stream_exp;
pub mod table;
pub mod trace_exp;
pub mod watch_exp;

/// All experiment ids, in order.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "a1", "a2",
];

/// Runs one experiment by id, returning its report (or the data error
/// that stopped it). `None` for unknown ids.
///
/// Equivalent to [`run_governed`] with an unlimited, unrecorded guard.
pub fn run(id: &str) -> Option<Result<String, dm_core::dataset::DataError>> {
    run_governed(id, &dm_core::guard::Guard::unlimited())
}

/// Runs one experiment by id under a resource [`Guard`](dm_core::guard::Guard).
///
/// The guard serves two roles: its budgets/deadline bound the work each
/// experiment admits (reports reflect whatever completed before a
/// trip), and a recorder attached via
/// [`Guard::with_recorder`](dm_core::guard::Guard::with_recorder)
/// captures the per-algorithm metrics every governed kernel emits —
/// this is how `experiments --metrics` collects its snapshots.
pub fn run_governed(
    id: &str,
    guard: &dm_core::guard::Guard,
) -> Option<Result<String, dm_core::dataset::DataError>> {
    Some(match id {
        "e1" => assoc_exp::e1_miner_times(guard),
        "e2" => assoc_exp::e2_per_pass(guard),
        "e3" => assoc_exp::e3_scaleup_transactions(guard),
        "e4" => assoc_exp::e4_scaleup_width(guard),
        "e5" => assoc_exp::e5_rule_counts(guard),
        "e6" => cluster_exp::e6_elbow_and_init(guard),
        "e7" => cluster_exp::e7_quality_comparison(guard),
        "e8" => cluster_exp::e8_scaling(guard),
        "e9" => classify_exp::e9_accuracy_table(guard),
        "e10" => classify_exp::e10_learning_curve(guard),
        "e11" => classify_exp::e11_train_time_scaleup(guard),
        "e12" => classify_exp::e12_noise_sensitivity(guard),
        "e13" => seq_exp::e13_sequential_patterns(guard),
        "e14" => assoc_exp::e14_fp_vs_apriori_low_support(guard),
        "e15" => serve_exp::e15_serving(guard),
        "e16" => stream_exp::e16_streaming(guard),
        "e17" => watch_exp::e17_watch(guard),
        "e18" => trace_exp::e18_trace(guard),
        "a1" => assoc_exp::a1_hashtree_ablation(guard),
        "a2" => cluster_exp::a2_birch_ablation(guard),
        _ => return None,
    })
}
