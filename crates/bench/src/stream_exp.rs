//! Streaming experiment E16: amortized incremental maintenance vs
//! re-mining from scratch.
//!
//! The claim under test is the one that justifies `dm-stream` existing
//! at all: absorbing one record into live engine state costs a small
//! fraction of rebuilding that state from the window/prefix, so the
//! amortized per-update work ratio is at least an order of magnitude.
//!
//! Three sections, one per engine. Work is counted in each engine's own
//! deterministic structural units (the value [`StreamEngine::insert`]
//! returns): galloping-intersection steps plus trie-node visits for
//! sliding-window frequent mining, flushed assignment rows for
//! mini-batch k-means, absorbed records plus node splits for the BIRCH
//! CF-tree. Both strategies are measured in the same currency, so the
//! ratio is exact and bit-reproducible — the `stream.e16.*` counters
//! land in the run ledger 0%-gated, while wall-clock lands in `_ns`
//! counters the ledger bands as noisy.

use crate::table::{fmt_duration, Table};
use dm_core::cluster::CfTree;
use dm_core::dataset::DataError;
use dm_core::guard::Guard;
use dm_core::stream::{StreamEngine, StreamFrequent, StreamKMeans};
use dm_core::synth::{GaussianMixture, PointStream, QuestConfig, QuestGenerator, TxnStream};
use std::time::{Duration, Instant};

/// Seed for every stream in this experiment.
const SEED: u64 = 16;

/// Sliding window size for the frequent-itemset section.
const WINDOW: usize = 120;
/// Updates measured after the window is warm.
const UPDATES: usize = 200;
/// Points streamed through the clustering sections.
const POINTS: usize = 400;

fn speedup_row(
    table: &mut Table,
    strategy: &str,
    work: u64,
    updates: usize,
    elapsed: Duration,
    baseline_work: u64,
) {
    table.row(vec![
        strategy.to_string(),
        work.to_string(),
        format!("{:.1}", work as f64 / updates.max(1) as f64),
        fmt_duration(elapsed),
        if baseline_work == 0 {
            "-".to_string()
        } else {
            format!("{:.1}x", baseline_work as f64 / work.max(1) as f64)
        },
    ]);
}

/// Speedup as a fixed-point `x10` integer so it can ride the ledger as
/// a 0%-gated deterministic counter (both operands are exact).
fn speedup_x10(remine_work: u64, incremental_work: u64) -> u64 {
    (remine_work * 10) / incremental_work.max(1)
}

/// E16 — amortized cost of incremental maintenance vs per-update
/// re-mining, for all three streaming engines. Deterministic work
/// counters land as `stream.e16.*` (0%-gated); wall-clock as
/// `stream.e16.*_ns` (noisy-banded).
pub fn e16_streaming(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E16: incremental maintenance vs re-mining from scratch\n");
    out.push_str(
        "(dm-stream engines: per-update structural work, amortized over a warm stream)\n\n",
    );
    let obs = guard.obs();

    // -- 1: sliding-window frequent itemsets --------------------------
    if !guard.should_stop() {
        let quest = QuestGenerator::new(
            QuestConfig {
                n_transactions: 1,
                avg_txn_len: 8.0,
                avg_pattern_len: 3.0,
                n_patterns: 25,
                n_items: 60,
                correlation: 0.25,
                corruption_mean: 0.4,
                corruption_sd: 0.1,
            },
            SEED,
        )?;
        let txns: Vec<Vec<u32>> = TxnStream::new(quest, SEED).take(WINDOW + UPDATES).collect();

        // Incremental: one live engine absorbs each update in place.
        let mut live = StreamFrequent::new(60, 4, Some(WINDOW))?;
        for t in &txns[..WINDOW] {
            live.insert(t);
        }
        let started = Instant::now();
        let mut inc_work = 0u64;
        for t in &txns[WINDOW..] {
            inc_work += live.insert(t);
        }
        let inc_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Re-mining: every update rebuilds the window state from
        // scratch (what a batch miner bolted onto a stream would do).
        let started = Instant::now();
        let mut remine_work = 0u64;
        for i in WINDOW..txns.len() {
            let mut fresh = StreamFrequent::new(60, 4, Some(WINDOW))?;
            for t in &txns[i + 1 - WINDOW..=i] {
                remine_work += fresh.insert(t);
            }
        }
        let remine_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let itemsets = live.query().len() as u64;
        let mut table = Table::new(
            format!(
                "frequent itemsets: window {WINDOW}, minsup 4, {UPDATES} updates \
                 ({itemsets} itemsets live at the end)"
            ),
            &["strategy", "work units", "per update", "elapsed", "speedup"],
        );
        speedup_row(
            &mut table,
            "re-mine window",
            remine_work,
            UPDATES,
            Duration::from_nanos(remine_ns),
            0,
        );
        speedup_row(
            &mut table,
            "incremental",
            inc_work,
            UPDATES,
            Duration::from_nanos(inc_ns),
            remine_work,
        );
        out.push_str(&table.render());
        out.push('\n');
        if obs.enabled() {
            obs.counter("stream.e16.frequent.incremental_work", inc_work);
            obs.counter("stream.e16.frequent.remine_work", remine_work);
            obs.counter(
                "stream.e16.frequent.speedup_x10",
                speedup_x10(remine_work, inc_work),
            );
            obs.counter("stream.e16.frequent.itemsets", itemsets);
            obs.counter("stream.e16.frequent.incremental_ns", inc_ns);
            obs.counter("stream.e16.frequent.remine_ns", remine_ns);
            live.observe(&obs);
        }
    }

    // -- 2: mini-batch k-means ----------------------------------------
    if !guard.should_stop() {
        let mixture = GaussianMixture::well_separated(4, 3, 200, 8.0)?;
        let points: Vec<Vec<f64>> = PointStream::new(mixture, SEED)
            .take(POINTS)
            .map(|(p, _)| p)
            .collect();

        let mut live = StreamKMeans::new(4, 32)?;
        let started = Instant::now();
        let mut inc_work = 0u64;
        for p in &points {
            inc_work += live.insert(p);
        }
        let inc_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Re-clustering: every update refeeds the whole prefix through
        // a fresh engine.
        let started = Instant::now();
        let mut remine_work = 0u64;
        for i in 0..points.len() {
            let mut fresh = StreamKMeans::new(4, 32)?;
            for p in &points[..=i] {
                remine_work += fresh.insert(p);
            }
        }
        let remine_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let mut table = Table::new(
            format!(
                "mini-batch k-means: k 4, batch 32, {POINTS} points \
                 ({} flushes live at the end)",
                live.flushes()
            ),
            &["strategy", "work units", "per update", "elapsed", "speedup"],
        );
        speedup_row(
            &mut table,
            "re-cluster prefix",
            remine_work,
            POINTS,
            Duration::from_nanos(remine_ns),
            0,
        );
        speedup_row(
            &mut table,
            "incremental",
            inc_work,
            POINTS,
            Duration::from_nanos(inc_ns),
            remine_work,
        );
        out.push_str(&table.render());
        out.push('\n');
        if obs.enabled() {
            obs.counter("stream.e16.kmeans.incremental_work", inc_work);
            obs.counter("stream.e16.kmeans.remine_work", remine_work);
            obs.counter(
                "stream.e16.kmeans.speedup_x10",
                speedup_x10(remine_work, inc_work),
            );
            obs.counter("stream.e16.kmeans.incremental_ns", inc_ns);
            obs.counter("stream.e16.kmeans.remine_ns", remine_ns);
            live.observe(&obs);
        }
    }

    // -- 3: BIRCH CF-tree ---------------------------------------------
    if !guard.should_stop() {
        let mixture = GaussianMixture::well_separated(4, 3, 200, 8.0)?;
        let points: Vec<Vec<f64>> = PointStream::new(mixture, SEED.wrapping_add(1))
            .take(POINTS)
            .map(|(p, _)| p)
            .collect();

        // Work currency: absorbed records plus node splits paid.
        let mut live = CfTree::new(1.0, 6)?;
        let started = Instant::now();
        let mut inc_work = 0u64;
        for p in &points {
            inc_work += 1 + live.insert(p);
        }
        let inc_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let started = Instant::now();
        let mut remine_work = 0u64;
        for i in 0..points.len() {
            let mut fresh = CfTree::new(1.0, 6)?;
            for p in &points[..=i] {
                remine_work += 1 + fresh.insert(p);
            }
        }
        let remine_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let stats = live.stats();
        let mut table = Table::new(
            format!(
                "BIRCH CF-tree: threshold 1.0, branching 6, {POINTS} points \
                 ({} leaf entries, {} splits)",
                stats.leaf_entries,
                live.n_splits()
            ),
            &["strategy", "work units", "per update", "elapsed", "speedup"],
        );
        speedup_row(
            &mut table,
            "rebuild tree",
            remine_work,
            POINTS,
            Duration::from_nanos(remine_ns),
            0,
        );
        speedup_row(
            &mut table,
            "incremental",
            inc_work,
            POINTS,
            Duration::from_nanos(inc_ns),
            remine_work,
        );
        out.push_str(&table.render());
        if obs.enabled() {
            obs.counter("stream.e16.birch.incremental_work", inc_work);
            obs.counter("stream.e16.birch.remine_work", remine_work);
            obs.counter(
                "stream.e16.birch.speedup_x10",
                speedup_x10(remine_work, inc_work),
            );
            obs.counter("stream.e16.birch.splits", live.n_splits());
            obs.counter("stream.e16.birch.incremental_ns", inc_ns);
            obs.counter("stream.e16.birch.remine_ns", remine_ns);
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_core::obs::{InMemoryRecorder, Recorder};
    use std::sync::Arc;

    #[test]
    fn e16_amortized_speedup_is_at_least_10x() {
        let rec = Arc::new(InMemoryRecorder::new());
        let guard = Guard::unlimited().with_recorder(rec.clone() as Arc<dyn Recorder>);
        e16_streaming(&guard).unwrap();
        let snap = rec.snapshot();
        for engine in ["frequent", "kmeans", "birch"] {
            let x10 = snap
                .counter(&format!("stream.e16.{engine}.speedup_x10"))
                .unwrap();
            assert!(
                x10 >= 100,
                "{engine}: amortized speedup {}.{}x below the 10x floor",
                x10 / 10,
                x10 % 10
            );
        }
    }

    #[test]
    fn e16_counters_are_deterministic() {
        let run = || {
            let rec = Arc::new(InMemoryRecorder::new());
            let guard = Guard::unlimited().with_recorder(rec.clone() as Arc<dyn Recorder>);
            e16_streaming(&guard).unwrap();
            let snap = rec.snapshot();
            let mut counters: Vec<(String, u64)> = snap
                .counters
                .iter()
                .filter(|(k, _)| !k.ends_with("_ns"))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            counters.sort();
            counters
        };
        assert_eq!(run(), run());
    }
}
