//! `dm` — the workspace's operational command surface. Three subcommand
//! families: `dm ledger`, which operates on run-ledger records produced
//! by `experiments --ledger FILE` (see `dm_obs::ledger` and `DESIGN.md`
//! "Run ledger"), `dm watch`, which replays metric snapshots through an
//! SLO/drift rule file (see `dm_obs::watch` and the README "Watching &
//! alerting"), and `dm trace`, which lists, pretty-prints and exports
//! request traces dumped from a tail-sampled `TraceStore` (see
//! `dm_obs::trace` and the README "Request tracing").
//!
//! ```text
//! dm ledger show RECORD                # one-line-per-experiment summary
//! dm ledger diff A B [--json]          # per-metric delta report
//! dm ledger check --baseline B CURRENT # CI regression gate
//!     [--band N]                       #   noisy-metric ratio band (default 16)
//!     [--no-noisy]                     #   gate exact metrics only
//!     [--subset]                       #   tolerate experiments missing from CURRENT
//!     [--json-report FILE]             #   machine-readable diff alongside the verdict
//!     [--update-baseline]              #   accept CURRENT as the new baseline
//! dm watch RULES SNAPSHOT...           # evaluate rules over snapshots, in order
//!     [--window MS]                    #   sliding-window length (default 60000)
//!     [--tick MS]                      #   simulated ms between snapshots (default 1000)
//!     [--prom FILE]                    #   write the watcher's own metrics as
//!                                      #   Prometheus text exposition
//! dm trace list FILE                   # retained traces, one line each
//!     [--outcome LABEL]                #   keep only this outcome (shed reason or
//!                                      #   finish label, e.g. queue_full, panicked)
//!     [--endpoint LABEL]               #   keep only this endpoint
//!     [--anomalous]                    #   keep only always-retained traces
//! dm trace show FILE ID                # one request's full lifecycle
//! dm trace export FILE ID [--out F]    # the lifecycle as a chrome trace
//! ```
//!
//! Exit codes: 0 = pass / no error, 1 = gate violations (`ledger
//! check`), at least one alert still firing after the last snapshot
//! (`watch`), or an id that is not in the trace file (`trace
//! show`/`export`), 2 = usage or I/O error (including a malformed
//! trace file). `check` prints the human report to stdout; with
//! `--update-baseline` it *rewrites the baseline file* with the
//! current record instead of failing, which is the documented way to
//! land an intentional counter change (commit the refreshed baseline
//! together with the code that moved it). `watch` replays the
//! snapshot files against a `ManualClock` advanced `--tick` per file,
//! so the same inputs always produce the same transition log.

use dm_core::obs::ledger::{check, diff, write_atomic, CheckPolicy, RunRecord};
use dm_core::obs::trace::{chrome_trace_request, render_list, render_show, traces_from_json};
use dm_core::obs::watch::{AlertState, ManualClock, RuleSet, WatchReport, Watcher};
use dm_core::obs::{export, InMemoryRecorder, Obs, Snapshot, TraceId};
use std::fmt::Write as _;
use std::sync::Arc;

/// Writes to stdout, swallowing broken-pipe errors (`dm ledger diff |
/// head` must not panic mid-report).
fn emit(s: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

const USAGE: &str = "usage: dm <ledger | watch | trace> ...\n\
  dm ledger show RECORD\n\
  dm ledger diff A B [--json]\n\
  dm ledger check --baseline BASE CURRENT [--band N] [--no-noisy] [--subset] \
[--json-report FILE] [--update-baseline]\n\
  dm watch RULES SNAPSHOT... [--window MS] [--tick MS] [--prom FILE]\n\
  dm trace list FILE [--outcome LABEL] [--endpoint LABEL] [--anomalous]\n\
  dm trace show FILE ID\n\
  dm trace export FILE ID [--out FILE]";

fn main() {
    std::process::exit(real_main());
}

/// Reads and parses one ledger record, mapping failures to a readable
/// message and exit code 2.
fn load(path: &str) -> Result<RunRecord, i32> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read ledger record `{path}`: {e}");
        2
    })?;
    RunRecord::from_json(&text).map_err(|e| {
        eprintln!("cannot parse ledger record `{path}`: {e}");
        2
    })
}

fn cmd_show(path: &str) -> i32 {
    let record = match load(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let mut out = String::new();
    let _ = writeln!(out, "record:   {path}");
    let _ = writeln!(out, "git_rev:  {}", record.git_rev);
    let _ = writeln!(out, "label:    {}", record.label);
    let _ = writeln!(out, "created:  {} (unix ms)", record.created_unix_ms);
    for (k, v) in &record.config {
        let _ = writeln!(out, "config:   {k} = {v}");
    }
    for (id, run) in &record.experiments {
        let m = &run.metrics;
        let status = run.truncated.as_deref().unwrap_or("complete");
        let _ = writeln!(
            out,
            "{id:>4}  {:>10.1} ms  {:>4} counters  {:>3} gauges  {:>3} histograms  {:>4} tree paths  [{status}]",
            run.wall_ms,
            m.counters.len(),
            m.gauges.len(),
            m.histograms.len(),
            m.tree.len(),
        );
    }
    emit(&out);
    0
}

fn cmd_diff(a_path: &str, b_path: &str, json: bool) -> i32 {
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let d = diff(&a, &b);
    if json {
        emit(&d.render_json());
    } else {
        emit(&d.render_table());
    }
    0
}

struct CheckArgs {
    baseline: String,
    current: String,
    policy: CheckPolicy,
    json_report: Option<String>,
    update_baseline: bool,
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut baseline: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut policy = CheckPolicy::default();
    let mut json_report: Option<String> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .ok_or("--baseline needs a record path")?
                        .to_owned(),
                );
            }
            "--band" => {
                let v = it.next().ok_or("--band needs a ratio")?;
                policy.noisy_band = v
                    .parse::<f64>()
                    .ok()
                    .filter(|b| *b >= 1.0)
                    .ok_or_else(|| format!("--band expects a ratio >= 1, got `{v}`"))?;
            }
            "--no-noisy" => policy.gate_noisy = false,
            "--subset" => policy.require_all = false,
            "--json-report" => {
                json_report = Some(
                    it.next()
                        .ok_or("--json-report needs a file path")?
                        .to_owned(),
                );
            }
            "--update-baseline" => update_baseline = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` for dm ledger check"));
            }
            other => positional.push(other),
        }
    }
    let baseline = baseline.ok_or("dm ledger check needs --baseline BASE")?;
    let [current] = positional.as_slice() else {
        return Err("dm ledger check needs exactly one CURRENT record".into());
    };
    Ok(CheckArgs {
        baseline,
        current: (*current).to_owned(),
        policy,
        json_report,
        update_baseline,
    })
}

fn cmd_check(args: &[String]) -> i32 {
    let parsed = match parse_check_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return 2;
        }
    };
    let (base, current) = match (load(&parsed.baseline), load(&parsed.current)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let d = diff(&base, &current);
    if let Some(path) = &parsed.json_report {
        if let Err(e) = std::fs::write(path, d.render_json()) {
            eprintln!("cannot write diff report `{path}`: {e}");
            return 2;
        }
        eprintln!("[diff report written to {path}]");
    }
    if parsed.update_baseline {
        // Accepting the current record as the new truth: rewrite the
        // baseline (deterministic re-serialization, not a byte copy,
        // so the file is canonical regardless of its producer) via
        // temp-file + rename so an interrupt can't corrupt it.
        if let Err(e) = write_atomic(std::path::Path::new(&parsed.baseline), &current.to_json()) {
            eprintln!("cannot update baseline `{}`: {e}", parsed.baseline);
            return 2;
        }
        emit(&format!(
            "baseline `{}` updated from `{}` ({} differing metric(s) accepted)\n",
            parsed.baseline,
            parsed.current,
            d.entries.len()
        ));
        return 0;
    }
    let report = check(&base, &current, &parsed.policy);
    emit(&report.render());
    if report.passed() {
        0
    } else {
        eprintln!(
            "ledger check failed against `{}`; if this drift is intentional, refresh the \
             baseline in the same commit: dm ledger check --baseline {} {} --update-baseline",
            parsed.baseline, parsed.baseline, parsed.current
        );
        1
    }
}

/// Parsed `dm watch` invocation.
struct WatchArgs {
    rules: String,
    snapshots: Vec<String>,
    window_ms: u64,
    tick_ms: u64,
    prom: Option<String>,
}

fn parse_watch_args(args: &[String]) -> Result<WatchArgs, String> {
    let mut window_ms = 60_000u64;
    let mut tick_ms = 1_000u64;
    let mut prom: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let ms_flag = |name: &str, v: Option<&String>| -> Result<u64, String> {
            v.ok_or_else(|| format!("{name} needs a millisecond value"))?
                .parse::<u64>()
                .ok()
                .filter(|ms| *ms >= 1)
                .ok_or_else(|| format!("{name} expects a whole number of milliseconds >= 1"))
        };
        match arg.as_str() {
            "--window" => window_ms = ms_flag("--window", it.next())?,
            "--tick" => tick_ms = ms_flag("--tick", it.next())?,
            "--prom" => {
                prom = Some(it.next().ok_or("--prom needs a file path")?.to_owned());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` for dm watch"));
            }
            other => positional.push(other.to_owned()),
        }
    }
    if positional.len() < 2 {
        return Err("dm watch needs a rule file and at least one snapshot".into());
    }
    let rules = positional.remove(0);
    Ok(WatchArgs {
        rules,
        snapshots: positional,
        window_ms,
        tick_ms,
        prom,
    })
}

/// Replays snapshot files through the rule set on a manual clock and
/// prints the firing/resolved table plus the transition log. Exit 1
/// when any rule is still firing after the last snapshot.
fn cmd_watch(args: &[String]) -> i32 {
    let parsed = match parse_watch_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return 2;
        }
    };
    let read = |path: &str| -> Result<String, i32> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read `{path}`: {e}");
            2
        })
    };
    let rules_text = match read(&parsed.rules) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let rules = match RuleSet::from_json(&rules_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse rule file `{}`: {e}", parsed.rules);
            return 2;
        }
    };
    let clock = Arc::new(ManualClock::new(0));
    let mut watcher = Watcher::new(rules, parsed.window_ms, clock.clone());
    let sink = InMemoryRecorder::new();
    let obs = Obs::new(&sink);
    let mut transitions = Vec::new();
    for path in &parsed.snapshots {
        let text = match read(path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let snap = match Snapshot::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse snapshot `{path}`: {e}");
                return 2;
            }
        };
        clock.advance(parsed.tick_ms);
        transitions.extend(watcher.tick(&snap, &obs));
    }
    let report = WatchReport {
        transitions,
        statuses: watcher.statuses(),
    };
    emit(&report.render());
    if let Some(path) = &parsed.prom {
        if let Err(e) = std::fs::write(path, export::prometheus(&sink.snapshot())) {
            eprintln!("cannot write prometheus file `{path}`: {e}");
            return 2;
        }
        eprintln!("[watch metrics written to {path}]");
    }
    let firing = report
        .statuses
        .iter()
        .filter(|s| s.state == AlertState::Firing)
        .count();
    if firing > 0 {
        eprintln!("{firing} alert(s) firing");
        1
    } else {
        0
    }
}

/// Reads and parses one trace dump (the `traces_to_json` format),
/// mapping failures to a readable message and exit code 2.
fn load_traces(path: &str) -> Result<Vec<dm_core::obs::trace::RequestTrace>, i32> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read trace file `{path}`: {e}");
        2
    })?;
    traces_from_json(&text).map_err(|e| {
        eprintln!("cannot parse trace file `{path}`: {e}");
        2
    })
}

/// Resolves an id argument against a parsed trace file. A well-formed
/// id that simply isn't retained is a data outcome (exit 1), not a
/// usage error.
fn find_trace(traces: &[dm_core::obs::trace::RequestTrace], id_arg: &str) -> Result<usize, i32> {
    let id = TraceId::from_hex(id_arg).ok_or_else(|| {
        eprintln!("`{id_arg}` is not a trace id (expected 16 hex digits)\n{USAGE}");
        2
    })?;
    traces.iter().position(|t| t.id == id).ok_or_else(|| {
        eprintln!("trace {id} is not in this file (dropped by the sampler, or a different run?)");
        1
    })
}

fn cmd_trace(args: &[String]) -> i32 {
    let usage = |msg: &str| -> i32 {
        eprintln!("{msg}\n{USAGE}");
        2
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            let mut outcome: Option<String> = None;
            let mut endpoint: Option<String> = None;
            let mut anomalous = false;
            let mut positional: Vec<&str> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--outcome" => match it.next() {
                        Some(v) => outcome = Some(v.to_owned()),
                        None => return usage("--outcome needs a label"),
                    },
                    "--endpoint" => match it.next() {
                        Some(v) => endpoint = Some(v.to_owned()),
                        None => return usage("--endpoint needs a label"),
                    },
                    "--anomalous" => anomalous = true,
                    other if other.starts_with('-') => {
                        return usage(&format!("unknown flag `{other}` for dm trace list"));
                    }
                    other => positional.push(other),
                }
            }
            let [path] = positional.as_slice() else {
                return usage("dm trace list needs exactly one trace file");
            };
            let traces = match load_traces(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let total = traces.len();
            let kept: Vec<_> = traces
                .into_iter()
                .filter(|t| outcome.as_deref().is_none_or(|o| t.outcome() == o))
                .filter(|t| endpoint.as_deref().is_none_or(|e| t.endpoint == e))
                .filter(|t| !anomalous || t.is_anomalous())
                .collect();
            emit(&render_list(&kept));
            if kept.len() != total {
                eprintln!("[{} of {total} trace(s) match the filters]", kept.len());
            }
            0
        }
        Some("show") | Some("export") => {
            let export = args[0] == "export";
            let mut out: Option<String> = None;
            let mut positional: Vec<&str> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--out" if export => match it.next() {
                        Some(v) => out = Some(v.to_owned()),
                        None => return usage("--out needs a file path"),
                    },
                    other if other.starts_with('-') => {
                        return usage(&format!("unknown flag `{other}` for dm trace {}", args[0]));
                    }
                    other => positional.push(other),
                }
            }
            let [path, id_arg] = positional.as_slice() else {
                return usage(&format!(
                    "dm trace {} needs a trace file and a trace id",
                    args[0]
                ));
            };
            let traces = match load_traces(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let idx = match find_trace(&traces, id_arg) {
                Ok(i) => i,
                Err(code) => return code,
            };
            if export {
                let rendered = chrome_trace_request(&traces[idx]);
                match &out {
                    Some(dest) => {
                        if let Err(e) = std::fs::write(dest, rendered) {
                            eprintln!("cannot write chrome trace `{dest}`: {e}");
                            return 2;
                        }
                        eprintln!("[chrome trace written to {dest}]");
                    }
                    None => emit(&rendered),
                }
            } else {
                emit(&render_show(&traces[idx]));
            }
            0
        }
        _ => usage("dm trace needs a verb: list, show or export"),
    }
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    }
    if args[0] == "watch" {
        return cmd_watch(&args[1..]);
    }
    if args[0] == "trace" {
        return cmd_trace(&args[1..]);
    }
    if args[0] != "ledger" {
        eprintln!("unknown subcommand `{}`\n{USAGE}", args[0]);
        return 2;
    }
    match args.get(1).map(String::as_str) {
        Some("show") => match args.get(2) {
            Some(path) if args.len() == 3 => cmd_show(path),
            _ => {
                eprintln!("dm ledger show needs exactly one record path\n{USAGE}");
                2
            }
        },
        Some("diff") => {
            let rest: Vec<&String> = args[2..].iter().collect();
            let json = rest.iter().any(|a| *a == "--json");
            let paths: Vec<&String> = rest.into_iter().filter(|a| *a != "--json").collect();
            match paths.as_slice() {
                [a, b] => cmd_diff(a, b, json),
                _ => {
                    eprintln!("dm ledger diff needs exactly two record paths\n{USAGE}");
                    2
                }
            }
        }
        Some("check") => cmd_check(&args[2..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}
