//! Regenerates the tables and figures of `DESIGN.md`'s experiment index.
//!
//! ```text
//! experiments all                    # run everything (E1..E18, A1, A2)
//! experiments e1 e9                  # run a subset
//! experiments --deadline-ms 5000 all # stop gracefully after ~5 s
//! experiments --metrics out.json e1  # also dump recorded metric snapshots
//! experiments --ledger run.json all  # write a run-ledger record (dm ledger ...)
//! experiments --trace out.trace.json e1   # chrome://tracing timeline
//! experiments --folded out.folded e1      # flame-graph folded stacks
//! experiments --prom out.prom e1          # Prometheus text exposition
//! experiments --progress e1          # narrate passes/memory to stderr
//! experiments --list                 # show available ids
//! ```
//!
//! Errors never panic: a data error prints a readable message and exits
//! with a nonzero code. `--deadline-ms` builds a wall-clock [`Budget`];
//! once it expires the remaining experiments are skipped (reported to
//! stderr) rather than cut off mid-table.
//!
//! `--metrics FILE` attaches a fresh in-memory recorder to each
//! experiment's guard and writes one JSON object to `FILE`, keyed by
//! experiment id, each value a metrics snapshot in the schema documented
//! in `DESIGN.md` ("Metrics snapshot schema"). Experiments that were
//! skipped by the deadline do not appear in the file; an experiment the
//! guard truncated mid-run (or that failed with a data error) *does*
//! appear, as its partial snapshot tagged `"truncated": "<reason>"` —
//! a cut-short run is evidence, not a non-event.
//!
//! `--ledger FILE` additionally writes the whole invocation as one run
//! ledger record (`dm_obs::ledger`, see `DESIGN.md` "Run ledger"): git
//! revision, configuration, and a per-experiment wall-clock +
//! truncation marker + collapsed metric document. That record is what
//! `dm ledger diff`/`dm ledger check` consume and what CI gates on.
//!
//! `--trace`, `--folded` and `--prom` share one recorder across the
//! whole invocation so every experiment lands on a common timeline; each
//! experiment runs under a top-level `experiment.<id>` span, so the
//! trace nests experiment → pass → shard. When `--metrics` is also
//! given, a [`TeeRecorder`] feeds both: the shared recorder keeps the
//! span tree, the per-experiment recorder keeps its flat snapshot.

use dm_core::obs::ledger::{snapshot_json_tagged, ExperimentRun, MetricDoc, RunRecord};
use dm_core::prelude::{
    chrome_trace, folded_stacks, prometheus, Budget, Guard, InMemoryRecorder, NoopRecorder,
    ProgressRecorder, Recorder, RunStatus, TeeRecorder,
};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: experiments [--list] [--deadline-ms N] [--metrics FILE] \
     [--ledger FILE] [--trace FILE] [--folded FILE] [--prom FILE] [--progress] \
     <all | e1..e18 a1 a2 ...>";

/// The current git revision, for ledger provenance. Best effort: a
/// missing `git` binary or a non-repo checkout degrades to "unknown".
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() {
    std::process::exit(real_main());
}

/// Builds the guard for one experiment: whatever is left of the global
/// deadline, so a recorded run still honours `--deadline-ms` end to end.
fn experiment_guard(deadline_ms: Option<u64>, t_start: Instant) -> Guard {
    match deadline_ms {
        Some(ms) => {
            let elapsed = u64::try_from(t_start.elapsed().as_millis()).unwrap_or(u64::MAX);
            Guard::new(Budget::unlimited().with_deadline_ms(ms.saturating_sub(elapsed)))
        }
        None => Guard::unlimited(),
    }
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return 2;
    }
    if args.iter().any(|a| a == "--list") {
        for id in dm_bench::ALL_EXPERIMENTS {
            println!("{id}");
        }
        return 0;
    }

    // Flag parsing; everything that is not a flag is an experiment id.
    let mut deadline_ms: Option<u64> = None;
    let mut metrics_path: Option<String> = None;
    let mut ledger_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut prom_path: Option<String> = None;
    let mut progress = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let path_flag =
            |name: &str, slot: &mut Option<String>, it: &mut dyn Iterator<Item = String>| -> bool {
                match it.next() {
                    Some(value) => {
                        *slot = Some(value);
                        true
                    }
                    None => {
                        eprintln!("{name} needs a file path\n{USAGE}");
                        false
                    }
                }
            };
        if arg == "--deadline-ms" {
            let Some(value) = it.next() else {
                eprintln!("--deadline-ms needs a value\n{USAGE}");
                return 2;
            };
            match value.parse::<u64>() {
                Ok(ms) => deadline_ms = Some(ms),
                Err(_) => {
                    eprintln!(
                        "--deadline-ms expects a whole number of milliseconds, got `{value}`"
                    );
                    return 2;
                }
            }
        } else if arg == "--metrics" {
            if !path_flag("--metrics", &mut metrics_path, &mut it) {
                return 2;
            }
        } else if arg == "--ledger" {
            if !path_flag("--ledger", &mut ledger_path, &mut it) {
                return 2;
            }
        } else if arg == "--trace" {
            if !path_flag("--trace", &mut trace_path, &mut it) {
                return 2;
            }
        } else if arg == "--folded" {
            if !path_flag("--folded", &mut folded_path, &mut it) {
                return 2;
            }
        } else if arg == "--prom" {
            if !path_flag("--prom", &mut prom_path, &mut it) {
                return 2;
            }
        } else if arg == "--progress" {
            progress = true;
        } else {
            ids.push(arg);
        }
    }
    let ids: Vec<&str> = if ids.iter().any(|a| a == "all") {
        dm_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    if ids.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    }

    // The tracing exports share one recorder so all experiments land on
    // a single timeline with consistent thread lanes.
    let want_export = trace_path.is_some() || folded_path.is_some() || prom_path.is_some();
    let export_rec = want_export.then(|| Arc::new(InMemoryRecorder::new()));

    let t_start = Instant::now();
    let created_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let outer = experiment_guard(deadline_ms, t_start);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // (id, snapshot json) per attempted experiment, in run order.
    let mut snapshots: Vec<(String, String)> = Vec::new();
    let mut ledger_record = ledger_path.as_ref().map(|_| RunRecord {
        created_unix_ms,
        git_rev: git_rev(),
        label: ids.join(" "),
        ..Default::default()
    });
    if let Some(record) = &mut ledger_record {
        record.config.insert(
            "deadline_ms".into(),
            deadline_ms.map_or_else(|| "none".into(), |ms| ms.to_string()),
        );
        // Experiments run the miners' defaults: sequential, fixed seeds
        // (the property the exact-counter gate relies on).
        record
            .config
            .insert("parallelism".into(), "sequential".into());
    }
    // First failure is remembered but does not abort the run: later
    // experiments still produce evidence, and the metrics/ledger files
    // are written regardless.
    let mut exit_code = 0;
    for (pos, id) in ids.iter().enumerate() {
        if outer.should_stop() {
            let skipped = ids[pos..].join(", ");
            eprintln!("[deadline exceeded; skipping remaining experiments: {skipped}]");
            break;
        }
        let t0 = Instant::now();
        let metrics_rec = (metrics_path.is_some() || ledger_path.is_some())
            .then(|| Arc::new(InMemoryRecorder::new()));
        // Compose the recorder stack for this experiment: the export
        // recorder is primary (it owns the span tree); a per-experiment
        // metrics recorder rides along as the tee's secondary; progress
        // narration wraps the outside.
        let base: Option<Arc<dyn Recorder>> = match (&export_rec, &metrics_rec) {
            (Some(e), Some(m)) => Some(Arc::new(TeeRecorder::new(e.clone(), m.clone()))),
            (Some(e), None) => Some(e.clone()),
            (None, Some(m)) => Some(m.clone()),
            (None, None) => None,
        };
        let recorder: Option<Arc<dyn Recorder>> = if progress {
            let inner = base.unwrap_or_else(|| Arc::new(NoopRecorder));
            Some(Arc::new(ProgressRecorder::stderr(inner)))
        } else {
            base
        };
        let (result, status) = match recorder {
            Some(rec) => {
                let inner = experiment_guard(deadline_ms, t_start).with_recorder(rec);
                let exp_span = inner.obs().span_fmt(format_args!("experiment.{id}"));
                let result = dm_bench::run_governed(id, &inner);
                drop(exp_span);
                let status = inner.status();
                (result, status)
            }
            None => (dm_bench::run_governed(id, &outer), outer.status()),
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        // The truncation marker for this experiment's snapshot/ledger
        // entry: guard trips and data errors both leave partial
        // metrics, and partial metrics must say so.
        let truncated: Option<String> = match (&result, &status) {
            (Some(Err(e)), _) => Some(format!("error: {e}")),
            (_, RunStatus::Truncated(reason)) => Some(reason.to_string()),
            _ => None,
        };
        match &result {
            Some(Ok(report)) => {
                if writeln!(out, "{report}").is_err()
                    || writeln!(out, "[{id} completed in {:?}]\n", t0.elapsed()).is_err()
                {
                    // Broken pipe (e.g. `| head`): stop quietly.
                    return 0;
                }
            }
            Some(Err(e)) => {
                eprintln!("experiment {id} failed: {e}");
                exit_code = 1;
            }
            None => {
                eprintln!("unknown experiment id `{id}` (try --list)");
                return 2;
            }
        }
        if let Some(rec) = &metrics_rec {
            let snap = rec.snapshot();
            if metrics_path.is_some() {
                snapshots.push((
                    id.to_string(),
                    snapshot_json_tagged(&snap, truncated.as_deref()),
                ));
            }
            if let Some(record) = &mut ledger_record {
                record.experiments.insert(
                    id.to_string(),
                    ExperimentRun {
                        wall_ms,
                        truncated,
                        metrics: MetricDoc::from_snapshot(&snap),
                    },
                );
            }
        }
    }
    if let Some(path) = &metrics_path {
        let mut json = String::from("{");
        for (i, (id, snap)) in snapshots.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            // Known experiment ids are plain ASCII identifiers; no
            // escaping needed inside the key.
            json.push_str(&format!("\"{id}\": {snap}"));
        }
        json.push_str("}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write metrics file {path}: {e}");
            return 1;
        }
        eprintln!(
            "[metrics for {} experiment(s) written to {path}]",
            snapshots.len()
        );
    }
    if let (Some(path), Some(record)) = (&ledger_path, &ledger_record) {
        // Atomic rename, not a plain write: a run killed mid-write must
        // not leave a truncated record that later gates CI.
        if let Err(e) =
            dm_core::obs::ledger::write_atomic(std::path::Path::new(path), &record.to_json())
        {
            eprintln!("failed to write ledger record {path}: {e}");
            return 1;
        }
        eprintln!(
            "[ledger record for {} experiment(s) written to {path}]",
            record.experiments.len()
        );
    }
    if let Some(rec) = &export_rec {
        let snap = rec.snapshot();
        type Render = fn(&dm_core::prelude::Snapshot) -> String;
        let exports: [(&Option<String>, Render, &str); 3] = [
            (&trace_path, chrome_trace, "trace"),
            (&folded_path, folded_stacks, "folded stacks"),
            (&prom_path, prometheus, "prometheus"),
        ];
        for (path, render, kind) in exports {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, render(&snap)) {
                    eprintln!("failed to write {kind} file {path}: {e}");
                    return 1;
                }
                eprintln!("[{kind} written to {path}]");
            }
        }
    }
    exit_code
}
