//! Regenerates the tables and figures of `DESIGN.md`'s experiment index.
//!
//! ```text
//! experiments all                    # run everything (E1..E13, A1, A2)
//! experiments e1 e9                  # run a subset
//! experiments --deadline-ms 5000 all # stop gracefully after ~5 s
//! experiments --list                 # show available ids
//! ```
//!
//! Errors never panic: a data error prints a readable message and exits
//! with a nonzero code. `--deadline-ms` builds a wall-clock [`Budget`];
//! once it expires the remaining experiments are skipped (reported to
//! stderr) rather than cut off mid-table.

use dm_core::prelude::{Budget, Guard};
use std::io::Write;
use std::time::Instant;

const USAGE: &str = "usage: experiments [--list] [--deadline-ms N] <all | e1..e13 a1 a2 ...>";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return 2;
    }
    if args.iter().any(|a| a == "--list") {
        for id in dm_bench::ALL_EXPERIMENTS {
            println!("{id}");
        }
        return 0;
    }

    // Flag parsing: --deadline-ms N (everything else is an experiment id).
    let mut deadline_ms: Option<u64> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--deadline-ms" {
            let Some(value) = it.next() else {
                eprintln!("--deadline-ms needs a value\n{USAGE}");
                return 2;
            };
            match value.parse::<u64>() {
                Ok(ms) => deadline_ms = Some(ms),
                Err(_) => {
                    eprintln!(
                        "--deadline-ms expects a whole number of milliseconds, got `{value}`"
                    );
                    return 2;
                }
            }
        } else {
            ids.push(arg);
        }
    }
    let ids: Vec<&str> = if ids.iter().any(|a| a == "all") {
        dm_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    if ids.is_empty() {
        eprintln!("{USAGE}");
        return 2;
    }

    let guard = match deadline_ms {
        Some(ms) => Guard::new(Budget::unlimited().with_deadline_ms(ms)),
        None => Guard::unlimited(),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (pos, id) in ids.iter().enumerate() {
        if guard.should_stop() {
            let skipped = ids[pos..].join(", ");
            eprintln!("[deadline exceeded; skipping remaining experiments: {skipped}]");
            return 0;
        }
        let t0 = Instant::now();
        match dm_bench::run(id) {
            Some(Ok(report)) => {
                if writeln!(out, "{report}").is_err()
                    || writeln!(out, "[{id} completed in {:?}]\n", t0.elapsed()).is_err()
                {
                    // Broken pipe (e.g. `| head`): stop quietly.
                    return 0;
                }
            }
            Some(Err(e)) => {
                eprintln!("experiment {id} failed: {e}");
                return 1;
            }
            None => {
                eprintln!("unknown experiment id `{id}` (try --list)");
                return 2;
            }
        }
    }
    0
}
