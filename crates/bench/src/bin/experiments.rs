//! Regenerates the tables and figures of `DESIGN.md`'s experiment index.
//!
//! ```text
//! experiments all          # run everything (E1..E12, A1, A2)
//! experiments e1 e9        # run a subset
//! experiments --list       # show available ids
//! ```

use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <all | e1..e12 a1 a2 ...>");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in dm_bench::ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        dm_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in ids {
        let t0 = Instant::now();
        match dm_bench::run(id) {
            Some(report) => {
                writeln!(out, "{report}").expect("stdout writable");
                writeln!(out, "[{id} completed in {:?}]\n", t0.elapsed()).expect("stdout writable");
            }
            None => {
                eprintln!("unknown experiment id `{id}` (try --list)");
                std::process::exit(2);
            }
        }
    }
}
