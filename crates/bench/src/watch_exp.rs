//! Watch experiment E17: live SLO evaluation, alert transitions and
//! concept-drift reactions, end to end through `dm_obs::watch` and the
//! `dm-serve` watch hook.
//!
//! Three sections, each a scripted scenario on a [`ManualClock`] (no
//! wall-clock reaches any gated counter, so the alert-transition
//! sequences are bit-reproducible and the ledger gates them at 0%
//! tolerance):
//!
//! 1. **Overload** — a zero-worker, one-slot server sheds a burst; the
//!    shed-rate SLO walks Ok → Pending → Firing (engaging the degrade
//!    work cap) and, once the window slides past the burst, Resolved →
//!    Ok (releasing it).
//! 2. **Staleness** — an artifact that is never refreshed ages past its
//!    SLO; a manual `refresh_artifact` clears the alert.
//! 3. **Drift** — a streamed mixture shifts distribution mid-stream;
//!    Page–Hinkley and CUSUM detectors on the per-flush
//!    `stream.kmeans.inertia` gauge fire, and the watch policy
//!    republishes the streaming model through the serve refresh hook.
//!
//! Each section runs against a private recorder (serve latency
//! histograms are wall-clock noise); the deterministic `watch.*` /
//! `serve.watch.*` counters and gauges are re-exported into the
//! experiment guard's recorder, alongside `watch.e17.*` summaries.

use crate::table::Table;
use dm_core::dataset::DataError;
use dm_core::guard::Guard;
use dm_core::obs::watch::{
    AlertState, Condition, DetectorSpec, ManualClock, RuleSet, SloRule, Transition, Watcher,
};
use dm_core::obs::{InMemoryRecorder, Obs, Recorder, Snapshot};
use dm_core::stream::{StreamEngine, StreamKMeans};
use dm_core::synth::{GaussianMixture, PointStream};
use dm_serve::{ModelKind, ModelSet, Request, ServeConfig, Server, WatchPolicy};
use std::sync::{Arc, Mutex, PoisonError};

/// Seed for the served bundle and the drifting point stream.
const SEED: u64 = 17;

/// Evaluation cadence: one watch tick per 100 simulated milliseconds.
const TICK_MS: u64 = 100;

/// A cheap request for the overload section's burst.
fn burst_request() -> Request {
    Request::Predict {
        model: ModelKind::Knn,
        rows: vec![vec![0.0, 0.0]],
    }
}

/// Re-emits the deterministic watch-side series from a section's
/// private recorder into the experiment guard's recorder, where the
/// ledger gates them at 0%. Counters accumulate across sections (the
/// per-rule names are distinct; the shared `watch.alert.transitions`
/// style totals sum deterministically).
fn export_watch_series(obs: &Obs<'_>, snap: &Snapshot) {
    for (name, v) in &snap.counters {
        if name.starts_with("watch.") || name.starts_with("serve.watch.") {
            obs.counter(name, *v);
        }
    }
    for (name, v) in &snap.gauges {
        if name.starts_with("watch.") {
            obs.gauge(name, *v);
        }
    }
}

/// Renders a transition log as table rows.
fn transition_rows(table: &mut Table, transitions: &[Transition]) {
    for t in transitions {
        table.row(vec![
            format!("{}", t.at_ms),
            t.rule.clone(),
            t.kind.label().to_string(),
            format!("{} -> {}", t.from.label(), t.to.label()),
        ]);
    }
}

/// Counts of fired / resolved transitions in a log.
fn fired_resolved(transitions: &[Transition]) -> (u64, u64) {
    let fired = transitions
        .iter()
        .filter(|t| t.to == AlertState::Firing)
        .count() as u64;
    let resolved = transitions
        .iter()
        .filter(|t| t.to == AlertState::Resolved)
        .count() as u64;
    (fired, resolved)
}

/// E17 — SLO alerting and drift reactions over live serving/streaming
/// metrics. Alert-transition counts land as `watch.e17.*` plus the
/// re-exported `watch.alert.*` / `watch.drift.*` series (0%-gated).
pub fn e17_watch(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E17: SLO watch, alert state machine and drift reactions\n");
    out.push_str(
        "(dm_obs::watch over dm-serve: manual clock, scripted scenarios, deterministic transitions)\n\n",
    );
    let obs = guard.obs();

    // -- 1: overload -> degrade cap engages, then releases ------------
    if !guard.should_stop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let server = Server::start_recorded(
            ModelSet::demo(SEED)?,
            ServeConfig {
                workers: 0,
                queue_capacity: 1,
                default_deadline: None,
                trace: None,
            },
            rec.clone() as Arc<dyn Recorder>,
        );
        let clock = Arc::new(ManualClock::new(0));
        let rules = RuleSet::new(vec![SloRule::new(
            "shed-rate",
            Condition::RatioAbove {
                numerator: "serve.shed.queue_full".into(),
                denominators: vec!["serve.req.admitted".into(), "serve.shed.queue_full".into()],
                max: 0.5,
            },
        )
        .for_ms(TICK_MS)
        .clear_for_ms(TICK_MS)]);
        server.install_watch(
            rec.clone(),
            Watcher::new(rules, 3 * TICK_MS, clock.clone()),
            WatchPolicy {
                degrade_max_work_while_firing: Some(8),
                refresh_on_drift: None,
            },
        );

        let mut transitions = Vec::new();
        let mut degraded_ticks = 0u64;
        server.watch_tick(); // t=0 baseline, before the burst
        for _ in 0..4 {
            // One admit then three sheds: shed rate 3/4 over the window.
            let _ = server.submit(burst_request());
        }
        for _ in 0..6 {
            clock.advance(TICK_MS);
            if let Some(report) = server.watch_tick() {
                transitions.extend(report.transitions);
            }
            if server.degrade_cap().is_some() {
                degraded_ticks += 1;
            }
        }
        let drained = server.shutdown();

        let mut table = Table::new(
            "overload: shed-rate > 0.5 for 100ms (0 workers, queue of 1, 4 submissions)",
            &["t_ms", "rule", "kind", "transition"],
        );
        transition_rows(&mut table, &transitions);
        out.push_str(&table.render());
        let _ = {
            use std::fmt::Write as _;
            writeln!(
                out,
                "degrade cap engaged for {degraded_ticks} tick(s); {drained} request(s) drained at shutdown\n"
            )
        };
        if obs.enabled() {
            let (fired, resolved) = fired_resolved(&transitions);
            obs.counter("watch.e17.overload.transitions", transitions.len() as u64);
            obs.counter("watch.e17.overload.fired", fired);
            obs.counter("watch.e17.overload.resolved", resolved);
            obs.counter("watch.e17.overload.degraded_ticks", degraded_ticks);
            export_watch_series(&obs, &rec.snapshot());
        }
    }

    // -- 2: staleness -> manual artifact refresh clears the alert -----
    if !guard.should_stop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let server = Server::start_recorded(
            ModelSet::demo(SEED)?,
            ServeConfig {
                workers: 1,
                queue_capacity: 16,
                default_deadline: None,
                trace: None,
            },
            rec.clone() as Arc<dyn Recorder>,
        );
        let clock = Arc::new(ManualClock::new(0));
        let rules = RuleSet::new(vec![SloRule::new(
            "artifact-staleness",
            Condition::StaleFor {
                metric: "serve.artifact.refreshed".into(),
                max_age_ms: 250,
            },
        )
        .for_ms(TICK_MS)
        .clear_for_ms(0)]);
        server.install_watch(
            rec.clone(),
            Watcher::new(rules, 10 * TICK_MS, clock.clone()),
            WatchPolicy::default(),
        );

        let mut transitions = Vec::new();
        server.watch_tick(); // t=0: the staleness baseline (birth)
        for tick in 1..=8u64 {
            if tick == 6 {
                // The operator (or a stream) finally republishes: the
                // refresh counter moves, staleness resets.
                server.refresh_artifact(|m| m);
            }
            clock.advance(TICK_MS);
            if let Some(report) = server.watch_tick() {
                transitions.extend(report.transitions);
            }
        }
        server.shutdown();

        let mut table = Table::new(
            "staleness: serve.artifact.refreshed older than 250ms (refresh lands at t=600ms)",
            &["t_ms", "rule", "kind", "transition"],
        );
        transition_rows(&mut table, &transitions);
        out.push_str(&table.render());
        out.push('\n');
        if obs.enabled() {
            let (fired, resolved) = fired_resolved(&transitions);
            obs.counter("watch.e17.stale.transitions", transitions.len() as u64);
            obs.counter("watch.e17.stale.fired", fired);
            obs.counter("watch.e17.stale.resolved", resolved);
            export_watch_series(&obs, &rec.snapshot());
        }
    }

    // -- 3: concept drift -> detectors fire, model is republished -----
    if !guard.should_stop() {
        let rec = Arc::new(InMemoryRecorder::new());
        let feed_guard = Guard::unlimited().with_recorder(rec.clone() as Arc<dyn Recorder>);
        let server = Server::start_recorded(
            ModelSet::demo(SEED)?,
            ServeConfig {
                workers: 1,
                queue_capacity: 16,
                default_deadline: None,
                trace: None,
            },
            rec.clone() as Arc<dyn Recorder>,
        );
        let stream = Arc::new(Mutex::new(StreamKMeans::new(4, 32)?));
        let clock = Arc::new(ManualClock::new(0));
        let metric = "stream.kmeans.inertia";
        let rules = RuleSet::new(vec![
            SloRule::new(
                "inertia-ph",
                Condition::Drift {
                    metric: metric.into(),
                    detector: DetectorSpec::PageHinkley {
                        delta: 10.0,
                        lambda: 500.0,
                    },
                    hold_ms: Some(5 * TICK_MS),
                },
            ),
            SloRule::new(
                "inertia-cusum",
                Condition::Drift {
                    metric: metric.into(),
                    detector: DetectorSpec::Cusum {
                        k: 10.0,
                        h: 500.0,
                        warmup: 10,
                    },
                    hold_ms: Some(5 * TICK_MS),
                },
            ),
        ]);
        let refresh_source = stream.clone();
        server.install_watch(
            rec.clone(),
            Watcher::new(rules, 20 * TICK_MS, clock.clone()),
            WatchPolicy {
                degrade_max_work_while_firing: None,
                refresh_on_drift: Some(Box::new(move |set| {
                    let s = refresh_source
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    match s.model() {
                        Ok(m) => set.with_kmeans(m),
                        Err(_) => set,
                    }
                })),
            },
        );

        // 40 mini-batches of 32 points; from batch 25 on, every
        // coordinate shifts by +6 — an abrupt concept drift that spikes
        // the per-flush inertia until the centroids re-converge.
        let mixture = GaussianMixture::well_separated(4, 3, 200, 8.0)?;
        let points: Vec<Vec<f64>> = PointStream::new(mixture, SEED)
            .take(40 * 32)
            .map(|(p, _)| p)
            .collect();
        let mut transitions = Vec::new();
        for (i, chunk) in points.chunks(32).enumerate() {
            let batch: Vec<Vec<f64>> = if i >= 25 {
                chunk
                    .iter()
                    .map(|p| p.iter().map(|x| x + 6.0).collect())
                    .collect()
            } else {
                chunk.to_vec()
            };
            {
                let mut s = stream.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = s.insert_governed(&batch, &feed_guard);
            }
            clock.advance(TICK_MS);
            if let Some(report) = server.watch_tick() {
                transitions.extend(report.transitions);
            }
        }
        let republished = server.models().kmeans().is_some();
        server.shutdown();

        let snap = rec.snapshot();
        let detections = snap.counter("watch.drift.detections").unwrap_or(0);
        let refreshes = snap.counter("serve.watch.refresh.on_drift").unwrap_or(0);
        let mut table = Table::new(
            "drift: +6.0/coordinate shift at batch 25 of 40 (PH delta 10 lambda 500; CUSUM k 10 h 500)",
            &["t_ms", "rule", "kind", "transition"],
        );
        transition_rows(&mut table, &transitions);
        out.push_str(&table.render());
        let _ = {
            use std::fmt::Write as _;
            writeln!(
                out,
                "{detections} detection(s), {refreshes} republish(es); served kmeans present: {republished}"
            )
        };
        if obs.enabled() {
            let (fired, resolved) = fired_resolved(&transitions);
            obs.counter("watch.e17.drift.transitions", transitions.len() as u64);
            obs.counter("watch.e17.drift.fired", fired);
            obs.counter("watch.e17.drift.resolved", resolved);
            obs.counter("watch.e17.drift.detections", detections);
            obs.counter("watch.e17.drift.refreshes", refreshes);
            export_watch_series(&obs, &snap);
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_core::obs::Recorder;

    /// Deterministic (counter, gauge-bits) series pulled from one run.
    type GatedSeries = (Vec<(String, u64)>, Vec<(String, u64)>);

    fn gated_metrics() -> GatedSeries {
        let rec = Arc::new(InMemoryRecorder::new());
        let guard = Guard::unlimited().with_recorder(rec.clone() as Arc<dyn Recorder>);
        e17_watch(&guard).unwrap();
        let snap = rec.snapshot();
        let counters: Vec<(String, u64)> = snap
            .counters
            .iter()
            .filter(|(k, _)| !k.ends_with("_ns"))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        // Gauges carried as bit patterns so NaN/float identity is exact.
        let gauges: Vec<(String, u64)> = snap
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect();
        (counters, gauges)
    }

    #[test]
    fn e17_every_section_fires_and_resolves() {
        let rec = Arc::new(InMemoryRecorder::new());
        let guard = Guard::unlimited().with_recorder(rec.clone() as Arc<dyn Recorder>);
        let report = e17_watch(&guard).unwrap();
        let snap = rec.snapshot();
        for section in ["overload", "stale", "drift"] {
            let fired = snap
                .counter(&format!("watch.e17.{section}.fired"))
                .unwrap_or(0);
            let resolved = snap
                .counter(&format!("watch.e17.{section}.resolved"))
                .unwrap_or(0);
            assert!(fired >= 1, "{section}: no Firing transition\n{report}");
            assert!(resolved >= 1, "{section}: no Resolved transition\n{report}");
        }
        // The drift section's reactions actually happened.
        assert!(snap.counter("watch.e17.drift.detections").unwrap_or(0) >= 2);
        assert!(snap.counter("watch.e17.drift.refreshes").unwrap_or(0) >= 1);
        assert!(
            snap.counter("watch.e17.overload.degraded_ticks")
                .unwrap_or(0)
                >= 1
        );
    }

    #[test]
    fn e17_gated_series_are_deterministic() {
        assert_eq!(gated_metrics(), gated_metrics());
    }
}
