//! Association-rule experiments E1–E5 and ablation A1.
//!
//! Reconstructions of the Agrawal & Srikant (VLDB 1994) evaluation over
//! Quest synthetic data. Dataset sizes are scaled to laptop budgets
//! (D = 10K instead of 100K); the claimed *shapes* — who wins, how the
//! gap moves with minsup, linear transaction scale-up — are preserved.

use crate::table::{fmt_duration, Table};
use dm_core::prelude::*;
use std::time::{Duration, Instant};

/// Pattern-table seed shared by all association experiments.
const PATTERN_SEED: u64 = 101;
/// Database seed.
const DB_SEED: u64 = 202;

fn quest_db(t: f64, i: f64, d: usize) -> Result<(String, TransactionDb), DataError> {
    let config = QuestConfig::standard(t, i, d);
    let name = config.name();
    let gen = QuestGenerator::new(config, PATTERN_SEED)?;
    Ok((name, gen.generate(DB_SEED)))
}

fn time_miner(
    miner: &dyn ItemsetMiner,
    db: &TransactionDb,
    guard: &Guard,
) -> Result<(Duration, MiningResult), DataError> {
    let t0 = Instant::now();
    let result = miner.mine_governed(db, guard)?.result;
    Ok((t0.elapsed(), result))
}

/// E1 — relative execution time of AIS / Apriori / AprioriTid across
/// minimum supports on three Quest databases (VLDB'94 Table/Fig. of
/// per-minsup execution times).
pub fn e1_miner_times(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E1: miner execution time vs minimum support\n");
    out.push_str("(reconstruction of Agrawal–Srikant VLDB'94 execution-time figures)\n\n");
    for (t, i) in [(5.0, 2.0), (10.0, 4.0), (20.0, 6.0)] {
        let (name, db) = quest_db(t, i, 10_000)?;
        let mut table = Table::new(
            format!("{name}: time by minsup"),
            &[
                "minsup %",
                "ais",
                "setm",
                "apriori",
                "apriori-tid",
                "hybrid",
                "frequent sets",
            ],
        );
        for minsup in [2.0, 1.5, 1.0, 0.75, 0.5f64] {
            let support = MinSupport::Fraction(minsup / 100.0);
            let (t_ais, _) = time_miner(&Ais::new(support), &db, guard)?;
            let (t_setm, _) = time_miner(&Setm::new(support), &db, guard)?;
            let (t_ap, r_ap) = time_miner(&Apriori::new(support), &db, guard)?;
            let (t_tid, _) = time_miner(&AprioriTid::new(support), &db, guard)?;
            let (t_hy, _) = time_miner(&AprioriHybrid::new(support), &db, guard)?;
            table.row(vec![
                format!("{minsup}"),
                fmt_duration(t_ais),
                fmt_duration(t_setm),
                fmt_duration(t_ap),
                fmt_duration(t_tid),
                fmt_duration(t_hy),
                r_ap.itemsets.len().to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    Ok(out)
}

/// E2 — per-pass candidate and frequent-set counts (the VLDB'94
/// candidates-per-pass figure explaining Apriori's advantage).
pub fn e2_per_pass(guard: &Guard) -> Result<String, DataError> {
    let (name, db) = quest_db(10.0, 4.0, 10_000)?;
    let support = MinSupport::Fraction(0.0075);
    let mut out = String::new();
    out.push_str("# E2: per-pass candidates (T10.I4, minsup 0.75%)\n");
    out.push_str("(reconstruction of the VLDB'94 per-pass candidate-count figure)\n\n");
    for miner in [
        &Ais::new(support) as &dyn ItemsetMiner,
        &Setm::new(support),
        &Apriori::new(support),
        &AprioriTid::new(support),
    ] {
        let (_, result) = time_miner(miner, &db, guard)?;
        let mut table = Table::new(
            format!("{} on {name}", miner.name()),
            &["pass", "candidates", "frequent", "time"],
        );
        for p in &result.stats.passes {
            table.row(vec![
                p.pass.to_string(),
                p.candidates.to_string(),
                p.frequent.to_string(),
                fmt_duration(p.duration),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    Ok(out)
}

/// E3 — Apriori scale-up with the number of transactions (VLDB'94
/// transaction scale-up figure; expect near-linear growth).
pub fn e3_scaleup_transactions(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E3: Apriori scale-up with |D| (T10.I4, minsup 1%)\n\n");
    let mut table = Table::new(
        "time vs transactions",
        &["transactions", "time", "time per 1K txns", "frequent sets"],
    );
    for d in [2_500usize, 5_000, 10_000, 20_000, 40_000] {
        let (_, db) = quest_db(10.0, 4.0, d)?;
        let (time, result) = time_miner(&Apriori::new(MinSupport::Fraction(0.01)), &db, guard)?;
        table.row(vec![
            d.to_string(),
            fmt_duration(time),
            fmt_duration(time / (d as u32 / 1000).max(1)),
            result.itemsets.len().to_string(),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// E4 — Apriori scale-up with transaction width at fixed |D| and fixed
/// fractional support (VLDB'94 transaction-size scale-up figure; expect
/// superlinear but bounded growth with width).
pub fn e4_scaleup_width(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E4: Apriori scale-up with |T| (|D| = 10K, minsup 1%)\n\n");
    let mut table = Table::new(
        "time vs mean transaction width",
        &["|T|", "time", "frequent sets"],
    );
    for t in [5usize, 10, 20, 30] {
        let (_, db) = quest_db(t as f64, 4.0, 10_000)?;
        let (time, result) = time_miner(&Apriori::new(MinSupport::Fraction(0.01)), &db, guard)?;
        table.row(vec![
            t.to_string(),
            fmt_duration(time),
            result.itemsets.len().to_string(),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// E5 — rule counts at varying minimum confidence (the rule-generation
/// table; the count grows as minconf falls and every rule meets the bar).
pub fn e5_rule_counts(guard: &Guard) -> Result<String, DataError> {
    let (name, db) = quest_db(10.0, 4.0, 10_000)?;
    let mined = Apriori::new(MinSupport::Fraction(0.005))
        .mine_governed(&db, guard)?
        .result;
    let mut out = String::new();
    out.push_str(&format!(
        "# E5: rule generation on {name} (minsup 0.5%, {} frequent itemsets)\n\n",
        mined.itemsets.len()
    ));
    let mut table = Table::new(
        "rules vs minimum confidence",
        &["minconf %", "rules", "mean lift", "top rule confidence"],
    );
    for conf in [90.0, 70.0, 50.0, 30.0f64] {
        let rules = RuleGenerator::new(conf / 100.0).generate(&mined.itemsets)?;
        let mean_lift = if rules.is_empty() {
            0.0
        } else {
            rules.iter().map(|r| r.lift).sum::<f64>() / rules.len() as f64
        };
        table.row(vec![
            format!("{conf}"),
            rules.len().to_string(),
            format!("{mean_lift:.2}"),
            rules
                .first()
                .map(|r| format!("{:.3}", r.confidence))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// E14 — FP-Growth / Eclat vs Apriori at low minimum support: the
/// candidate-explosion regime where candidate generation itself becomes
/// the bottleneck and the no-candidate miners pull a multiple-× lead.
/// The headline (lowest-support) point's timings land in the run ledger
/// as `experiment.fp_vs_apriori.*_ns` counters (noisy-banded), next to
/// the exact frequent-itemset count (0%-gated).
pub fn e14_fp_vs_apriori_low_support(guard: &Guard) -> Result<String, DataError> {
    let (name, db) = quest_db(10.0, 4.0, 10_000)?;
    let mut out = String::new();
    out.push_str("# E14: FP-Growth and Eclat vs Apriori at low minsup\n");
    out.push_str("(the SIGMOD 2000 claim: no candidate generation wins where C_k explodes)\n\n");
    let mut table = Table::new(
        format!("{name}: time by minsup"),
        &[
            "minsup %",
            "apriori",
            "fp-growth",
            "eclat",
            "fp speedup",
            "frequent sets",
        ],
    );
    let supports = [1.0, 0.5, 0.33, 0.25f64];
    let mut headline: Option<(f64, Duration, Duration, Duration, usize)> = None;
    for minsup in supports {
        let support = MinSupport::Fraction(minsup / 100.0);
        let (t_ap, r_ap) = time_miner(&Apriori::new(support), &db, guard)?;
        let (t_fp, r_fp) = time_miner(&FpGrowth::new(support), &db, guard)?;
        let (t_ec, r_ec) = time_miner(&Eclat::new(support), &db, guard)?;
        assert_eq!(r_fp.itemsets, r_ap.itemsets, "fp-growth output contract");
        assert_eq!(r_ec.itemsets, r_ap.itemsets, "eclat output contract");
        table.row(vec![
            format!("{minsup}"),
            fmt_duration(t_ap),
            fmt_duration(t_fp),
            fmt_duration(t_ec),
            format!("{:.1}x", t_ap.as_secs_f64() / t_fp.as_secs_f64().max(1e-9)),
            r_ap.itemsets.len().to_string(),
        ]);
        headline = Some((minsup, t_ap, t_fp, t_ec, r_ap.itemsets.len()));
    }
    out.push_str(&table.render());
    if let Some((minsup, t_ap, t_fp, t_ec, n)) = headline {
        let speedup = t_ap.as_secs_f64() / t_fp.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "\nheadline: at minsup {minsup}% FP-Growth is {speedup:.1}x faster than Apriori \
             ({} vs {}), {n} frequent itemsets\n",
            fmt_duration(t_fp),
            fmt_duration(t_ap),
        ));
        let obs = guard.obs();
        if obs.enabled() {
            let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            obs.counter("experiment.fp_vs_apriori.apriori_ns", ns(t_ap));
            obs.counter("experiment.fp_vs_apriori.fp_ns", ns(t_fp));
            obs.counter("experiment.fp_vs_apriori.eclat_ns", ns(t_ec));
            obs.counter("experiment.fp_vs_apriori.frequent_itemsets", n as u64);
        }
    }
    Ok(out)
}

/// A1 — ablation: counting-structure choices inside Apriori. The grid
/// crosses {dense pair array on/off} × {hash tree / linear scan}; the
/// pair array is the dominant effect (pass 2 carries ~|L1|²/2
/// candidates), and the hash tree is what keeps the array-less variant
/// from collapsing — the original paper's configuration.
pub fn a1_hashtree_ablation(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# A1: Apriori counting-structure ablation\n\n");
    let (name, db) = quest_db(10.0, 4.0, 2_000)?;
    let support = MinSupport::Fraction(0.01);
    let mut table = Table::new(
        format!("total mining time on {name} (minsup 1%)"),
        &["pair array", "pass>=3 structure", "time", "vs best"],
    );
    let variants: Vec<(&str, &str, Apriori)> = vec![
        ("yes", "hash tree", Apriori::new(support)),
        (
            "yes",
            "linear",
            Apriori::new(support).with_counting(CountingStrategy::Linear),
        ),
        (
            "no",
            "hash tree",
            Apriori::new(support).with_pair_array(false),
        ),
        (
            "no",
            "linear",
            Apriori::new(support)
                .with_pair_array(false)
                .with_counting(CountingStrategy::Linear),
        ),
    ];
    let mut reference: Option<&FrequentItemsets> = None;
    let mut mined = Vec::with_capacity(variants.len());
    for (a, s, m) in &variants {
        let (time, result) = time_miner(m, &db, guard)?;
        mined.push((*a, *s, time, result));
    }
    for (_, _, _, r) in &mined {
        match reference {
            Some(first) => assert_eq!(first, &r.itemsets, "variants must agree"),
            None => reference = Some(&r.itemsets),
        }
    }
    let best = mined
        .iter()
        .map(|(_, _, t, _)| *t)
        .min()
        .unwrap_or(Duration::from_secs(1));
    for (array, structure, time, _) in &mined {
        table.row(vec![
            array.to_string(),
            structure.to_string(),
            fmt_duration(*time),
            format!("{:.1}x", time.as_secs_f64() / best.as_secs_f64().max(1e-9)),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quest_db_is_deterministic() {
        let (na, a) = quest_db(5.0, 2.0, 500).unwrap();
        let (nb, b) = quest_db(5.0, 2.0, 500).unwrap();
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert_eq!(na, "T5.I2.D500");
    }

    #[test]
    fn e5_report_is_well_formed() {
        // Uses a small inline variant to stay fast in CI.
        let (_, db) = quest_db(5.0, 2.0, 800).unwrap();
        let mined = Apriori::new(MinSupport::Fraction(0.02)).mine(&db).unwrap();
        let high = RuleGenerator::new(0.9).generate(&mined.itemsets).unwrap();
        let low = RuleGenerator::new(0.5).generate(&mined.itemsets).unwrap();
        assert!(low.len() >= high.len());
    }
}
