//! Sequential-pattern experiment E13.
//!
//! Reconstruction of the AprioriAll evaluation of Agrawal & Srikant
//! (ICDE 1995): pattern counts and execution time as minimum (customer)
//! support falls, on a Quest-style synthetic sequence database.

use crate::table::{fmt_duration, Table};
use dm_core::prelude::*;

/// E13 — AprioriAll across minimum supports: pattern counts per length
/// and total time (time grows and longer patterns appear as minsup
/// falls).
pub fn e13_sequential_patterns(guard: &Guard) -> Result<String, DataError> {
    let config = SequenceConfig::standard(1_000);
    let generator = SequenceGenerator::new(config, 77)?;
    let db = generator.generate(78);
    let mut out = String::new();
    out.push_str(&format!(
        "# E13: AprioriAll on {} customers (avg {:.1} txns each)\n\n",
        db.len(),
        db.mean_len()
    ));
    let mut table = Table::new(
        "patterns vs minimum customer support",
        &[
            "minsup %",
            "litemsets",
            "maximal patterns",
            "longest",
            "frequent by length",
            "time",
        ],
    );
    for pct in [4.0, 2.0, 1.0f64] {
        let result = AprioriAll::new(pct / 100.0)
            .mine_governed(&db, guard)?
            .result;
        table.row(vec![
            format!("{pct}"),
            result.n_litemsets.to_string(),
            result.patterns.len().to_string(),
            result.frequent_per_length.len().to_string(),
            format!("{:?}", result.frequent_per_length),
            fmt_duration(result.duration),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_support_never_loses_patterns() {
        let generator = SequenceGenerator::new(SequenceConfig::standard(150), 5).unwrap();
        let db = generator.generate(6);
        let hi = AprioriAll::new(0.10).keep_non_maximal().mine(&db).unwrap();
        let lo = AprioriAll::new(0.05).keep_non_maximal().mine(&db).unwrap();
        assert!(lo.patterns.len() >= hi.patterns.len());
    }
}
