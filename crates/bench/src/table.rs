//! Tiny fixed-width table formatter for the experiment reports.

/// A plain-text table with a title, a header row and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Renders the table with per-column widths.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..n {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["algo", "time"]);
        t.row(vec!["apriori".into(), "1.2s".into()]);
        t.row(vec!["ais".into(), "10.0s".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("apriori"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn rows_are_padded() {
        let mut t = Table::new("p", &["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().lines().count() == 4);
    }

    #[test]
    fn duration_units() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7us");
    }
}
