//! Classification experiments E9–E12.
//!
//! Reconstructions of the Agrawal et al. (TKDE 1993) / SLIQ-era
//! decision-tree benchmarks over the ten synthetic functions.

use crate::table::{fmt_duration, Table};
use dm_core::prelude::*;
use std::time::Instant;

fn classifier_suite() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(TreeClassifier::new(
            DecisionTreeLearner::new()
                .with_criterion(SplitCriterion::GainRatio)
                .with_pruning(Pruning::Pessimistic { cf: 0.25 }),
        )),
        Box::new(TreeClassifier::new(
            DecisionTreeLearner::new().with_criterion(SplitCriterion::Gini),
        )),
        Box::new(BaggedClassifier::new(BaggedTrees::new(11))),
        Box::new(BayesClassifier::default()),
        Box::new(KnnClassifier::new(Knn::new(5))),
        Box::new(OneRClassifier::default()),
    ]
}

fn suite_names() -> Vec<&'static str> {
    vec![
        "c4.5-style",
        "cart-style",
        "bagged-11",
        "naive-bayes",
        "knn-5",
        "one-r",
    ]
}

/// E9 — 5-fold cross-validated accuracy over functions F1–F10 (the
/// per-function accuracy table).
///
/// The [`Classifier`] suite trait is ungoverned, so the guard only
/// gates progress between functions (cooperative truncation).
pub fn e9_accuracy_table(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E9: 5-fold CV accuracy on Agrawal functions F1-F10 (2000 records)\n\n");
    let mut header = vec!["function"];
    header.extend(suite_names());
    let mut table = Table::new("accuracy by classifier", &header);
    for f in AgrawalFunction::ALL {
        if guard.should_stop() {
            break;
        }
        let (data, labels) = AgrawalGenerator::new(f, 2000)?.generate(1000 + f.number() as u64);
        let mut cells = vec![format!("F{}", f.number())];
        for c in classifier_suite() {
            let r = cross_validate(c.as_ref(), &data, &labels, 5, 0)?;
            cells.push(format!("{:.3}", r.mean_accuracy));
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// E10 — learning curve and pruning effect on F2 (accuracy and tree size
/// vs training-set size, pruned vs unpruned).
pub fn e10_learning_curve(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str(
        "# E10: learning curve on F2 with 10% label noise (test = 2000 clean records)\n\n",
    );
    let (test, test_labels) = AgrawalGenerator::new(AgrawalFunction::F2, 2000)?.generate(999);
    let mut table = Table::new(
        "accuracy / size vs training size",
        &[
            "train n",
            "unpruned acc",
            "pruned acc",
            "unpruned nodes",
            "pruned nodes",
        ],
    );
    for n in [100usize, 200, 400, 800, 1600, 3200] {
        let (train, labels) = AgrawalGenerator::new(AgrawalFunction::F2, n)?.generate(n as u64);
        let noisy = flip_labels(&labels, 0.10, 7)?;
        let unpruned = DecisionTreeLearner::new()
            .fit_governed(&train, &noisy, guard)?
            .result;
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit_governed(&train, &noisy, guard)?
            .result;
        let acc = |t: &dm_core::tree::DecisionTree| {
            t.predict(&test)
                .iter()
                .zip(test_labels.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / test.n_rows() as f64
        };
        table.row(vec![
            n.to_string(),
            format!("{:.3}", acc(&unpruned)),
            format!("{:.3}", acc(&pruned)),
            unpruned.n_nodes().to_string(),
            pruned.n_nodes().to_string(),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// E11 — training-time scale-up with record count (the SLIQ-style
/// classifier scale-up figure).
pub fn e11_train_time_scaleup(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E11: train/predict time vs records (F5; predict on 1000 rows)\n\n");
    let (test, _) = AgrawalGenerator::new(AgrawalFunction::F5, 1000)?.generate(500);
    let mut header = vec!["records"];
    for n in suite_names() {
        header.push(n);
    }
    let mut table = Table::new("fit time (predict time)", &header);
    for n in [1000usize, 2000, 4000, 8000, 16000] {
        if guard.should_stop() {
            break;
        }
        let (train, labels) = AgrawalGenerator::new(AgrawalFunction::F5, n)?.generate(n as u64 + 1);
        let mut cells = vec![n.to_string()];
        for c in classifier_suite() {
            let t0 = Instant::now();
            let model = c.fit(&train, &labels)?;
            let fit = t0.elapsed();
            let t0 = Instant::now();
            let _ = model.predict(&test);
            let predict = t0.elapsed();
            cells.push(format!("{} ({})", fmt_duration(fit), fmt_duration(predict)));
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// E12 — noise sensitivity (Quinlan-style): accuracy on clean test data
/// as training label noise rises; pruning should degrade more
/// gracefully.
pub fn e12_noise_sensitivity(guard: &Guard) -> Result<String, DataError> {
    let mut out = String::new();
    out.push_str("# E12: label-noise sensitivity on F5 (train 2000, clean test 1000)\n\n");
    let (test, test_labels) = AgrawalGenerator::new(AgrawalFunction::F5, 1000)?.generate(321);
    let (train, clean_labels) = AgrawalGenerator::new(AgrawalFunction::F5, 2000)?.generate(322);
    let mut table = Table::new(
        "accuracy vs training label noise",
        &[
            "noise %",
            "unpruned tree",
            "pruned tree",
            "naive bayes",
            "unpruned nodes",
            "pruned nodes",
        ],
    );
    for noise in [0.0, 0.05, 0.10, 0.20f64] {
        let labels = flip_labels(&clean_labels, noise, 55)?;
        let unpruned = DecisionTreeLearner::new()
            .fit_governed(&train, &labels, guard)?
            .result;
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit_governed(&train, &labels, guard)?
            .result;
        let nb = NaiveBayes::new().fit(&train, &labels)?;
        let acc = |pred: Vec<u32>| {
            pred.iter()
                .zip(test_labels.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / test.n_rows() as f64
        };
        table.row(vec![
            format!("{:.0}", noise * 100.0),
            format!("{:.3}", acc(unpruned.predict(&test))),
            format!("{:.3}", acc(pruned.predict(&test))),
            format!("{:.3}", acc(nb.predict(&test))),
            unpruned.n_nodes().to_string(),
            pruned.n_nodes().to_string(),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_and_names_line_up() {
        assert_eq!(classifier_suite().len(), suite_names().len());
    }

    #[test]
    fn e12_shape_pruning_degrades_gracefully() {
        // Miniature version of E12's claim: at 20% noise the pruned tree
        // must be no worse than the unpruned one on clean test data.
        let (test, test_labels) = AgrawalGenerator::new(AgrawalFunction::F5, 400)
            .unwrap()
            .generate(1);
        let (train, clean) = AgrawalGenerator::new(AgrawalFunction::F5, 800)
            .unwrap()
            .generate(2);
        let noisy = flip_labels(&clean, 0.2, 3).unwrap();
        let unpruned = DecisionTreeLearner::new().fit(&train, &noisy).unwrap();
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit(&train, &noisy)
            .unwrap();
        let acc = |t: &dm_core::tree::DecisionTree| {
            t.predict(&test)
                .iter()
                .zip(test_labels.codes())
                .filter(|(p, t)| p == t)
                .count()
        };
        assert!(acc(&pruned) + 8 >= acc(&unpruned));
        assert!(pruned.n_nodes() <= unpruned.n_nodes());
    }
}
