//! Criterion benches for the classification experiments (E9–E12).

// Bench harness code: panicking on setup failure is the correct behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_core::prelude::*;
use std::hint::black_box;

fn data(f: AgrawalFunction, n: usize, seed: u64) -> (Dataset, Labels) {
    AgrawalGenerator::new(f, n)
        .expect("rows > 0")
        .generate(seed)
}

/// E9 kernel: fit+predict of each classifier on one function.
fn e9_fit_predict(c: &mut Criterion) {
    let (train, labels) = data(AgrawalFunction::F2, 1_000, 1);
    let (test, _) = data(AgrawalFunction::F2, 500, 2);
    let mut group = c.benchmark_group("e09_fit_predict_f2");
    group.sample_size(10);
    let classifiers: Vec<Box<dyn Classifier>> = vec![
        Box::new(TreeClassifier::default()),
        Box::new(BayesClassifier::default()),
        Box::new(KnnClassifier::default()),
        Box::new(OneRClassifier::default()),
    ];
    for cl in classifiers {
        group.bench_function(cl.name(), |b| {
            b.iter(|| {
                let model = cl.fit(black_box(&train), black_box(&labels)).unwrap();
                black_box(model.predict(&test))
            })
        });
    }
    group.finish();
}

/// E10 kernel: tree induction across training sizes (pruned).
fn e10_tree_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_tree_training_size");
    group.sample_size(10);
    for n in [200usize, 800, 3200] {
        let (train, labels) = data(AgrawalFunction::F2, n, n as u64);
        let noisy = flip_labels(&labels, 0.10, 7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| {
                DecisionTreeLearner::new()
                    .with_pruning(Pruning::Pessimistic { cf: 0.25 })
                    .fit(black_box(&train), black_box(&noisy))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// E11 kernel: per-classifier fit time at one larger size.
fn e11_fit_time(c: &mut Criterion) {
    let (train, labels) = data(AgrawalFunction::F5, 4_000, 9);
    let mut group = c.benchmark_group("e11_fit_n4000");
    group.sample_size(10);
    group.bench_function("tree", |b| {
        b.iter(|| {
            DecisionTreeLearner::new()
                .fit(black_box(&train), &labels)
                .unwrap()
        })
    });
    group.bench_function("naive_bayes", |b| {
        b.iter(|| NaiveBayes::new().fit(black_box(&train), &labels).unwrap())
    });
    group.bench_function("one_r", |b| {
        b.iter(|| OneR::new().fit(black_box(&train), &labels).unwrap())
    });
    group.finish();
}

/// E12 kernel: pruning cost on noisy labels.
fn e12_pruning(c: &mut Criterion) {
    let (train, labels) = data(AgrawalFunction::F5, 1_000, 11);
    let noisy = flip_labels(&labels, 0.2, 5).unwrap();
    let mut group = c.benchmark_group("e12_pruning_noisy");
    group.sample_size(10);
    group.bench_function("unpruned", |b| {
        b.iter(|| {
            DecisionTreeLearner::new()
                .fit(black_box(&train), &noisy)
                .unwrap()
        })
    });
    group.bench_function("pessimistic", |b| {
        b.iter(|| {
            DecisionTreeLearner::new()
                .with_pruning(Pruning::Pessimistic { cf: 0.25 })
                .fit(black_box(&train), &noisy)
                .unwrap()
        })
    });
    group.bench_function("reduced_error", |b| {
        b.iter(|| {
            DecisionTreeLearner::new()
                .with_pruning(Pruning::ReducedError {
                    fraction: 0.3,
                    seed: 1,
                })
                .fit(black_box(&train), &noisy)
                .unwrap()
        })
    });
    group.finish();
}

/// k-NN backend ablation: brute force vs k-d tree prediction.
fn knn_backend(c: &mut Criterion) {
    let (train, _) = GaussianMixture::well_separated(4, 3, 500, 8.0)
        .expect("valid")
        .generate(3);
    let labels: Vec<u32> = (0..train.rows() as u32).map(|i| i % 4).collect();
    let (queries, _) = GaussianMixture::well_separated(4, 3, 100, 8.0)
        .expect("valid")
        .generate(4);
    let mut group = c.benchmark_group("knn_backend_n2000_d3");
    for (name, search) in [("brute", Search::Brute), ("kdtree", Search::KdTree)] {
        let model = Knn::new(5)
            .with_search(search)
            .fit(&train, &labels)
            .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| model.predict(black_box(&queries)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e9_fit_predict,
    e10_tree_by_size,
    e11_fit_time,
    e12_pruning,
    knn_backend
);
criterion_main!(benches);
