//! Criterion benches for the clustering experiments (E6–E8, A2).

// Bench harness code: panicking on setup failure is the correct behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_core::prelude::*;
use std::hint::black_box;

fn blobs(n_per: usize) -> Matrix {
    GaussianMixture::well_separated(5, 2, n_per, 8.0)
        .expect("valid mixture")
        .generate(13)
        .0
}

/// E6 kernel: one k-means fit per init strategy.
fn e6_kmeans_init(c: &mut Criterion) {
    let data = blobs(200);
    let mut group = c.benchmark_group("e06_kmeans_init");
    group.bench_function("kmeans_pp", |b| {
        b.iter(|| {
            KMeans::new(5)
                .with_seed(1)
                .fit_model(black_box(&data))
                .unwrap()
        })
    });
    group.bench_function("kmeans_random", |b| {
        b.iter(|| {
            KMeans::new(5)
                .with_init(Init::Random)
                .with_seed(1)
                .fit_model(black_box(&data))
                .unwrap()
        })
    });
    group.finish();
}

/// E7 kernel: each algorithm once on a fixed mixture.
fn e7_algorithms(c: &mut Criterion) {
    let data = blobs(120);
    let mut group = c.benchmark_group("e07_clusterers_n600");
    group.sample_size(10);
    let clusterers: Vec<Box<dyn Clusterer>> = vec![
        Box::new(KMeans::new(5).with_seed(1)),
        Box::new(Pam::new(5)),
        Box::new(Agglomerative::new(5).with_linkage(Linkage::Ward)),
        Box::new(Birch::new(5).with_threshold(1.0).with_seed(1)),
        Box::new(Dbscan::new(1.2, 5)),
    ];
    for cl in clusterers {
        group.bench_function(cl.name(), |b| b.iter(|| cl.fit(black_box(&data)).unwrap()));
    }
    group.finish();
}

/// E8 kernel: scaling of the three contenders.
fn e8_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_scaling");
    group.sample_size(10);
    for n_per in [100usize, 200, 400] {
        let data = blobs(n_per);
        let n = data.rows();
        group.bench_with_input(BenchmarkId::new("kmeans", n), &data, |b, d| {
            b.iter(|| KMeans::new(5).with_seed(3).fit(black_box(d)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("birch", n), &data, |b, d| {
            b.iter(|| {
                Birch::new(5)
                    .with_threshold(1.0)
                    .with_seed(3)
                    .fit(black_box(d))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &data, |b, d| {
            b.iter(|| {
                Agglomerative::new(5)
                    .with_linkage(Linkage::Average)
                    .fit(black_box(d))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// A2 kernel: CF-tree build across thresholds.
fn a2_birch_threshold(c: &mut Criterion) {
    let data = blobs(400);
    let mut group = c.benchmark_group("a2_birch_threshold");
    for threshold in [0.25f64, 1.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    Birch::new(5)
                        .with_threshold(t)
                        .with_seed(7)
                        .fit(black_box(&data))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// P2 kernel: parallel Lloyd iterations — the same k-means fit at 1, 2,
/// and 4 assignment threads (plus the no-layer sequential baseline).
fn p2_parallel_kmeans(c: &mut Criterion) {
    let data = blobs(4_000);
    let mut group = c.benchmark_group("p2_kmeans_threads");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| {
            KMeans::new(5)
                .with_seed(1)
                .fit_model(black_box(&data))
                .unwrap()
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                KMeans::new(5)
                    .with_seed(1)
                    .with_parallelism(Parallelism::Threads(t))
                    .fit_model(black_box(&data))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e6_kmeans_init,
    e7_algorithms,
    e8_scaling,
    a2_birch_threshold,
    p2_parallel_kmeans
);
criterion_main!(benches);
