//! Governance-overhead bench: Apriori with an unlimited [`Guard`] vs the
//! ungoverned entry point on the VLDB'94-style synthetic workload. The
//! recorded numbers live in `ledger/bench-guard.json` (target: ≤2% overhead).

// Bench harness code: panicking on setup failure is the correct behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use dm_core::prelude::*;
use std::hint::black_box;

fn quest(t: f64, i: f64, d: usize) -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(t, i, d), 101)
        .expect("valid config")
        .generate(202)
}

/// The guard tax: identical mining work, with and without the governed
/// wrapper and its stride-polled check sites.
fn guard_overhead(c: &mut Criterion) {
    let db = quest(10.0, 4.0, 5_000);
    let support = MinSupport::Fraction(0.0075);
    let mut group = c.benchmark_group("guard_overhead_t10i4d5k");
    group.sample_size(10);
    group.bench_function("apriori_ungoverned", |b| {
        b.iter(|| Apriori::new(support).mine(black_box(&db)).unwrap())
    });
    group.bench_function("apriori_governed_unlimited", |b| {
        b.iter(|| {
            Apriori::new(support)
                .mine_governed(black_box(&db), &Guard::unlimited())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, guard_overhead);
criterion_main!(benches);
