//! Criterion benches for the sequential-pattern experiment (E13).

// Bench harness code: panicking on setup failure is the correct behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_core::prelude::*;
use std::hint::black_box;

/// E13 kernel: AprioriAll across supports on a small sequence database.
fn e13_apriori_all(c: &mut Criterion) {
    let generator = SequenceGenerator::new(SequenceConfig::standard(200), 77).expect("valid");
    let db = generator.generate(78);
    let mut group = c.benchmark_group("e13_apriori_all_c200");
    group.sample_size(10);
    for pct in [8.0f64, 4.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("minsup{pct}")),
            &pct,
            |b, &pct| b.iter(|| AprioriAll::new(pct / 100.0).mine(black_box(&db)).unwrap()),
        );
    }
    group.finish();
}

/// Generator throughput (sequences are the most structured workload).
fn sequence_generation(c: &mut Criterion) {
    let generator = SequenceGenerator::new(SequenceConfig::standard(500), 1).expect("valid");
    c.bench_function("seq_generate_c500", |b| {
        b.iter(|| black_box(&generator).generate(9))
    });
}

criterion_group!(benches, e13_apriori_all, sequence_generation);
criterion_main!(benches);
