//! Criterion benches for the association-mining experiments (E1–E5, A1).
//!
//! These time the hot kernels on reduced instances; the full tables come
//! from the `experiments` binary.

// Bench harness code: panicking on setup failure is the correct behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_core::prelude::*;
use std::hint::black_box;

fn quest(t: f64, i: f64, d: usize) -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(t, i, d), 101)
        .expect("valid config")
        .generate(202)
}

/// E1 kernel: the three miners on one database/threshold.
fn e1_miners(c: &mut Criterion) {
    let db = quest(10.0, 4.0, 2_000);
    let support = MinSupport::Fraction(0.01);
    let mut group = c.benchmark_group("e01_miners_t10i4d2k_1pct");
    group.sample_size(10);
    group.bench_function("apriori", |b| {
        b.iter(|| Apriori::new(support).mine(black_box(&db)).unwrap())
    });
    group.bench_function("apriori_tid", |b| {
        b.iter(|| AprioriTid::new(support).mine(black_box(&db)).unwrap())
    });
    group.bench_function("ais", |b| {
        b.iter(|| Ais::new(support).mine(black_box(&db)).unwrap())
    });
    group.finish();
}

/// E2 kernel: pass statistics come free with a mine; time the stats path.
fn e2_pass_stats(c: &mut Criterion) {
    let db = quest(10.0, 4.0, 2_000);
    c.bench_function("e02_per_pass_stats", |b| {
        b.iter(|| {
            let r = Apriori::new(MinSupport::Fraction(0.0075))
                .mine(black_box(&db))
                .unwrap();
            black_box(r.stats.total_candidates())
        })
    });
}

/// E3 kernel: Apriori across database sizes (linear scale-up claim).
fn e3_scaleup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_apriori_scaleup_d");
    group.sample_size(10);
    for d in [1_000usize, 2_000, 4_000] {
        let db = quest(10.0, 4.0, d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &db, |b, db| {
            b.iter(|| {
                Apriori::new(MinSupport::Fraction(0.01))
                    .mine(black_box(db))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// E4 kernel: Apriori across transaction widths.
fn e4_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_apriori_scaleup_width");
    group.sample_size(10);
    for t in [5usize, 10, 20] {
        let db = quest(t as f64, 4.0, 20_000 / t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &db, |b, db| {
            b.iter(|| {
                Apriori::new(MinSupport::Count(20))
                    .mine(black_box(db))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// E5 kernel: rule generation from a mined itemset collection.
fn e5_rules(c: &mut Criterion) {
    let db = quest(10.0, 4.0, 2_000);
    let mined = Apriori::new(MinSupport::Fraction(0.0075))
        .mine(&db)
        .unwrap();
    let mut group = c.benchmark_group("e05_rule_generation");
    for conf in [0.9f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("conf{}", (conf * 100.0) as u32)),
            &conf,
            |b, &conf| {
                b.iter(|| {
                    RuleGenerator::new(conf)
                        .generate(black_box(&mined.itemsets))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// A1 kernel: hash-tree vs linear candidate counting (passes ≥ 3).
fn a1_counting(c: &mut Criterion) {
    let db = quest(20.0, 6.0, 2_000);
    let support = MinSupport::Fraction(0.01);
    let mut group = c.benchmark_group("a1_counting_structure");
    group.sample_size(10);
    group.bench_function("hash_tree", |b| {
        b.iter(|| Apriori::new(support).mine(black_box(&db)).unwrap())
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            Apriori::new(support)
                .with_counting(CountingStrategy::Linear)
                .mine(black_box(&db))
                .unwrap()
        })
    });
    group.finish();
}

/// P1 kernel: Count Distribution scaling — the same Apriori mine at 1,
/// 2, and 4 counting threads (plus the no-layer sequential baseline).
fn p1_parallel_apriori(c: &mut Criterion) {
    let db = quest(10.0, 4.0, 4_000);
    let support = MinSupport::Fraction(0.01);
    let mut group = c.benchmark_group("p1_apriori_threads");
    group.sample_size(10);
    group.bench_function("seq", |b| {
        b.iter(|| Apriori::new(support).mine(black_box(&db)).unwrap())
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                Apriori::new(support)
                    .with_parallelism(Parallelism::Threads(t))
                    .mine(black_box(&db))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e1_miners,
    e2_pass_stats,
    e3_scaleup,
    e4_width,
    e5_rules,
    a1_counting,
    p1_parallel_apriori
);
criterion_main!(benches);
