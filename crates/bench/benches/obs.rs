//! Observability-overhead bench: Apriori on the VLDB'94-style synthetic
//! workload with (a) no recorder, (b) an explicit [`NoopRecorder`], and
//! (c) a live [`InMemoryRecorder`]. The recorded numbers live in
//! `ledger/bench-obs.json` (target: ≤2% overhead for the Noop path vs the
//! unrecorded governed run).

// Bench harness code: panicking on setup failure is the correct behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use dm_core::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

fn quest(t: f64, i: f64, d: usize) -> TransactionDb {
    QuestGenerator::new(QuestConfig::standard(t, i, d), 101)
        .expect("valid config")
        .generate(202)
}

/// The observability tax: identical mining work under an unlimited
/// guard, varying only the attached recorder. `unrecorded` is the
/// baseline every miner ran at before this layer existed; `noop` shows
/// the cost of the `enabled()` gates; `in_memory` shows what live
/// metric capture actually costs.
fn obs_overhead(c: &mut Criterion) {
    let db = quest(10.0, 4.0, 5_000);
    let support = MinSupport::Fraction(0.0075);
    let mut group = c.benchmark_group("obs_overhead_t10i4d5k");
    group.sample_size(10);
    group.bench_function("apriori_unrecorded", |b| {
        b.iter(|| {
            Apriori::new(support)
                .mine_governed(black_box(&db), &Guard::unlimited())
                .unwrap()
        })
    });
    group.bench_function("apriori_noop_recorder", |b| {
        b.iter(|| {
            let guard = Guard::unlimited().with_recorder(Arc::new(NoopRecorder));
            Apriori::new(support)
                .mine_governed(black_box(&db), &guard)
                .unwrap()
        })
    });
    group.bench_function("apriori_in_memory_recorder", |b| {
        b.iter(|| {
            let rec = Arc::new(InMemoryRecorder::new());
            let guard = Guard::unlimited().with_recorder(rec.clone());
            let out = Apriori::new(support)
                .mine_governed(black_box(&db), &guard)
                .unwrap();
            black_box(rec.snapshot());
            out
        })
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
