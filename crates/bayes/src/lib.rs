//! # dm-bayes
//!
//! Naive Bayes classification over mixed numeric/categorical data:
//! numeric attributes get per-class Gaussian likelihoods, categorical
//! attributes get Laplace-smoothed frequency likelihoods, and inference
//! runs in log space. Missing cells are simply skipped — the standard
//! naive-Bayes treatment, and one of the reasons the method was a
//! fixture of the mid-90s mining toolkits.
//!
//! ```
//! use dm_synth::{AgrawalFunction, AgrawalGenerator};
//! use dm_bayes::NaiveBayes;
//!
//! let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 600)
//!     .unwrap()
//!     .generate(3);
//! let model = NaiveBayes::new().fit(&data, &labels).unwrap();
//! let acc = model
//!     .predict(&data)
//!     .iter()
//!     .zip(labels.codes())
//!     .filter(|(p, t)| p == t)
//!     .count() as f64
//!     / 600.0;
//! assert!(acc > 0.7);
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
use dm_dataset::{Column, DataError, Dataset, Labels, MISSING_CODE};

/// Per-attribute likelihood model.
#[derive(Debug, Clone)]
enum AttrModel {
    /// Per-class mean and variance.
    Gaussian { mean: Vec<f64>, var: Vec<f64> },
    /// `log_prob[class][category]`, Laplace smoothed.
    Categorical { log_prob: Vec<Vec<f64>> },
}

/// Naive Bayes learner.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    laplace: f64,
}

impl Default for NaiveBayes {
    fn default() -> Self {
        Self::new()
    }
}

impl NaiveBayes {
    /// A learner with Laplace smoothing constant 1.
    pub fn new() -> Self {
        Self { laplace: 1.0 }
    }

    /// Overrides the Laplace smoothing constant (must be > 0 so unseen
    /// categories never zero out a class).
    pub fn with_laplace(mut self, laplace: f64) -> Self {
        self.laplace = laplace;
        self
    }

    /// Trains on `data` with `labels`.
    pub fn fit(&self, data: &Dataset, labels: &Labels) -> Result<NaiveBayesModel, DataError> {
        if labels.len() != data.n_rows() {
            return Err(DataError::LabelLengthMismatch {
                labels: labels.len(),
                rows: data.n_rows(),
            });
        }
        if data.n_rows() == 0 {
            return Err(DataError::Empty("training set"));
        }
        if self.laplace <= 0.0 {
            return Err(DataError::InvalidParameter(
                "laplace constant must be positive".into(),
            ));
        }
        let n_classes = labels.n_classes();
        let codes = labels.codes();
        let class_counts = labels.class_counts();
        let n = data.n_rows() as f64;
        // Smoothed class priors (avoids -inf for absent classes).
        let class_log_prior: Vec<f64> = class_counts
            .iter()
            .map(|&c| ((c as f64 + self.laplace) / (n + self.laplace * n_classes as f64)).ln())
            .collect();

        let mut attrs = Vec::with_capacity(data.n_cols());
        for j in 0..data.n_cols() {
            match data.column(j) {
                Column::Numeric(values) => {
                    let mut sum = vec![0.0f64; n_classes];
                    let mut count = vec![0usize; n_classes];
                    for (i, &v) in values.iter().enumerate() {
                        if !v.is_nan() {
                            sum[codes[i] as usize] += v;
                            count[codes[i] as usize] += 1;
                        }
                    }
                    let mean: Vec<f64> = sum
                        .iter()
                        .zip(&count)
                        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                        .collect();
                    let mut var = vec![0.0f64; n_classes];
                    for (i, &v) in values.iter().enumerate() {
                        if !v.is_nan() {
                            let c = codes[i] as usize;
                            let d = v - mean[c];
                            var[c] += d * d;
                        }
                    }
                    // Variance floor keeps the pdf finite for constant
                    // attributes; scaled to the attribute's magnitude.
                    let floor = 1e-9
                        * values
                            .iter()
                            .filter(|v| !v.is_nan())
                            .fold(1.0f64, |a, &b| a.max(b.abs()));
                    for (v, &c) in var.iter_mut().zip(&count) {
                        *v = if c > 1 { *v / c as f64 } else { 0.0 };
                        if *v < floor {
                            *v = floor;
                        }
                    }
                    attrs.push(AttrModel::Gaussian { mean, var });
                }
                Column::Categorical {
                    codes: cat_codes,
                    dict,
                } => {
                    let n_cats = dict.len();
                    let mut counts = vec![vec![0usize; n_cats]; n_classes];
                    let mut totals = vec![0usize; n_classes];
                    for (i, &cc) in cat_codes.iter().enumerate() {
                        if cc != MISSING_CODE {
                            counts[codes[i] as usize][cc as usize] += 1;
                            totals[codes[i] as usize] += 1;
                        }
                    }
                    let log_prob: Vec<Vec<f64>> = counts
                        .iter()
                        .zip(&totals)
                        .map(|(per_cat, &total)| {
                            per_cat
                                .iter()
                                .map(|&c| {
                                    ((c as f64 + self.laplace)
                                        / (total as f64 + self.laplace * n_cats as f64))
                                        .ln()
                                })
                                .collect()
                        })
                        .collect();
                    attrs.push(AttrModel::Categorical { log_prob });
                }
            }
        }
        Ok(NaiveBayesModel {
            class_log_prior,
            attrs,
            n_classes,
        })
    }
}

/// A trained naive-Bayes model.
#[derive(Debug, Clone)]
pub struct NaiveBayesModel {
    class_log_prior: Vec<f64>,
    attrs: Vec<AttrModel>,
    n_classes: usize,
}

impl NaiveBayesModel {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class log posterior (unnormalized) for row `i`.
    pub fn log_posterior(&self, data: &Dataset, i: usize) -> Vec<f64> {
        let mut scores = self.class_log_prior.clone();
        for (j, attr) in self.attrs.iter().enumerate() {
            match (attr, data.value(i, j)) {
                (AttrModel::Gaussian { mean, var }, dm_dataset::Value::Num(x)) => {
                    for (c, s) in scores.iter_mut().enumerate() {
                        let v = var[c];
                        let d = x - mean[c];
                        *s += -0.5 * ((std::f64::consts::TAU * v).ln() + d * d / v);
                    }
                }
                (AttrModel::Categorical { log_prob }, dm_dataset::Value::Cat(cc)) => {
                    let cc = cc as usize;
                    if cc < log_prob[0].len() {
                        for (c, s) in scores.iter_mut().enumerate() {
                            *s += log_prob[c][cc];
                        }
                    } // unseen category: no evidence, skip
                }
                // Missing cells (or kind mismatches) contribute nothing.
                _ => {}
            }
        }
        scores
    }

    /// Predicts row `i` (argmax posterior; ties go to the smaller code).
    pub fn predict_row(&self, data: &Dataset, i: usize) -> u32 {
        self.log_posterior(data, i)
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
            .map(|(c, _)| c as u32)
            .unwrap_or(0)
    }

    /// Predicts every row of `data`.
    pub fn predict(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::Column;
    use dm_synth::{AgrawalFunction, AgrawalGenerator};

    fn weather() -> (Dataset, Labels) {
        // Quinlan's play-tennis table (categorical only).
        let outlook = [
            "sunny", "sunny", "overcast", "rain", "rain", "rain", "overcast", "sunny", "sunny",
            "rain", "sunny", "overcast", "overcast", "rain",
        ];
        let humidity = [
            "high", "high", "high", "high", "normal", "normal", "normal", "high", "normal",
            "normal", "normal", "high", "normal", "high",
        ];
        let windy = [
            "f", "t", "f", "f", "f", "t", "t", "f", "f", "f", "t", "t", "f", "t",
        ];
        let play = [
            "no", "no", "yes", "yes", "yes", "no", "yes", "no", "yes", "yes", "yes", "yes", "yes",
            "no",
        ];
        let ds = Dataset::from_columns(
            "weather",
            vec![
                ("outlook".into(), Column::from_strings(outlook)),
                ("humidity".into(), Column::from_strings(humidity)),
                ("windy".into(), Column::from_strings(windy)),
            ],
        )
        .unwrap();
        (ds, Labels::from_strs(play))
    }

    #[test]
    fn fits_the_tennis_table() {
        let (data, labels) = weather();
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        let acc = model
            .predict(&data)
            .iter()
            .zip(labels.codes())
            .filter(|(p, t)| p == t)
            .count();
        assert!(acc >= 12, "training accuracy {acc}/14");
    }

    #[test]
    fn gaussian_separates_numeric_classes() {
        let data = Dataset::from_columns(
            "g",
            vec![(
                "x".into(),
                Column::from_numeric(vec![1.0, 1.2, 0.8, 10.0, 10.3, 9.7]),
            )],
        )
        .unwrap();
        let labels = Labels::from_strs(["a", "a", "a", "b", "b", "b"]);
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        assert_eq!(model.predict(&data), labels.codes());
        // Posterior ordering flips across the midpoint.
        let test = Dataset::from_columns(
            "t",
            vec![("x".into(), Column::from_numeric(vec![2.0, 8.0]))],
        )
        .unwrap();
        assert_eq!(model.predict(&test), vec![0, 1]);
    }

    #[test]
    fn laplace_smoothing_prevents_zero_probability() {
        let (data, labels) = weather();
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        // "overcast" never appears with play=no; posterior must stay
        // finite for the no class.
        let test = Dataset::from_columns(
            "t",
            vec![
                ("outlook".into(), Column::from_strings(["overcast"])),
                ("humidity".into(), Column::from_strings(["high"])),
                ("windy".into(), Column::from_strings(["t"])),
            ],
        )
        .unwrap();
        let scores = model.log_posterior(&test, 0);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn missing_values_are_skipped() {
        let data = Dataset::from_columns(
            "m",
            vec![
                (
                    "x".into(),
                    Column::from_numeric(vec![1.0, f64::NAN, 9.0, 10.0]),
                ),
                (
                    "c".into(),
                    Column::from_strings_opt([Some("p"), Some("p"), None, Some("q")]),
                ),
            ],
        )
        .unwrap();
        let labels = Labels::from_strs(["a", "a", "b", "b"]);
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        let p = model.predict(&data);
        assert_eq!(p.len(), 4);
        // All-missing row predicts by prior (tied -> class 0).
        let test = Dataset::from_columns(
            "m",
            vec![
                ("x".into(), Column::from_numeric(vec![f64::NAN])),
                ("c".into(), Column::from_strings_opt([None::<&str>])),
            ],
        )
        .unwrap();
        assert_eq!(model.predict(&test)[0], 0);
    }

    #[test]
    fn constant_attribute_does_not_blow_up() {
        let data = Dataset::from_columns(
            "c",
            vec![
                ("k".into(), Column::from_numeric(vec![5.0, 5.0, 5.0, 5.0])),
                ("x".into(), Column::from_numeric(vec![0.0, 0.1, 9.9, 10.0])),
            ],
        )
        .unwrap();
        let labels = Labels::from_strs(["a", "a", "b", "b"]);
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        assert_eq!(model.predict(&data), labels.codes());
    }

    #[test]
    fn decent_on_linear_agrawal_functions() {
        // F7 is a linear threshold on income: a natural fit for NB's
        // Gaussian likelihoods.
        let (train, train_l) = AgrawalGenerator::new(AgrawalFunction::F7, 1200)
            .unwrap()
            .generate(1);
        let (test, test_l) = AgrawalGenerator::new(AgrawalFunction::F7, 600)
            .unwrap()
            .generate(2);
        let model = NaiveBayes::new().fit(&train, &train_l).unwrap();
        let acc = model
            .predict(&test)
            .iter()
            .zip(test_l.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 600.0;
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn validates_inputs() {
        let (data, _) = weather();
        let short = Labels::from_strs(["x"]);
        assert!(NaiveBayes::new().fit(&data, &short).is_err());
        let (data, labels) = weather();
        assert!(NaiveBayes::new()
            .with_laplace(0.0)
            .fit(&data, &labels)
            .is_err());
    }

    #[test]
    fn deterministic() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F3, 300)
            .unwrap()
            .generate(8);
        let a = NaiveBayes::new().fit(&data, &labels).unwrap();
        let b = NaiveBayes::new().fit(&data, &labels).unwrap();
        assert_eq!(a.predict(&data), b.predict(&data));
    }
}
