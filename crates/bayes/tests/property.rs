//! Property tests for naive Bayes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_bayes::NaiveBayes;
use dm_dataset::{Column, Dataset, Labels};
use proptest::prelude::*;

fn labelled_data() -> impl Strategy<Value = (Dataset, Labels)> {
    (2usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::option::of(-100.0f64..100.0), n..=n),
            prop::collection::vec(prop::option::of(0u8..4), n..=n),
            prop::collection::vec(0u8..3, n..=n),
        )
            .prop_map(|(nums, cats, labels)| {
                let ds = Dataset::from_columns(
                    "prop",
                    vec![
                        ("x".into(), Column::from_numeric_opt(nums)),
                        (
                            "c".into(),
                            Column::from_strings_opt(
                                cats.into_iter()
                                    .map(|c| c.map(|c| format!("v{c}")))
                                    .collect::<Vec<_>>(),
                            ),
                        ),
                    ],
                )
                .expect("consistent schema");
                let labels =
                    Labels::from_strs(labels.iter().map(|l| format!("l{l}")).collect::<Vec<_>>());
                (ds, labels)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn posteriors_are_finite_and_predictions_valid((data, labels) in labelled_data()) {
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        for i in 0..data.n_rows() {
            let scores = model.log_posterior(&data, i);
            prop_assert_eq!(scores.len(), labels.n_classes());
            prop_assert!(scores.iter().all(|s| s.is_finite()), "{:?}", scores);
            let p = model.predict_row(&data, i);
            prop_assert!((p as usize) < labels.n_classes());
        }
    }

    #[test]
    fn prediction_is_argmax_of_posterior((data, labels) in labelled_data()) {
        let model = NaiveBayes::new().fit(&data, &labels).unwrap();
        for i in 0..data.n_rows() {
            let scores = model.log_posterior(&data, i);
            let p = model.predict_row(&data, i) as usize;
            prop_assert!(scores.iter().all(|&s| s <= scores[p] + 1e-12));
        }
    }

    #[test]
    fn laplace_strength_changes_smoothing_not_validity(
        (data, labels) in labelled_data(),
        laplace in 0.01f64..10.0,
    ) {
        let model = NaiveBayes::new().with_laplace(laplace).fit(&data, &labels).unwrap();
        let pred = model.predict(&data);
        prop_assert_eq!(pred.len(), data.n_rows());
    }

    #[test]
    fn deterministic((data, labels) in labelled_data()) {
        let a = NaiveBayes::new().fit(&data, &labels).unwrap();
        let b = NaiveBayes::new().fit(&data, &labels).unwrap();
        prop_assert_eq!(a.predict(&data), b.predict(&data));
    }
}
