//! CLARA: clustering large applications (Kaufman & Rousseeuw 1990).
//!
//! CLARA scales PAM to large databases by sampling: it draws several
//! random samples, runs PAM on each, and keeps the medoid set whose
//! *whole-database* cost is lowest. The quality/time trade-off against
//! exhaustive PAM and randomized CLARANS is part of experiment E7's
//! story (the VLDB'94 CLARANS paper positions itself exactly between
//! these two).

use crate::{Clusterer, Clustering, Pam};
use dm_dataset::matrix::euclidean;
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sampling-based k-medoids clusterer.
#[derive(Debug, Clone)]
pub struct Clara {
    k: usize,
    n_samples: usize,
    sample_size: Option<usize>,
    seed: u64,
}

impl Clara {
    /// Creates a CLARA clusterer with the book's defaults: 5 samples of
    /// size `40 + 2k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            n_samples: 5,
            sample_size: None,
            seed: 0,
        }
    }

    /// Number of samples drawn.
    pub fn with_n_samples(mut self, n_samples: usize) -> Self {
        self.n_samples = n_samples;
        self
    }

    /// Overrides the per-sample size.
    pub fn with_sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = Some(sample_size);
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs CLARA, returning `(clustering, medoid rows, total cost)`.
    pub fn fit_medoids(&self, data: &Matrix) -> Result<(Clustering, Vec<usize>, f64), DataError> {
        let out = self.fit_medoids_governed(data, &Guard::unlimited())?;
        Ok(out.result)
    }

    /// Runs CLARA under a resource [`Guard`].
    ///
    /// The guard is shared with the inner PAM solves; each whole-database
    /// scoring pass charges `n` work units. On a trip CLARA keeps the
    /// best (lowest whole-database cost) medoid set found so far; if the
    /// guard trips before any sample finishes, the first `k` rows serve
    /// as fallback medoids so the clustering remains structurally valid.
    pub fn fit_medoids_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<(Clustering, Vec<usize>, f64)>, DataError> {
        let n = data.rows();
        if self.k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {n} points",
                self.k
            )));
        }
        if self.n_samples == 0 {
            return Err(DataError::InvalidParameter("n_samples must be >= 1".into()));
        }
        let sample_size = self.sample_size.unwrap_or(40 + 2 * self.k).clamp(self.k, n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut samples_scored = 0u64;

        for _ in 0..self.n_samples {
            if guard.should_stop() {
                break;
            }
            // Draw a sample (without replacement) and solve it with PAM.
            let mut pool: Vec<usize> = (0..n).collect();
            pool.shuffle(&mut rng);
            let sample: Vec<usize> = pool[..sample_size].to_vec();
            let sub = data.select_rows(&sample);
            let pam_out = Pam::new(self.k).fit_medoids_governed(&sub, guard)?;
            let (_, sub_medoids) = pam_out.result;
            // Map sample-local medoids back to database rows.
            let medoids: Vec<usize> = sub_medoids.iter().map(|&m| sample[m]).collect();
            if guard.try_work(n as u64).is_err() {
                break;
            }
            // Score on the WHOLE database — the step that makes CLARA
            // honest about sample quality.
            let cost: f64 = (0..n)
                .map(|i| {
                    medoids
                        .iter()
                        .map(|&m| euclidean(data.row(i), data.row(m)))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum();
            samples_scored += 1;
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((medoids, cost));
            }
        }

        // Degraded run: if the guard tripped before any sample was
        // scored, fall back to the first k rows as medoids.
        let (medoids, cost) = match best {
            Some(b) => b,
            None => {
                let medoids: Vec<usize> = (0..self.k).collect();
                let cost: f64 = (0..n)
                    .map(|i| {
                        medoids
                            .iter()
                            .map(|&m| euclidean(data.row(i), data.row(m)))
                            .fold(f64::INFINITY, f64::min)
                    })
                    .sum();
                (medoids, cost)
            }
        };
        let assignments: Vec<u32> = (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        euclidean(data.row(i), data.row(a))
                            .total_cmp(&euclidean(data.row(i), data.row(b)))
                    })
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect();
        let mut centroids = Matrix::zeros(self.k, data.cols());
        for (c, &m) in medoids.iter().enumerate() {
            centroids.row_mut(c).copy_from_slice(data.row(m));
        }
        let obs = guard.obs();
        if obs.enabled() {
            obs.counter("cluster.clara.iterations", samples_scored);
            obs.gauge("cluster.clara.cost", cost);
        }
        Ok(guard.outcome((
            Clustering {
                assignments,
                n_clusters: self.k,
                centroids: Some(centroids),
            },
            medoids,
            cost,
        )))
    }
}

impl Clusterer for Clara {
    fn name(&self) -> &'static str {
        "clara"
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        Ok(self.fit_medoids_governed(data, guard)?.map(|(c, _, _)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::GaussianMixture;
    use std::time::Instant;

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = GaussianMixture::well_separated(3, 2, 150, 8.0)
            .unwrap()
            .generate(3);
        let c = Clara::new(3).with_seed(1).fit(&data).unwrap();
        let ari = dm_eval::adjusted_rand_index(&truth, &c.assignments).unwrap();
        assert!(ari > 0.95, "ari {ari}");
    }

    #[test]
    fn much_faster_than_pam_on_larger_data() {
        let (data, _) = GaussianMixture::well_separated(4, 2, 200, 8.0)
            .unwrap()
            .generate(5);
        let t0 = Instant::now();
        Pam::new(4).fit(&data).unwrap();
        let pam_time = t0.elapsed();
        let t0 = Instant::now();
        Clara::new(4).with_seed(2).fit(&data).unwrap();
        let clara_time = t0.elapsed();
        assert!(
            clara_time < pam_time / 2,
            "clara {clara_time:?} vs pam {pam_time:?}"
        );
    }

    #[test]
    fn cost_reasonably_close_to_pam() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
            .unwrap()
            .generate(7);
        let (_, pam_medoids) = Pam::new(3).fit_medoids(&data).unwrap();
        let pam_cost: f64 = (0..data.rows())
            .map(|i| {
                pam_medoids
                    .iter()
                    .map(|&m| euclidean(data.row(i), data.row(m)))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        let (_, _, clara_cost) = Clara::new(3).with_seed(4).fit_medoids(&data).unwrap();
        assert!(
            clara_cost <= pam_cost * 1.15,
            "clara {clara_cost} vs pam {pam_cost}"
        );
    }

    #[test]
    fn sample_size_clamped_and_validated() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![9.0]]).unwrap();
        // sample_size default (40+2k) exceeds n: clamps to n.
        let c = Clara::new(2).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 2);
        assert!(Clara::new(0).fit(&data).is_err());
        assert!(Clara::new(4).fit(&data).is_err());
        assert!(Clara::new(1).with_n_samples(0).fit(&data).is_err());
    }

    #[test]
    fn deterministic() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 80, 8.0)
            .unwrap()
            .generate(9);
        let a = Clara::new(3).with_seed(11).fit(&data).unwrap();
        let b = Clara::new(3).with_seed(11).fit(&data).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
