//! DBSCAN: density-based spatial clustering of applications with noise
//! (Ester, Kriegel, Sander & Xu, KDD 1996).

use crate::{Clusterer, Clustering, NOISE, POLL_STRIDE};
use dm_dataset::matrix::euclidean_sq;
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};

/// Density-based clusterer: clusters are maximal sets of density-
/// connected points; low-density points become [`NOISE`].
///
/// A point is a *core point* when at least `min_pts` points (including
/// itself) lie within `eps`. Region queries are brute force O(n), giving
/// O(n²) total — adequate at this repository's benchmark sizes and free
/// of spatial-index edge cases.
#[derive(Debug, Clone)]
pub struct Dbscan {
    eps: f64,
    min_pts: usize,
}

impl Dbscan {
    /// Creates a DBSCAN clusterer.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Self { eps, min_pts }
    }
}

impl Clusterer for Dbscan {
    fn name(&self) -> &'static str {
        "dbscan"
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        if self.eps <= 0.0 {
            return Err(DataError::InvalidParameter("eps must be positive".into()));
        }
        if self.min_pts == 0 {
            return Err(DataError::InvalidParameter("min_pts must be >= 1".into()));
        }
        let n = data.rows();
        let eps_sq = self.eps * self.eps;
        let neighbors = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| euclidean_sq(data.row(i), data.row(j)) <= eps_sq)
                .collect()
        };

        const UNVISITED: u32 = u32::MAX - 1;
        let mut labels = vec![UNVISITED; n];
        let mut cluster = 0u32;
        let mut region_queries = 0u64;
        // Each region query is a full scan, so it is the work unit. On a
        // trip the sweep stops; points never reached stay UNVISITED and
        // are mapped to NOISE below — a valid (conservatively sparse)
        // density clustering of the prefix actually explored.
        'sweep: for i in 0..n {
            if labels[i] != UNVISITED {
                continue;
            }
            if guard.try_work(1).is_err() {
                break;
            }
            region_queries += 1;
            let seed_neighbors = neighbors(i);
            if seed_neighbors.len() < self.min_pts {
                labels[i] = NOISE;
                continue;
            }
            // Expand a new cluster from core point i (BFS).
            labels[i] = cluster;
            let mut queue: Vec<usize> = seed_neighbors;
            let mut qi = 0usize;
            while qi < queue.len() {
                let j = queue[qi];
                qi += 1;
                if qi.is_multiple_of(POLL_STRIDE) && guard.should_stop() {
                    cluster += 1;
                    break 'sweep;
                }
                if labels[j] == NOISE {
                    labels[j] = cluster; // border point adopted
                }
                if labels[j] != UNVISITED {
                    continue;
                }
                if guard.try_work(1).is_err() {
                    labels[j] = cluster;
                    cluster += 1;
                    break 'sweep;
                }
                labels[j] = cluster;
                region_queries += 1;
                let j_neighbors = neighbors(j);
                if j_neighbors.len() >= self.min_pts {
                    queue.extend(j_neighbors);
                }
            }
            cluster += 1;
        }
        if guard.status().is_complete() {
            debug_assert!(labels.iter().all(|&l| l != UNVISITED));
        }
        for l in &mut labels {
            if *l == UNVISITED {
                *l = NOISE;
            }
        }
        let obs = guard.obs();
        if obs.enabled() {
            obs.counter("cluster.dbscan.region_queries", region_queries);
            obs.counter("cluster.dbscan.clusters", cluster as u64);
            obs.counter(
                "cluster.dbscan.noise_points",
                labels.iter().filter(|&&l| l == NOISE).count() as u64,
            );
        }
        Ok(guard.outcome(Clustering {
            assignments: labels,
            n_clusters: cluster as usize,
            centroids: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{ClusterSpec, GaussianMixture};

    #[test]
    fn separates_dense_blobs_and_flags_noise() {
        let (data, truth) = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.3, 80),
            ClusterSpec::new(vec![10.0, 10.0], 0.3, 80),
        ])
        .unwrap()
        .with_noise(10, 30.0)
        .generate(11);
        let c = Dbscan::new(1.0, 5).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 2);
        // The blob points agree with the ground truth (noise excluded).
        let mut correct = 0;
        let mut blob_points = 0;
        for (i, &t) in truth.iter().enumerate() {
            if t < 2 {
                blob_points += 1;
                if c.assignments[i] != NOISE {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / blob_points as f64 > 0.98);
        // Far-flung uniform noise is mostly labelled NOISE.
        let noise_flagged = truth
            .iter()
            .enumerate()
            .filter(|&(i, &t)| t == 2 && c.assignments[i] == NOISE)
            .count();
        assert!(noise_flagged >= 7, "only {noise_flagged}/10 noise flagged");
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]).unwrap();
        let c = Dbscan::new(0.1, 2).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.n_noise(), 3);
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]).unwrap();
        let c = Dbscan::new(100.0, 2).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.n_noise(), 0);
    }

    #[test]
    fn follows_chains_like_single_linkage() {
        // A dense chain is one cluster even though its ends are far apart.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let c = Dbscan::new(0.6, 2).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn border_points_join_a_cluster() {
        // Points: dense core at 0..4 (spacing 0.4), border at 2.0.
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![0.4],
            vec![0.8],
            vec![1.2],
            vec![2.0], // within eps of 1.2 but has only 2 neighbours
        ])
        .unwrap();
        let c = Dbscan::new(0.9, 3).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.assignments[4], c.assignments[0]);
    }

    #[test]
    fn invalid_params() {
        let data = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(Dbscan::new(0.0, 3).fit(&data).is_err());
        assert!(Dbscan::new(-1.0, 3).fit(&data).is_err());
        assert!(Dbscan::new(1.0, 0).fit(&data).is_err());
    }

    #[test]
    fn empty_input() {
        let data = Matrix::from_rows(&[]).unwrap();
        let c = Dbscan::new(1.0, 2).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignments.is_empty());
    }

    #[test]
    fn deterministic() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
            .unwrap()
            .generate(3);
        let a = Dbscan::new(1.5, 4).fit(&data).unwrap();
        let b = Dbscan::new(1.5, 4).fit(&data).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
