//! Lloyd's k-means with pluggable initialization.

// Numeric kernels below co-index several parallel arrays; indexed loops
// are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]
use crate::{Clusterer, Clustering};
use dm_dataset::matrix::euclidean_sq;
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};
use dm_par::{
    par_chunks_for_each_mut, par_chunks_map_reduce, par_range_map_reduce, Chunking, Parallelism,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Rows per parallel chunk. Fixed (thread-count-independent) boundaries
/// keep every floating-point reduction bit-identical across
/// [`Parallelism`] settings; see `dm_par`'s module docs.
const ROW_CHUNK: usize = 1024;

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Forgy: k distinct random data points become the initial centroids.
    Random,
    /// k-means++ (Arthur & Vassilvitskii 2007): points are chosen with
    /// probability proportional to their squared distance from the
    /// nearest centroid chosen so far.
    KMeansPlusPlus,
}

/// Lloyd's algorithm: alternate nearest-centroid assignment and centroid
/// recomputation until assignments stabilize (or `max_iter`).
///
/// Empty clusters are re-seeded with the point farthest from its
/// centroid, so the model always has exactly `k` non-empty clusters when
/// `n >= k`.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    init: Init,
    seed: u64,
    parallelism: Parallelism,
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Final centroids, one row per cluster.
    pub centroids: Matrix,
    /// Per-point cluster assignments.
    pub assignments: Vec<u32>,
    /// Within-cluster sum of squared distances at convergence.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether assignments stabilized before `max_iter`.
    pub converged: bool,
}

impl KMeansModel {
    /// Rebuilds a predict-only model from saved centroids (artifact
    /// reload). Training-run fields are zeroed: no assignments, zero
    /// inertia/iterations, `converged` true.
    pub fn from_centroids(centroids: Matrix) -> Result<Self, DataError> {
        if centroids.rows() == 0 {
            return Err(DataError::Empty("centroids"));
        }
        Ok(Self {
            centroids,
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
            converged: true,
        })
    }

    /// Squared Euclidean distance from each row of `data` to its nearest
    /// centroid — the anomaly/affinity score `dm-serve` exposes.
    pub fn score(&self, data: &Matrix) -> Result<Vec<f64>, DataError> {
        if data.cols() != self.centroids.cols() {
            return Err(DataError::InvalidParameter(format!(
                "model fitted on {} dims, got {}",
                self.centroids.cols(),
                data.cols()
            )));
        }
        Ok((0..data.rows())
            .map(|i| nearest(self.centroids.iter_rows(), data.row(i)).1)
            .collect())
    }

    /// Assigns new points to the nearest learned centroid.
    pub fn predict(&self, data: &Matrix) -> Result<Vec<u32>, DataError> {
        if data.cols() != self.centroids.cols() {
            return Err(DataError::InvalidParameter(format!(
                "model fitted on {} dims, got {}",
                self.centroids.cols(),
                data.cols()
            )));
        }
        Ok((0..data.rows())
            .map(|i| nearest(self.centroids.iter_rows(), data.row(i)).0 as u32)
            .collect())
    }
}

/// Index and squared distance of the nearest centroid.
fn nearest<'a>(centroids: impl Iterator<Item = &'a [f64]>, point: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.enumerate() {
        let d = euclidean_sq(c, point);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

impl KMeans {
    /// Creates a k-means clusterer with k-means++ init, 100 iterations.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            init: Init::KMeansPlusPlus,
            seed: 0,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Sets how the assignment and seeding passes are spread across
    /// threads. Chunk boundaries are fixed (never thread-dependent), so
    /// assignments, centroids, and inertia are bit-identical for every
    /// [`Parallelism`] setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the initialization strategy.
    pub fn with_init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the RNG seed used for initialization.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn init_centroids(&self, data: &Matrix, rng: &mut StdRng) -> Matrix {
        let n = data.rows();
        let d = data.cols();
        let mut centroids = Matrix::zeros(self.k, d);
        match self.init {
            Init::Random => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(rng);
                for (c, &i) in idx.iter().take(self.k).enumerate() {
                    centroids.row_mut(c).copy_from_slice(data.row(i));
                }
            }
            Init::KMeansPlusPlus => {
                let par = self.parallelism;
                let first = rng.gen_range(0..n);
                centroids.row_mut(0).copy_from_slice(data.row(first));
                // dist2[i] = squared distance to the nearest chosen centroid.
                let mut dist2: Vec<f64> = vec![0.0; n];
                par_chunks_for_each_mut(
                    par,
                    Chunking::Fixed(ROW_CHUNK),
                    &mut dist2,
                    |start, chunk| {
                        for (j, d) in chunk.iter_mut().enumerate() {
                            *d = euclidean_sq(data.row(start + j), data.row(first));
                        }
                    },
                );
                for c in 1..self.k {
                    // Fixed chunks: the chunked sum is the same f64 for
                    // every Parallelism setting.
                    let total: f64 = par_chunks_map_reduce(
                        par,
                        Chunking::Fixed(ROW_CHUNK),
                        &dist2,
                        || 0.0f64,
                        |chunk| chunk.iter().sum::<f64>(),
                        |a, b| a + b,
                    );
                    let chosen = if total <= 0.0 {
                        // All points coincide with chosen centroids.
                        rng.gen_range(0..n)
                    } else {
                        let mut x = rng.gen::<f64>() * total;
                        let mut pick = n - 1;
                        for (i, &d) in dist2.iter().enumerate() {
                            x -= d;
                            if x <= 0.0 {
                                pick = i;
                                break;
                            }
                        }
                        pick
                    };
                    centroids.row_mut(c).copy_from_slice(data.row(chosen));
                    par_chunks_for_each_mut(
                        par,
                        Chunking::Fixed(ROW_CHUNK),
                        &mut dist2,
                        |start, chunk| {
                            for (j, slot) in chunk.iter_mut().enumerate() {
                                let d = euclidean_sq(data.row(start + j), data.row(chosen));
                                if d < *slot {
                                    *slot = d;
                                }
                            }
                        },
                    );
                }
            }
        }
        centroids
    }

    /// Runs Lloyd's algorithm, returning the full model.
    pub fn fit_model(&self, data: &Matrix) -> Result<KMeansModel, DataError> {
        Ok(self.fit_model_governed(data, &Guard::unlimited())?.result)
    }

    /// Runs Lloyd's algorithm under a resource [`Guard`].
    ///
    /// The guard is consulted once per Lloyd iteration (charging `n`
    /// work units and one guard iteration per pass). On a trip the loop
    /// stops where it is; the final labeling and inertia passes still
    /// run so the returned model always satisfies the nearest-centroid
    /// invariant for its centroids.
    pub fn fit_model_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<KMeansModel>, DataError> {
        let n = data.rows();
        let d = data.cols();
        if self.k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {n} points",
                self.k
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids = self.init_centroids(data, &mut rng);
        let mut assignments = vec![u32::MAX; n];
        let mut iterations = 0usize;
        let mut converged = false;

        // One fused pass per iteration: each shard assigns its rows to
        // the nearest centroid and accumulates partial centroid sums and
        // counts; shards merge in fixed chunk order, so assignments,
        // sums, and counts are bit-identical for every Parallelism
        // setting.
        struct AssignPass {
            assign: Vec<u32>,
            /// Points whose assignment differs from the previous pass
            /// (0 ⇒ converged; also the `cluster.kmeans.iter.churn` metric).
            churn: usize,
            /// Sum of squared distances to the assigning centroid (the
            /// `cluster.kmeans.iter.inertia` metric; telemetry only —
            /// never read back by the algorithm).
            inertia: f64,
            sums: Vec<f64>, // k x d, row-major
            counts: Vec<usize>,
        }
        let k = self.k;
        let obs = guard.obs();
        while iterations < self.max_iter {
            if guard.next_iteration().is_err() || guard.try_work(n as u64).is_err() {
                break;
            }
            iterations += 1;
            // One span *name* across iterations: the histogram then holds
            // the per-iteration duration distribution (p50/p99), while
            // the tree keeps each iteration as its own node.
            let _iter_span = obs.span("cluster.kmeans.iter");
            let old = &assignments;
            let centroids_ref = &centroids;
            let pass = par_range_map_reduce(
                self.parallelism,
                Chunking::Fixed(ROW_CHUNK),
                n,
                || AssignPass {
                    assign: Vec::new(),
                    churn: 0,
                    inertia: 0.0,
                    sums: vec![0.0; k * d],
                    counts: vec![0usize; k],
                },
                |range| {
                    let mut shard = AssignPass {
                        assign: Vec::with_capacity(range.len()),
                        churn: 0,
                        inertia: 0.0,
                        sums: vec![0.0; k * d],
                        counts: vec![0usize; k],
                    };
                    for i in range {
                        let (c, dist) = nearest(centroids_ref.iter_rows(), data.row(i));
                        shard.churn += usize::from(old[i] != c as u32);
                        shard.inertia += dist;
                        shard.assign.push(c as u32);
                        shard.counts[c] += 1;
                        for (s, &x) in shard.sums[c * d..(c + 1) * d].iter_mut().zip(data.row(i)) {
                            *s += x;
                        }
                    }
                    shard
                },
                |mut a, mut b| {
                    a.assign.append(&mut b.assign);
                    a.churn += b.churn;
                    a.inertia += b.inertia;
                    for (s, x) in a.sums.iter_mut().zip(b.sums) {
                        *s += x;
                    }
                    for (s, x) in a.counts.iter_mut().zip(b.counts) {
                        *s += x;
                    }
                    a
                },
            );
            if obs.enabled() {
                // Inertia is measured against the centroids that did the
                // assigning (the standard per-iteration Lloyd objective);
                // churn accumulates total reassignments across the run.
                obs.gauge("cluster.kmeans.iter.inertia", pass.inertia);
                obs.counter("cluster.kmeans.iter.churn", pass.churn as u64);
            }
            if pass.churn == 0 {
                converged = true;
                iterations -= 1; // final pass did no work
                break;
            }
            assignments = pass.assign;
            let mut sums = pass.sums;
            let counts = pass.counts;
            for c in 0..self.k {
                if counts[c] > 0 {
                    let row = &mut sums[c * d..(c + 1) * d];
                    for s in row.iter_mut() {
                        *s /= counts[c] as f64;
                    }
                    centroids.row_mut(c).copy_from_slice(row);
                } else {
                    // Re-seed an empty cluster with the point farthest
                    // from its current centroid.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da =
                                euclidean_sq(data.row(a), centroids.row(assignments[a] as usize));
                            let db =
                                euclidean_sq(data.row(b), centroids.row(assignments[b] as usize));
                            da.total_cmp(&db)
                        })
                        .unwrap_or(0);
                    centroids.row_mut(c).copy_from_slice(data.row(far));
                }
            }
        }

        if !converged {
            // The loop ended on max_iter right after a centroid update:
            // refresh assignments so the nearest-centroid invariant holds
            // for the returned model.
            let centroids_ref = &centroids;
            par_chunks_for_each_mut(
                self.parallelism,
                Chunking::Fixed(ROW_CHUNK),
                &mut assignments,
                |start, chunk| {
                    for (j, a) in chunk.iter_mut().enumerate() {
                        *a = nearest(centroids_ref.iter_rows(), data.row(start + j)).0 as u32;
                    }
                },
            );
        }
        let assignments_ref = &assignments;
        let centroids_ref = &centroids;
        let inertia = par_range_map_reduce(
            self.parallelism,
            Chunking::Fixed(ROW_CHUNK),
            n,
            || 0.0f64,
            |range| {
                range
                    .map(|i| {
                        euclidean_sq(data.row(i), centroids_ref.row(assignments_ref[i] as usize))
                    })
                    .sum::<f64>()
            },
            |a, b| a + b,
        );
        if obs.enabled() {
            obs.counter("cluster.kmeans.iterations", iterations as u64);
            obs.gauge("cluster.kmeans.inertia", inertia);
        }
        Ok(guard.outcome(KMeansModel {
            centroids,
            assignments,
            inertia,
            iterations,
            converged,
        }))
    }
}

impl Clusterer for KMeans {
    fn name(&self) -> &'static str {
        match self.init {
            Init::Random => "kmeans-random",
            Init::KMeansPlusPlus => "kmeans++",
        }
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        let out = self.fit_model_governed(data, guard)?;
        Ok(out.map(|model| Clustering {
            assignments: model.assignments,
            n_clusters: self.k,
            centroids: Some(model.centroids),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::GaussianMixture;

    fn two_blobs() -> (Matrix, Vec<u32>) {
        GaussianMixture::new(vec![
            dm_synth::ClusterSpec::new(vec![0.0, 0.0], 0.4, 60),
            dm_synth::ClusterSpec::new(vec![10.0, 10.0], 0.4, 60),
        ])
        .unwrap()
        .generate(5)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = two_blobs();
        let model = KMeans::new(2).with_seed(1).fit_model(&data).unwrap();
        assert!(model.converged);
        let ari = dm_eval::adjusted_rand_index(&truth, &model.assignments).unwrap();
        assert!(ari > 0.99, "ari {ari}");
        assert!(model.inertia < 100.0, "inertia {}", model.inertia);
    }

    #[test]
    fn every_point_assigned_to_nearest_centroid() {
        let (data, _) = two_blobs();
        let model = KMeans::new(3).with_seed(2).fit_model(&data).unwrap();
        for i in 0..data.rows() {
            let assigned = model.assignments[i] as usize;
            let da = euclidean_sq(data.row(i), model.centroids.row(assigned));
            for c in 0..3 {
                let dc = euclidean_sq(data.row(i), model.centroids.row(c));
                assert!(da <= dc + 1e-9, "point {i}: {da} > {dc}");
            }
        }
    }

    #[test]
    fn plus_plus_not_worse_than_random_on_average() {
        let (data, _) = two_blobs();
        let mut pp_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..10 {
            pp_total += KMeans::new(4)
                .with_init(Init::KMeansPlusPlus)
                .with_seed(seed)
                .fit_model(&data)
                .unwrap()
                .inertia;
            rnd_total += KMeans::new(4)
                .with_init(Init::Random)
                .with_seed(seed)
                .fit_model(&data)
                .unwrap()
                .inertia;
        }
        assert!(
            pp_total <= rnd_total * 1.2,
            "kmeans++ {pp_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn predict_matches_training_assignments() {
        let (data, _) = two_blobs();
        let model = KMeans::new(2).with_seed(3).fit_model(&data).unwrap();
        let again = model.predict(&data).unwrap();
        assert_eq!(again, model.assignments);
        let narrow = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(model.predict(&narrow).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = two_blobs();
        let a = KMeans::new(2).with_seed(7).fit_model(&data).unwrap();
        let b = KMeans::new(2).with_seed(7).fit_model(&data).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]).unwrap();
        let model = KMeans::new(3).with_seed(1).fit_model(&data).unwrap();
        assert!(model.inertia < 1e-18);
    }

    #[test]
    fn invalid_params_rejected() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(KMeans::new(0).fit_model(&data).is_err());
        assert!(KMeans::new(3).fit_model(&data).is_err());
    }

    #[test]
    fn duplicate_points_handled() {
        // All identical points: k-means++ falls back to uniform choice.
        let data = Matrix::from_rows(&vec![vec![2.0, 2.0]; 8]).unwrap();
        let model = KMeans::new(3).with_seed(0).fit_model(&data).unwrap();
        assert_eq!(model.assignments.len(), 8);
        assert!(model.inertia < 1e-18);
    }

    #[test]
    fn clusterer_trait_reports_centroids() {
        let (data, _) = two_blobs();
        let c = KMeans::new(2).with_seed(1).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 2);
        assert!(c.centroids.is_some());
        assert_eq!(c.cluster_sizes().iter().sum::<usize>(), data.rows());
    }
}
