//! PAM (Partitioning Around Medoids) k-medoids clustering.
//!
//! Kaufman & Rousseeuw's classic: a BUILD phase greedily selects `k`
//! medoids minimizing total distance, then a SWAP phase exchanges
//! medoid/non-medoid pairs while any swap lowers the total cost. Robust
//! to outliers (medoids are actual data points) at O(k·(n-k)²) per SWAP
//! iteration — the trade-off the clustering-comparison experiment
//! surfaces.

// Numeric kernels below co-index several parallel arrays; indexed loops
// are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]
use crate::{Clusterer, Clustering, POLL_STRIDE};
use dm_dataset::matrix::euclidean;
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};
use dm_obs::HeapSize;

/// k-medoids clusterer with the BUILD + SWAP procedure.
#[derive(Debug, Clone)]
pub struct Pam {
    k: usize,
    max_swaps: usize,
}

impl Pam {
    /// Creates a PAM clusterer with at most 100 SWAP iterations.
    pub fn new(k: usize) -> Self {
        Self { k, max_swaps: 100 }
    }

    /// Caps the number of SWAP iterations.
    pub fn with_max_swaps(mut self, max_swaps: usize) -> Self {
        self.max_swaps = max_swaps;
        self
    }

    /// Runs PAM and also returns the medoid row indices.
    pub fn fit_medoids(&self, data: &Matrix) -> Result<(Clustering, Vec<usize>), DataError> {
        let out = self.fit_medoids_governed(data, &Guard::unlimited())?;
        Ok(out.result)
    }

    /// Runs PAM under a resource [`Guard`].
    ///
    /// Each BUILD selection and each SWAP iteration charges `n` work
    /// units; SWAP iterations also count against the guard's iteration
    /// budget. A trip during BUILD fills the remaining medoid slots with
    /// the points farthest from the medoids chosen so far (cheap, valid,
    /// documented degradation); a trip during SWAP keeps the best
    /// medoids reached. The final assignment pass always runs.
    pub fn fit_medoids_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<(Clustering, Vec<usize>)>, DataError> {
        let n = data.rows();
        if self.k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {n} points",
                self.k
            )));
        }

        // Precompute the distance matrix (symmetric, n²; PAM is a small-n
        // algorithm by design).
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            if i.is_multiple_of(POLL_STRIDE) {
                // The matrix must be complete before anything else can
                // run, so a trip here only latches the reason; the fill
                // continues (it is the cheapest valid "partial" state).
                let _ = guard.check();
            }
            for j in (i + 1)..n {
                let d = euclidean(data.row(i), data.row(j));
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let d = |a: usize, b: usize| dist[a * n + b];
        // The n² cache *is* PAM's memory story (and through CLARA's
        // sub-samples, the reason CLARA exists) — record its footprint.
        guard
            .obs()
            .gauge_max("cluster.pam.dist_cache_mem_bytes", dist.heap_bytes() as f64);

        // ---- BUILD: greedy medoid selection. ----
        let mut medoids: Vec<usize> = Vec::with_capacity(self.k);
        // First medoid: minimizes total distance to all points.
        let first = (0..n)
            .min_by(|&a, &b| {
                let sa: f64 = (0..n).map(|j| d(a, j)).sum();
                let sb: f64 = (0..n).map(|j| d(b, j)).sum();
                sa.total_cmp(&sb)
            })
            .unwrap_or(0);
        medoids.push(first);
        // nearest[i] = distance from i to its nearest medoid.
        let mut nearest: Vec<f64> = (0..n).map(|i| d(i, first)).collect();
        while medoids.len() < self.k {
            if guard.try_work(n as u64).is_err() {
                break;
            }
            // Choose the candidate with the largest total gain.
            let mut best: Option<(usize, f64)> = None;
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let gain: f64 = (0..n).map(|j| (nearest[j] - d(cand, j)).max(0.0)).sum();
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((cand, gain));
                }
            }
            let Some((chosen, _)) = best else { break };
            medoids.push(chosen);
            for j in 0..n {
                nearest[j] = nearest[j].min(d(chosen, j));
            }
        }
        // Degraded BUILD: fill remaining slots with the points farthest
        // from the chosen medoids so the clustering still has k medoids.
        while medoids.len() < self.k {
            let far = (0..n)
                .filter(|i| !medoids.contains(i))
                .max_by(|&a, &b| nearest[a].total_cmp(&nearest[b]))
                .unwrap_or(0);
            medoids.push(far);
            for j in 0..n {
                nearest[j] = nearest[j].min(d(far, j));
            }
        }

        // ---- SWAP: steepest-descent exchanges. ----
        let total_cost = |medoids: &[usize]| -> f64 {
            (0..n)
                .map(|i| {
                    medoids
                        .iter()
                        .map(|&m| d(i, m))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum()
        };
        let mut cost = total_cost(&medoids);
        let mut swap_passes = 0u64;
        for _ in 0..self.max_swaps {
            if guard.next_iteration().is_err() || guard.try_work(n as u64).is_err() {
                break;
            }
            swap_passes += 1;
            let mut best: Option<(usize, usize, f64)> = None; // (medoid idx, candidate, new cost)
            for mi in 0..medoids.len() {
                for cand in 0..n {
                    if medoids.contains(&cand) {
                        continue;
                    }
                    let old = medoids[mi];
                    medoids[mi] = cand;
                    let c = total_cost(&medoids);
                    medoids[mi] = old;
                    if c < cost - 1e-12 && best.is_none_or(|(_, _, bc)| c < bc) {
                        best = Some((mi, cand, c));
                    }
                }
            }
            match best {
                Some((mi, cand, c)) => {
                    medoids[mi] = cand;
                    cost = c;
                }
                None => break,
            }
        }

        // Final assignment.
        let assignments: Vec<u32> = (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| d(i, a).total_cmp(&d(i, b)))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect();
        let mut centroids = Matrix::zeros(self.k, data.cols());
        for (c, &m) in medoids.iter().enumerate() {
            centroids.row_mut(c).copy_from_slice(data.row(m));
        }
        let obs = guard.obs();
        if obs.enabled() {
            obs.counter("cluster.pam.iterations", swap_passes);
            obs.gauge("cluster.pam.cost", cost);
        }
        Ok(guard.outcome((
            Clustering {
                assignments,
                n_clusters: self.k,
                centroids: Some(centroids),
            },
            medoids,
        )))
    }
}

impl Clusterer for Pam {
    fn name(&self) -> &'static str {
        "pam"
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        Ok(self.fit_medoids_governed(data, guard)?.map(|(c, _)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{ClusterSpec, GaussianMixture};

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.4, 40),
            ClusterSpec::new(vec![8.0, 8.0], 0.4, 40),
            ClusterSpec::new(vec![0.0, 8.0], 0.4, 40),
        ])
        .unwrap()
        .generate(9);
        let c = Pam::new(3).fit(&data).unwrap();
        let ari = dm_eval::adjusted_rand_index(&truth, &c.assignments).unwrap();
        assert!(ari > 0.98, "ari {ari}");
    }

    #[test]
    fn medoids_are_data_points() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
        let (c, medoids) = Pam::new(2).fit_medoids(&data).unwrap();
        assert_eq!(medoids.len(), 2);
        for (cluster, &m) in medoids.iter().enumerate() {
            assert!(m < 4);
            assert_eq!(c.assignments[m], cluster as u32);
        }
        // The two natural groups.
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[2], c.assignments[3]);
        assert_ne!(c.assignments[0], c.assignments[2]);
    }

    #[test]
    fn medoid_robust_to_an_outlier() {
        // With k=1 the medoid stays at the data mass (the 1-median is
        // point 2.0), whereas the mean would be dragged to ~18.3.
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
            vec![100.0], // outlier
        ])
        .unwrap();
        let (_, medoids) = Pam::new(1).fit_medoids(&data).unwrap();
        assert_eq!(medoids, vec![2], "medoid should sit at the data mass");
    }

    #[test]
    fn isolates_extreme_outlier_when_k_allows() {
        // With k=2, isolating the outlier minimizes total cost.
        let data = Matrix::from_rows(&[
            vec![0.0],
            vec![0.5],
            vec![1.0],
            vec![100.0],
            vec![10.0],
            vec![10.5],
        ])
        .unwrap();
        let (c, medoids) = Pam::new(2).fit_medoids(&data).unwrap();
        assert!(medoids.contains(&3), "medoids {medoids:?}");
        let outlier_cluster = c.assignments[3];
        assert_eq!(
            c.assignments
                .iter()
                .filter(|&&a| a == outlier_cluster)
                .count(),
            1
        );
    }

    #[test]
    fn invalid_params() {
        let data = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(Pam::new(0).fit(&data).is_err());
        assert!(Pam::new(2).fit(&data).is_err());
    }

    #[test]
    fn k_equals_n() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0]]).unwrap();
        let (c, medoids) = Pam::new(2).fit_medoids(&data).unwrap();
        assert_eq!(medoids.len(), 2);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }
}
