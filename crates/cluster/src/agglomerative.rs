//! Agglomerative hierarchical clustering with Lance–Williams updates.

use crate::{Clusterer, Clustering, POLL_STRIDE};
use dm_dataset::matrix::{euclidean, euclidean_sq};
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};

/// Inter-cluster distance definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance (chains).
    Single,
    /// Maximum pairwise distance (compact, diameter-bounded).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion (on squared distances).
    Ward,
}

/// One merge step of the dendrogram. Cluster ids: leaves are `0..n`,
/// the cluster created by merge `i` has id `n + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Size of the resulting cluster.
    pub size: usize,
}

/// A full merge history over `n_leaves` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of original points.
    pub n_leaves: usize,
    /// The `n_leaves - 1` merges in execution order.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cuts the dendrogram into `k` clusters: applies the first
    /// `n_leaves - k` merges and labels the resulting components `0..k`
    /// in order of their smallest member index.
    pub fn cut(&self, k: usize) -> Result<Vec<u32>, DataError> {
        let n = self.n_leaves;
        if k == 0 || k > n {
            return Err(DataError::InvalidParameter(format!(
                "cannot cut {n} leaves into {k} clusters"
            )));
        }
        // Union-find over leaves; merge node ids map to representatives.
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (i, m) in self.merges.iter().take(n - k).enumerate() {
            let node = n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        // Label components by first appearance.
        let mut label_of_root: std::collections::HashMap<usize, u32> =
            std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len() as u32;
            labels.push(*label_of_root.entry(root).or_insert(next));
        }
        Ok(labels)
    }

    /// Merge distances in execution order (useful for choosing `k`).
    pub fn heights(&self) -> Vec<f64> {
        self.merges.iter().map(|m| m.distance).collect()
    }
}

/// Bottom-up hierarchical clusterer producing `k` flat clusters (and the
/// full [`Dendrogram`] via [`Agglomerative::fit_dendrogram`]).
///
/// Runs in O(n²) memory and roughly O(n²)–O(n³) time via a
/// nearest-neighbour cache over the evolving distance matrix.
#[derive(Debug, Clone)]
pub struct Agglomerative {
    k: usize,
    linkage: Linkage,
}

impl Agglomerative {
    /// Creates a hierarchical clusterer cutting at `k` clusters, average
    /// linkage by default.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            linkage: Linkage::Average,
        }
    }

    /// Sets the linkage criterion.
    pub fn with_linkage(mut self, linkage: Linkage) -> Self {
        self.linkage = linkage;
        self
    }

    /// Builds the full dendrogram for `data`.
    pub fn fit_dendrogram(&self, data: &Matrix) -> Result<Dendrogram, DataError> {
        let out = self.fit_dendrogram_governed(data, &Guard::unlimited())?;
        Ok(out.result)
    }

    /// Builds the dendrogram under a resource [`Guard`].
    ///
    /// Each merge charges one work unit. On a trip the merge loop stops
    /// and the partial dendrogram (a prefix of the full merge history,
    /// hence still internally consistent) is returned; cutting it yields
    /// more clusters than a full run would at the same `k`.
    pub fn fit_dendrogram_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<Dendrogram>, DataError> {
        let n = data.rows();
        if n == 0 {
            return Err(DataError::Empty("matrix"));
        }
        if n == 1 {
            return Ok(guard.outcome(Dendrogram {
                n_leaves: 1,
                merges: vec![],
            }));
        }
        // Ward works on squared Euclidean distances.
        let squared = self.linkage == Linkage::Ward;
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            if i.is_multiple_of(POLL_STRIDE) {
                // The matrix must be complete before merging can start;
                // a trip here only latches the reason.
                let _ = guard.check();
            }
            for j in (i + 1)..n {
                let d = if squared {
                    euclidean_sq(data.row(i), data.row(j))
                } else {
                    euclidean(data.row(i), data.row(j))
                };
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut active: Vec<bool> = vec![true; n];
        let mut size: Vec<usize> = vec![1; n];
        // node_id[slot] = current dendrogram id of the cluster in `slot`.
        let mut node_id: Vec<usize> = (0..n).collect();
        // Nearest-neighbour cache per active slot.
        let mut nn: Vec<usize> = vec![0; n];
        let mut nn_dist: Vec<f64> = vec![f64::INFINITY; n];
        let recompute_nn =
            |slot: usize, dist: &[f64], active: &[bool], nn: &mut [usize], nn_dist: &mut [f64]| {
                let mut best = (usize::MAX, f64::INFINITY);
                for j in 0..n {
                    if j != slot && active[j] {
                        let d = dist[slot * n + j];
                        if d < best.1 {
                            best = (j, d);
                        }
                    }
                }
                nn[slot] = best.0;
                nn_dist[slot] = best.1;
            };
        for slot in 0..n {
            recompute_nn(slot, &dist, &active, &mut nn, &mut nn_dist);
        }

        let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
        for step in 0..(n - 1) {
            if guard.try_work(1).is_err() {
                break;
            }
            // Global minimum over the NN cache.
            let Some(a) = (0..n)
                .filter(|&s| active[s])
                .min_by(|&x, &y| nn_dist[x].total_cmp(&nn_dist[y]))
            else {
                break;
            };
            let b = nn[a];
            let d_ab = nn_dist[a];
            debug_assert!(active[b]);

            // Record the merge (report sqrt for Ward so heights are in
            // distance units).
            merges.push(Merge {
                a: node_id[a],
                b: node_id[b],
                distance: if squared { d_ab.sqrt() } else { d_ab },
                size: size[a] + size[b],
            });

            // Lance–Williams update into slot a; deactivate slot b.
            let (na, nb) = (size[a] as f64, size[b] as f64);
            for o in 0..n {
                if !active[o] || o == a || o == b {
                    continue;
                }
                let d_ao = dist[a * n + o];
                let d_bo = dist[b * n + o];
                let newd = match self.linkage {
                    Linkage::Single => d_ao.min(d_bo),
                    Linkage::Complete => d_ao.max(d_bo),
                    Linkage::Average => (na * d_ao + nb * d_bo) / (na + nb),
                    Linkage::Ward => {
                        let no = size[o] as f64;
                        ((na + no) * d_ao + (nb + no) * d_bo - no * d_ab) / (na + nb + no)
                    }
                };
                dist[a * n + o] = newd;
                dist[o * n + a] = newd;
            }
            active[b] = false;
            size[a] += size[b];
            node_id[a] = n + step;

            // Refresh NN caches: slot a changed; any slot whose NN was a
            // or b must rescan; others may adopt a if it got closer.
            recompute_nn(a, &dist, &active, &mut nn, &mut nn_dist);
            for s in 0..n {
                if !active[s] || s == a {
                    continue;
                }
                if nn[s] == a || nn[s] == b {
                    recompute_nn(s, &dist, &active, &mut nn, &mut nn_dist);
                } else {
                    let d = dist[s * n + a];
                    if d < nn_dist[s] {
                        nn[s] = a;
                        nn_dist[s] = d;
                    }
                }
            }
        }
        guard
            .obs()
            .counter("cluster.agglomerative.merges", merges.len() as u64);
        Ok(guard.outcome(Dendrogram {
            n_leaves: n,
            merges,
        }))
    }
}

impl Clusterer for Agglomerative {
    fn name(&self) -> &'static str {
        match self.linkage {
            Linkage::Single => "hier-single",
            Linkage::Complete => "hier-complete",
            Linkage::Average => "hier-average",
            Linkage::Ward => "hier-ward",
        }
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        if self.k == 0 || self.k > data.rows() {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {} points",
                self.k,
                data.rows()
            )));
        }
        let dendrogram = self.fit_dendrogram_governed(data, guard)?;
        // With a partial merge history, cut(k) applies every merge it has
        // and leaves more than k components — report the actual count.
        let assignments = dendrogram.result.cut(self.k)?;
        let n_clusters = assignments
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        Ok(guard.outcome(Clustering {
            assignments,
            n_clusters,
            centroids: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{ClusterSpec, GaussianMixture};

    fn line_data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![10.0],
            vec![11.0],
            vec![12.0],
        ])
        .unwrap()
    }

    #[test]
    fn two_groups_on_a_line() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let c = Agglomerative::new(2)
                .with_linkage(linkage)
                .fit(&line_data())
                .unwrap();
            assert_eq!(&c.assignments[..3], &[c.assignments[0]; 3]);
            assert_eq!(&c.assignments[3..], &[c.assignments[3]; 3]);
            assert_ne!(c.assignments[0], c.assignments[3], "{linkage:?}");
        }
    }

    #[test]
    fn dendrogram_structure() {
        let d = Agglomerative::new(1).fit_dendrogram(&line_data()).unwrap();
        assert_eq!(d.n_leaves, 6);
        assert_eq!(d.merges.len(), 5);
        // Final merge contains everything.
        assert_eq!(d.merges.last().unwrap().size, 6);
        // Cutting at 1 gives one cluster; at n gives singletons.
        assert!(d.cut(1).unwrap().iter().all(|&l| l == 0));
        let singles = d.cut(6).unwrap();
        let mut sorted = singles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(d.cut(0).is_err());
        assert!(d.cut(7).is_err());
    }

    #[test]
    fn single_linkage_heights_are_monotone() {
        let d = Agglomerative::new(1)
            .with_linkage(Linkage::Single)
            .fit_dendrogram(&line_data())
            .unwrap();
        let h = d.heights();
        // Single linkage is monotone: heights never decrease.
        assert!(h.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{h:?}");
        // First merges happen at distance 1, the bridge at distance 8.
        assert!((h[0] - 1.0).abs() < 1e-12);
        assert!((h.last().unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_gaussian_blobs() {
        let (data, truth) = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.5, 40),
            ClusterSpec::new(vec![10.0, 0.0], 0.5, 40),
            ClusterSpec::new(vec![5.0, 9.0], 0.5, 40),
        ])
        .unwrap()
        .generate(3);
        for linkage in [Linkage::Complete, Linkage::Average, Linkage::Ward] {
            let c = Agglomerative::new(3)
                .with_linkage(linkage)
                .fit(&data)
                .unwrap();
            let ari = dm_eval::adjusted_rand_index(&truth, &c.assignments).unwrap();
            assert!(ari > 0.95, "{linkage:?} ari {ari}");
        }
    }

    #[test]
    fn single_linkage_chains_where_others_do_not() {
        // A chain of points bridging two blobs: single linkage follows
        // the chain, complete linkage cuts it.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![i as f64 * 0.5, 0.0]);
        }
        for i in 0..5 {
            rows.push(vec![20.0 + i as f64 * 0.5, 0.0]);
        }
        // the bridge
        for i in 1..8 {
            rows.push(vec![2.5 + i as f64 * 2.45, 0.0]);
        }
        let data = Matrix::from_rows(&rows).unwrap();
        let single = Agglomerative::new(2)
            .with_linkage(Linkage::Single)
            .fit(&data)
            .unwrap();
        let complete = Agglomerative::new(2)
            .with_linkage(Linkage::Complete)
            .fit(&data)
            .unwrap();
        // Single linkage merges across the bridge, so one cluster holds
        // almost everything.
        let s_sizes = single.cluster_sizes();
        let c_sizes = complete.cluster_sizes();
        assert!(s_sizes.iter().max() > c_sizes.iter().max());
    }

    #[test]
    fn degenerate_inputs() {
        let one = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let d = Agglomerative::new(1).fit_dendrogram(&one).unwrap();
        assert!(d.merges.is_empty());
        assert_eq!(d.cut(1).unwrap(), vec![0]);
        let c = Agglomerative::new(1).fit(&one).unwrap();
        assert_eq!(c.assignments, vec![0]);
        assert!(Agglomerative::new(2).fit(&one).is_err());
        assert!(Agglomerative::new(0).fit(&one).is_err());
        let empty = Matrix::from_rows(&[]).unwrap();
        assert!(Agglomerative::new(1).fit_dendrogram(&empty).is_err());
    }

    #[test]
    fn duplicate_points() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 5]).unwrap();
        let c = Agglomerative::new(2).fit(&data).unwrap();
        assert_eq!(c.assignments.len(), 5);
        let d = Agglomerative::new(1).fit_dendrogram(&data).unwrap();
        assert!(d.heights().iter().all(|&h| h == 0.0));
    }
}
