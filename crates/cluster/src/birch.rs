//! BIRCH: balanced iterative reducing and clustering using hierarchies
//! (Zhang, Ramakrishnan & Livny, SIGMOD 1996).
//!
//! Phase 1 condenses the data into a height-balanced **CF-tree** whose
//! leaf entries are [`ClusteringFeature`]s — `(n, LS, SS)` summaries that
//! absorb points while their radius stays under a threshold. Phase 3
//! runs weighted k-means over the (few) leaf-entry centroids, and phase
//! 4 relabels the original points by nearest global centroid. The result
//! is k-means-quality clustering in a single data pass plus work
//! proportional to the number of leaf entries — the near-linear scaling
//! that experiment E8 reproduces against the O(n²)-plus hierarchical
//! baseline.

use crate::{Clusterer, Clustering};
use dm_dataset::matrix::euclidean_sq;
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};
use dm_obs::HeapSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A clustering feature: the sufficient statistics `(n, LS, SS)` of a
/// set of points (count, per-dimension linear sum, total squared norm).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringFeature {
    /// Number of absorbed points.
    pub n: usize,
    /// Per-dimension linear sum.
    pub ls: Vec<f64>,
    /// Sum of squared norms of the points.
    pub ss: f64,
}

impl ClusteringFeature {
    /// An empty CF of the given dimensionality.
    pub fn empty(dims: usize) -> Self {
        Self {
            n: 0,
            ls: vec![0.0; dims],
            ss: 0.0,
        }
    }

    /// A CF holding a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Self {
            n: 1,
            ls: p.to_vec(),
            ss: p.iter().map(|x| x * x).sum(),
        }
    }

    /// Absorbs a point.
    pub fn add_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.ls.len());
        self.n += 1;
        for (s, &x) in self.ls.iter_mut().zip(p) {
            *s += x;
        }
        self.ss += p.iter().map(|x| x * x).sum::<f64>();
    }

    /// Merges another CF (the additivity theorem).
    pub fn merge(&mut self, other: &ClusteringFeature) {
        debug_assert_eq!(self.ls.len(), other.ls.len());
        self.n += other.n;
        for (s, &x) in self.ls.iter_mut().zip(&other.ls) {
            *s += x;
        }
        self.ss += other.ss;
    }

    /// The centroid `LS / n`.
    pub fn centroid(&self) -> Vec<f64> {
        let n = self.n.max(1) as f64;
        self.ls.iter().map(|&s| s / n).collect()
    }

    /// The radius: RMS distance of member points from the centroid.
    ///
    /// `R² = SS/n − ‖LS/n‖²` (clamped at 0 against rounding).
    pub fn radius(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let centroid_norm_sq: f64 = self.ls.iter().map(|&s| (s / n) * (s / n)).sum();
        (self.ss / n - centroid_norm_sq).max(0.0).sqrt()
    }

    /// Squared distance between this CF's centroid and a point.
    fn centroid_dist_sq(&self, p: &[f64]) -> f64 {
        let n = self.n.max(1) as f64;
        let mut d = 0.0;
        for (&s, &x) in self.ls.iter().zip(p) {
            let diff = s / n - x;
            d += diff * diff;
        }
        d
    }
}

/// Structural statistics of a built CF-tree (exposed for tests and the
/// ablation benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfNodeStats {
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Total leaf entries (sub-clusters).
    pub leaf_entries: usize,
    /// Tree height (1 = root is a leaf).
    pub height: usize,
}

#[derive(Debug)]
enum CfNode {
    Leaf {
        entries: Vec<ClusteringFeature>,
    },
    Interior {
        entries: Vec<(ClusteringFeature, Box<CfNode>)>,
    },
}

impl HeapSize for ClusteringFeature {
    fn heap_bytes(&self) -> usize {
        self.ls.heap_bytes()
    }
}

impl HeapSize for CfNode {
    fn heap_bytes(&self) -> usize {
        match self {
            CfNode::Leaf { entries } => entries.heap_bytes(),
            CfNode::Interior { entries } => entries.heap_bytes(),
        }
    }
}

impl CfNode {
    fn stats(&self, depth: usize, out: &mut CfNodeStats) {
        out.height = out.height.max(depth);
        match self {
            CfNode::Leaf { entries } => {
                out.leaves += 1;
                out.leaf_entries += entries.len();
            }
            CfNode::Interior { entries } => {
                for (_, child) in entries {
                    child.stats(depth + 1, out);
                }
            }
        }
    }

    fn collect_leaf_entries<'a>(&'a self, out: &mut Vec<&'a ClusteringFeature>) {
        match self {
            CfNode::Leaf { entries } => out.extend(entries.iter()),
            CfNode::Interior { entries } => {
                for (_, child) in entries {
                    child.collect_leaf_entries(out);
                }
            }
        }
    }

    /// Inserts a point; returns a split sibling (with its CF) when this
    /// node overflowed. Each split performed anywhere in the subtree
    /// bumps `splits`.
    fn insert(
        &mut self,
        p: &[f64],
        threshold: f64,
        branching: usize,
        splits: &mut u64,
    ) -> Option<(ClusteringFeature, Box<CfNode>)> {
        match self {
            CfNode::Leaf { entries } => {
                if let Some(best) = entries
                    .iter_mut()
                    .min_by(|a, b| a.centroid_dist_sq(p).total_cmp(&b.centroid_dist_sq(p)))
                {
                    // Tentatively absorb; undo if the radius bound breaks.
                    let mut candidate = best.clone();
                    candidate.add_point(p);
                    if candidate.radius() <= threshold {
                        *best = candidate;
                        return None;
                    }
                }
                entries.push(ClusteringFeature::from_point(p));
                if entries.len() <= branching {
                    None
                } else {
                    *splits += 1;
                    Some(split_entries(entries).map_node(|e| CfNode::Leaf { entries: e }))
                }
            }
            CfNode::Interior { entries } => {
                let idx = entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, (a, _)), (_, (b, _))| {
                        a.centroid_dist_sq(p).total_cmp(&b.centroid_dist_sq(p))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                entries[idx].0.add_point(p);
                if let Some((sib_cf, sib_node)) =
                    entries[idx].1.insert(p, threshold, branching, splits)
                {
                    // Child split: recompute the child's CF and add the sibling.
                    entries[idx].0 = cf_of_node(&entries[idx].1);
                    entries.push((sib_cf, sib_node));
                    if entries.len() > branching {
                        *splits += 1;
                        let split = split_interior(entries);
                        return Some(split);
                    }
                }
                None
            }
        }
    }
}

/// An incrementally built CF-tree: the online half of BIRCH, exposed so
/// streaming ingestion (`dm-stream`) can share the exact structure that
/// batch [`Birch`] condenses into.
///
/// Points go in one at a time via [`CfTree::insert`]; at any moment the
/// leaf entries are a valid condensed summary of every point absorbed so
/// far, and [`Birch::cluster_entries`] can turn them into k global
/// centroids. Inserting the same point sequence always yields the same
/// tree bit for bit, which is what the prefix-equivalence suite pins.
#[derive(Debug)]
pub struct CfTree {
    root: CfNode,
    threshold: f64,
    branching: usize,
    points: usize,
    splits: u64,
}

impl CfTree {
    /// An empty tree with the given leaf radius threshold and branching
    /// factor.
    pub fn new(threshold: f64, branching: usize) -> Result<Self, DataError> {
        if branching < 2 {
            return Err(DataError::InvalidParameter("branching must be >= 2".into()));
        }
        if threshold < 0.0 {
            return Err(DataError::InvalidParameter(
                "threshold must be non-negative".into(),
            ));
        }
        Ok(Self {
            root: CfNode::Leaf {
                entries: Vec::new(),
            },
            threshold,
            branching,
            points: 0,
            splits: 0,
        })
    }

    /// Inserts one point, splitting nodes (and growing a new root) as
    /// needed. Returns the number of node splits this insert triggered.
    pub fn insert(&mut self, p: &[f64]) -> u64 {
        let before = self.splits;
        if let Some((sib_cf, sib_node)) =
            self.root
                .insert(p, self.threshold, self.branching, &mut self.splits)
        {
            // Root split: grow a new root.
            let old = std::mem::replace(
                &mut self.root,
                CfNode::Interior {
                    entries: Vec::new(),
                },
            );
            let old_cf = cf_of_node(&old);
            if let CfNode::Interior { entries } = &mut self.root {
                entries.push((old_cf, Box::new(old)));
                entries.push((sib_cf, sib_node));
            }
        }
        self.points += 1;
        self.splits - before
    }

    /// Number of points absorbed so far.
    pub fn n_points(&self) -> usize {
        self.points
    }

    /// Total node splits performed since construction (root growths
    /// count through the split that caused them).
    pub fn n_splits(&self) -> u64 {
        self.splits
    }

    /// The leaf radius threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The branching factor.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// Structural statistics (leaves, entries, height).
    pub fn stats(&self) -> CfNodeStats {
        let mut stats = CfNodeStats {
            leaves: 0,
            leaf_entries: 0,
            height: 0,
        };
        self.root.stats(1, &mut stats);
        stats
    }

    /// All leaf entries, in tree order.
    pub fn leaf_entries(&self) -> Vec<&ClusteringFeature> {
        let mut out = Vec::new();
        self.root.collect_leaf_entries(&mut out);
        out
    }
}

impl HeapSize for CfTree {
    fn heap_bytes(&self) -> usize {
        self.root.heap_bytes()
    }
}

/// Helper carrying the entries moved to a new sibling during a split.
struct SplitOut<E> {
    moved: Vec<E>,
}

impl<E> SplitOut<E> {
    fn map_node(self, make: impl FnOnce(Vec<E>) -> CfNode) -> (ClusteringFeature, Box<CfNode>)
    where
        E: HasCf,
    {
        let mut cf = ClusteringFeature::empty(self.moved.first().map_or(0, |e| e.cf().ls.len()));
        for e in &self.moved {
            cf.merge(e.cf());
        }
        (cf, Box::new(make(self.moved)))
    }
}

trait HasCf {
    fn cf(&self) -> &ClusteringFeature;
}

impl HasCf for ClusteringFeature {
    fn cf(&self) -> &ClusteringFeature {
        self
    }
}

impl HasCf for (ClusteringFeature, Box<CfNode>) {
    fn cf(&self) -> &ClusteringFeature {
        &self.0
    }
}

/// Splits an overfull entry list by farthest-pair seeding: the two most
/// distant entries seed the two groups, the rest join the nearer seed.
/// The entries staying behind remain in `entries`; the moved group is
/// returned.
fn split_entries<E: HasCf>(entries: &mut Vec<E>) -> SplitOut<E> {
    let n = entries.len();
    debug_assert!(n >= 2);
    let mut far = (0usize, 1usize, -1.0f64);
    for i in 0..n {
        for j in (i + 1)..n {
            let ci = entries[i].cf().centroid();
            let cj = entries[j].cf().centroid();
            let d = euclidean_sq(&ci, &cj);
            if d > far.2 {
                far = (i, j, d);
            }
        }
    }
    let (seed_a, seed_b) = (far.0, far.1);
    let ca = entries[seed_a].cf().centroid();
    let cb = entries[seed_b].cf().centroid();
    let mut keep: Vec<E> = Vec::new();
    let mut moved: Vec<E> = Vec::new();
    for (i, e) in entries.drain(..).enumerate() {
        let c = e.cf().centroid();
        let to_a = if i == seed_a {
            true
        } else if i == seed_b {
            false
        } else {
            euclidean_sq(&c, &ca) <= euclidean_sq(&c, &cb)
        };
        if to_a {
            keep.push(e);
        } else {
            moved.push(e);
        }
    }
    *entries = keep;
    SplitOut { moved }
}

fn split_interior(
    entries: &mut Vec<(ClusteringFeature, Box<CfNode>)>,
) -> (ClusteringFeature, Box<CfNode>) {
    split_entries(entries).map_node(|e| CfNode::Interior { entries: e })
}

fn cf_of_node(node: &CfNode) -> ClusteringFeature {
    match node {
        CfNode::Leaf { entries } => {
            let mut cf = ClusteringFeature::empty(entries.first().map_or(0, |e| e.ls.len()));
            for e in entries {
                cf.merge(e);
            }
            cf
        }
        CfNode::Interior { entries } => {
            let mut cf = ClusteringFeature::empty(entries.first().map_or(0, |(c, _)| c.ls.len()));
            for (c, _) in entries {
                cf.merge(c);
            }
            cf
        }
    }
}

/// The BIRCH clusterer.
#[derive(Debug, Clone)]
pub struct Birch {
    k: usize,
    branching: usize,
    threshold: f64,
    seed: u64,
}

impl Birch {
    /// Creates a BIRCH clusterer with branching factor 8 and threshold
    /// 0.5 (in data units).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            branching: 8,
            threshold: 0.5,
            seed: 0,
        }
    }

    /// Sets the CF-tree branching factor (≥ 2).
    pub fn with_branching(mut self, branching: usize) -> Self {
        self.branching = branching;
        self
    }

    /// Sets the leaf-entry radius threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the seed of the global k-means phase.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Batch condensation is now literally the streaming insert loop:
    /// one [`CfTree::insert`] per row under the guard's work budget.
    fn build_tree(&self, data: &Matrix, guard: &Guard) -> Result<CfTree, DataError> {
        let mut tree = CfTree::new(self.threshold, self.branching)?;
        // One work unit per inserted row; a trip stops condensation and
        // leaves a valid CF-tree over the prefix of rows absorbed so far.
        for i in 0..data.rows() {
            if guard.try_work(1).is_err() {
                break;
            }
            tree.insert(data.row(i));
        }
        Ok(tree)
    }

    /// Builds the CF-tree and reports its shape (for tests/ablations).
    pub fn tree_stats(&self, data: &Matrix) -> Result<CfNodeStats, DataError> {
        if data.rows() == 0 {
            return Err(DataError::Empty("matrix"));
        }
        Ok(self.build_tree(data, &Guard::unlimited())?.stats())
    }

    /// Weighted k-means++ clustering of condensed CF entries into `k`
    /// global centroids — BIRCH phase 3, public so a streaming CF-tree
    /// ([`CfTree`] via `dm-stream`) can be queried for centroids at any
    /// point in the stream.
    pub fn cluster_entries(
        &self,
        entries: &[&ClusteringFeature],
        guard: &Guard,
    ) -> Result<Matrix, DataError> {
        if entries.len() < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {} CF entries",
                self.k,
                entries.len()
            )));
        }
        self.global_kmeans(entries, guard)
    }

    /// Weighted k-means++ over leaf-entry centroids.
    fn global_kmeans(
        &self,
        entries: &[&ClusteringFeature],
        guard: &Guard,
    ) -> Result<Matrix, DataError> {
        let dims = entries[0].ls.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centroids_of: Vec<Vec<f64>> = entries.iter().map(|e| e.centroid()).collect();
        let weights: Vec<f64> = entries.iter().map(|e| e.n as f64).collect();

        // k-means++ seeding weighted by entry size.
        let mut centers: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        let total_w: f64 = weights.iter().sum();
        let mut x = rng.gen::<f64>() * total_w;
        let mut first = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                first = i;
                break;
            }
        }
        centers.push(centroids_of[first].clone());
        let mut dist2: Vec<f64> = centroids_of
            .iter()
            .map(|c| euclidean_sq(c, &centers[0]))
            .collect();
        while centers.len() < self.k {
            let scores: Vec<f64> = dist2.iter().zip(&weights).map(|(&d, &w)| d * w).collect();
            let total: f64 = scores.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..centroids_of.len())
            } else {
                let mut x = rng.gen::<f64>() * total;
                let mut pick = centroids_of.len() - 1;
                for (i, &s) in scores.iter().enumerate() {
                    x -= s;
                    if x <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            let new_center = centroids_of[pick].clone();
            for (i, c) in centroids_of.iter().enumerate() {
                let d = euclidean_sq(c, &new_center);
                if d < dist2[i] {
                    dist2[i] = d;
                }
            }
            centers.push(new_center);
        }

        // Weighted Lloyd iterations over the entries. A trip stops the
        // refinement at the current (valid) centers.
        for _ in 0..50 {
            if guard.next_iteration().is_err() || guard.try_work(entries.len() as u64).is_err() {
                break;
            }
            guard.obs().counter("cluster.birch.iterations", 1);
            let mut sums = vec![vec![0.0f64; dims]; self.k];
            let mut counts = vec![0.0f64; self.k];
            for (e, c) in entries.iter().zip(&centroids_of) {
                let best = centers
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| euclidean_sq(a, c).total_cmp(&euclidean_sq(b, c)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                for (s, &x) in sums[best].iter_mut().zip(&e.ls) {
                    *s += x;
                }
                counts[best] += e.n as f64;
            }
            let mut changed = false;
            for (ci, center) in centers.iter_mut().enumerate() {
                if counts[ci] > 0.0 {
                    for (c, &s) in center.iter_mut().zip(&sums[ci]) {
                        let new = s / counts[ci];
                        if (new - *c).abs() > 1e-12 {
                            changed = true;
                        }
                        *c = new;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Matrix::from_rows(&centers)
    }
}

impl Clusterer for Birch {
    fn name(&self) -> &'static str {
        "birch"
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        let n = data.rows();
        if self.k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {n} points",
                self.k
            )));
        }
        if self.branching < 2 {
            return Err(DataError::InvalidParameter("branching must be >= 2".into()));
        }
        if self.threshold < 0.0 {
            return Err(DataError::InvalidParameter(
                "threshold must be non-negative".into(),
            ));
        }
        // Phase 1: condense (a trip keeps the tree built so far).
        let tree = self.build_tree(data, guard)?;
        let entries: Vec<&ClusteringFeature> = tree.leaf_entries();
        guard
            .obs()
            .counter("cluster.birch.leaf_entries", entries.len() as u64);
        guard.obs().counter("cluster.birch.splits", tree.n_splits());
        // The condensed tree *is* BIRCH's memory footprint — the whole
        // point of Phase 1 is that this number undercuts the raw data.
        guard
            .obs()
            .gauge_max("cluster.birch.cf_tree_mem_bytes", tree.heap_bytes() as f64);

        // Phase 3: global clustering. If condensation was too aggressive
        // (or cut short) for k, fall back to clustering the raw points —
        // under the same guard, so a tripped run degrades to the
        // initial-centroid labelling of plain k-means.
        let centroids = if entries.len() >= self.k {
            self.global_kmeans(&entries, guard)?
        } else {
            crate::kmeans::KMeans::new(self.k)
                .with_seed(self.seed)
                .fit_model_governed(data, guard)?
                .result
                .centroids
        };

        // Phase 4: relabel original points (always runs: the model must
        // label every row even when truncated).
        let assignments: Vec<u32> = (0..n)
            .map(|i| {
                (0..self.k)
                    .min_by(|&a, &b| {
                        euclidean_sq(centroids.row(a), data.row(i))
                            .total_cmp(&euclidean_sq(centroids.row(b), data.row(i)))
                    })
                    .unwrap_or(0) as u32
            })
            .collect();
        Ok(guard.outcome(Clustering {
            assignments,
            n_clusters: self.k,
            centroids: Some(centroids),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{ClusterSpec, GaussianMixture};

    #[test]
    fn cf_additivity() {
        let points = [[1.0, 2.0], [3.0, -1.0], [0.5, 0.5], [2.0, 2.0]];
        let mut whole = ClusteringFeature::empty(2);
        for p in &points {
            whole.add_point(p);
        }
        let mut a = ClusteringFeature::empty(2);
        a.add_point(&points[0]);
        a.add_point(&points[1]);
        let mut b = ClusteringFeature::empty(2);
        b.add_point(&points[2]);
        b.add_point(&points[3]);
        a.merge(&b);
        assert_eq!(a.n, whole.n);
        assert_eq!(a.ls, whole.ls);
        assert!((a.ss - whole.ss).abs() < 1e-12);
        assert!((a.radius() - whole.radius()).abs() < 1e-12);
    }

    #[test]
    fn cf_centroid_and_radius() {
        let mut cf = ClusteringFeature::from_point(&[0.0, 0.0]);
        cf.add_point(&[2.0, 0.0]);
        assert_eq!(cf.centroid(), vec![1.0, 0.0]);
        assert!((cf.radius() - 1.0).abs() < 1e-12);
        assert_eq!(ClusteringFeature::empty(2).radius(), 0.0);
    }

    #[test]
    fn tree_condenses_points() {
        let (data, _) = GaussianMixture::well_separated(4, 2, 200, 10.0)
            .unwrap()
            .generate(1);
        let stats = Birch::new(4).with_threshold(1.0).tree_stats(&data).unwrap();
        assert!(stats.leaf_entries > 0);
        assert!(
            stats.leaf_entries < data.rows() / 4,
            "tree should condense: {} entries for {} points",
            stats.leaf_entries,
            data.rows()
        );
        assert!(stats.height >= 1);
    }

    #[test]
    fn smaller_threshold_means_more_entries() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 150, 8.0)
            .unwrap()
            .generate(2);
        let fine = Birch::new(3).with_threshold(0.1).tree_stats(&data).unwrap();
        let coarse = Birch::new(3).with_threshold(2.0).tree_stats(&data).unwrap();
        assert!(fine.leaf_entries > coarse.leaf_entries);
    }

    #[test]
    fn recovers_gaussian_blobs() {
        let (data, truth) = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.5, 100),
            ClusterSpec::new(vec![10.0, 0.0], 0.5, 100),
            ClusterSpec::new(vec![5.0, 9.0], 0.5, 100),
        ])
        .unwrap()
        .generate(7);
        let c = Birch::new(3).with_threshold(1.0).fit(&data).unwrap();
        let ari = dm_eval::adjusted_rand_index(&truth, &c.assignments).unwrap();
        assert!(ari > 0.95, "ari {ari}");
    }

    #[test]
    fn fallback_when_overcondensed() {
        // Huge threshold: everything lands in one CF entry, but k=2 must
        // still come back with 2 clusters via the raw-data fallback.
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]).unwrap();
        let c = Birch::new(2).with_threshold(1e9).fit(&data).unwrap();
        assert_eq!(c.n_clusters, 2);
        assert_ne!(c.assignments[0], c.assignments[2]);
    }

    #[test]
    fn invalid_params() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(Birch::new(0).fit(&data).is_err());
        assert!(Birch::new(3).fit(&data).is_err());
        assert!(Birch::new(2).with_branching(1).fit(&data).is_err());
        assert!(Birch::new(2).with_threshold(-1.0).fit(&data).is_err());
    }

    fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Pins the CfTree refactor to the exact bits the pre-refactor
    /// batch-only implementation produced (hashes captured from the old
    /// code on this seeded dataset). Batch `fit` is now a thin wrapper
    /// over the streaming insert loop; this proves the rewrite changed
    /// nothing observable.
    #[test]
    fn refactor_regression_bit_identity() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 120, 8.0)
            .unwrap()
            .generate(4);
        let model = Birch::new(3)
            .with_threshold(1.0)
            .with_seed(5)
            .fit(&data)
            .unwrap();
        let assign_hash = fnv(model.assignments.iter().flat_map(|a| a.to_le_bytes()));
        assert_eq!(assign_hash, 0xc7a209bbf96a4565, "assignments drifted");
        let centroids = model.centroids.as_ref().unwrap();
        let centroid_hash = fnv((0..centroids.rows())
            .flat_map(|r| centroids.row(r).iter().map(|v| v.to_bits()))
            .flat_map(|b| b.to_le_bytes()));
        assert_eq!(centroid_hash, 0x12792e47205a4bb4, "centroid bits drifted");
        assert_eq!(centroids.row(0)[0].to_bits(), 0x40201e83a0f5121f);
        let stats = Birch::new(3).with_threshold(1.0).tree_stats(&data).unwrap();
        assert_eq!((stats.leaves, stats.leaf_entries, stats.height), (2, 13, 2));
    }

    #[test]
    fn cf_tree_incremental_matches_batch_stats() {
        let (data, _) = GaussianMixture::well_separated(4, 3, 160, 9.0)
            .unwrap()
            .generate(11);
        let mut tree = CfTree::new(0.8, 6).unwrap();
        for i in 0..data.rows() {
            tree.insert(data.row(i));
        }
        assert_eq!(tree.n_points(), data.rows());
        let stats = Birch::new(4)
            .with_threshold(0.8)
            .with_branching(6)
            .tree_stats(&data)
            .unwrap();
        assert_eq!(tree.stats(), stats);
        let absorbed: usize = tree.leaf_entries().iter().map(|e| e.n).sum();
        assert_eq!(absorbed, data.rows());
    }

    #[test]
    fn cf_tree_counts_splits() {
        let (data, _) = GaussianMixture::well_separated(4, 2, 200, 10.0)
            .unwrap()
            .generate(1);
        let mut tree = CfTree::new(0.05, 4).unwrap();
        let mut total = 0;
        for i in 0..data.rows() {
            total += tree.insert(data.row(i));
        }
        assert_eq!(total, tree.n_splits());
        assert!(tree.n_splits() > 0, "tiny threshold must force splits");
        assert!(tree.stats().height > 1, "splits must have grown the tree");
    }

    #[test]
    fn cf_tree_rejects_bad_params() {
        assert!(CfTree::new(0.5, 1).is_err());
        assert!(CfTree::new(-0.5, 4).is_err());
    }

    #[test]
    fn deterministic() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 80, 8.0)
            .unwrap()
            .generate(4);
        let a = Birch::new(3).with_seed(5).fit(&data).unwrap();
        let b = Birch::new(3).with_seed(5).fit(&data).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
