//! CLARANS: clustering large applications based on randomized search
//! (Ng & Han, VLDB 1994).
//!
//! CLARANS views k-medoid clustering as a search over the graph whose
//! nodes are medoid sets and whose edges swap one medoid for one
//! non-medoid. From a random node it repeatedly samples random
//! neighbours, moving whenever the cost improves; after `max_neighbor`
//! consecutive non-improving samples the node is declared a local
//! minimum. The best of `num_local` such minima wins. Compared to PAM's
//! exhaustive steepest-descent SWAP it trades determinism for large-n
//! tractability — the middle ground between PAM and sampling-based
//! CLARA that the paper stakes out.

use crate::{Clusterer, Clustering};
use dm_dataset::matrix::euclidean;
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Randomized k-medoids clusterer.
#[derive(Debug, Clone)]
pub struct Clarans {
    k: usize,
    num_local: usize,
    max_neighbor: Option<usize>,
    seed: u64,
}

impl Clarans {
    /// Creates a CLARANS clusterer with the paper's defaults:
    /// `num_local = 2` and `max_neighbor = max(250, 1.25% · k(n−k))`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            num_local: 2,
            max_neighbor: None,
            seed: 0,
        }
    }

    /// Number of local minima to collect.
    pub fn with_num_local(mut self, num_local: usize) -> Self {
        self.num_local = num_local;
        self
    }

    /// Overrides the non-improving-neighbour budget.
    pub fn with_max_neighbor(mut self, max_neighbor: usize) -> Self {
        self.max_neighbor = Some(max_neighbor);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total cost of a medoid set: each point's distance to its nearest
    /// medoid.
    fn cost(data: &Matrix, medoids: &[usize]) -> f64 {
        let mut total = 0.0;
        for i in 0..data.rows() {
            let mut best = f64::INFINITY;
            for &m in medoids {
                let d = euclidean(data.row(i), data.row(m));
                if d < best {
                    best = d;
                }
            }
            total += best;
        }
        total
    }

    /// Runs the search, returning `(clustering, medoids, cost)`.
    pub fn fit_medoids(&self, data: &Matrix) -> Result<(Clustering, Vec<usize>, f64), DataError> {
        let out = self.fit_medoids_governed(data, &Guard::unlimited())?;
        Ok(out.result)
    }

    /// Runs the randomized search under a resource [`Guard`].
    ///
    /// Every cost evaluation (a full pass over the database) charges `n`
    /// work units. On a trip the search stops and the best medoid set
    /// examined so far — including the current node, if it beats the
    /// recorded local minima — is returned, so the clustering is always
    /// built from the cheapest state actually evaluated.
    pub fn fit_medoids_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<(Clustering, Vec<usize>, f64)>, DataError> {
        let n = data.rows();
        if self.k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot form {} clusters from {n} points",
                self.k
            )));
        }
        if self.num_local == 0 {
            return Err(DataError::InvalidParameter("num_local must be >= 1".into()));
        }
        let max_neighbor = self
            .max_neighbor
            .unwrap_or_else(|| (((self.k * (n - self.k)) as f64 * 0.0125) as usize).max(250));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut neighbors_evaluated = 0u64;
        let mut local_searches = 0u64;

        'search: for _ in 0..self.num_local {
            if guard.try_work(n as u64).is_err() {
                break;
            }
            local_searches += 1;
            // Random starting node.
            let mut pool: Vec<usize> = (0..n).collect();
            pool.shuffle(&mut rng);
            let mut medoids: Vec<usize> = pool[..self.k].to_vec();
            let mut cost = Self::cost(data, &medoids);

            let mut failures = 0usize;
            while failures < max_neighbor {
                if guard.try_work(n as u64).is_err() {
                    // Tripped mid-descent: the current node is a valid
                    // (evaluated) medoid set — keep it if it is the best.
                    if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                        best = Some((medoids, cost));
                    }
                    break 'search;
                }
                // Random neighbour: swap one medoid for one non-medoid.
                let mi = rng.gen_range(0..self.k);
                let candidate = loop {
                    let c = rng.gen_range(0..n);
                    if !medoids.contains(&c) {
                        break c;
                    }
                };
                let old = medoids[mi];
                medoids[mi] = candidate;
                neighbors_evaluated += 1;
                let new_cost = Self::cost(data, &medoids);
                if new_cost + 1e-12 < cost {
                    cost = new_cost;
                    failures = 0;
                } else {
                    medoids[mi] = old;
                    failures += 1;
                }
            }
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((medoids, cost));
            }
        }

        // Degraded run: tripped before the first node was evaluated.
        let (medoids, cost) = match best {
            Some(b) => b,
            None => {
                let medoids: Vec<usize> = (0..self.k).collect();
                let cost = Self::cost(data, &medoids);
                (medoids, cost)
            }
        };
        let assignments: Vec<u32> = (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        euclidean(data.row(i), data.row(a))
                            .total_cmp(&euclidean(data.row(i), data.row(b)))
                    })
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect();
        let mut centroids = Matrix::zeros(self.k, data.cols());
        for (c, &m) in medoids.iter().enumerate() {
            centroids.row_mut(c).copy_from_slice(data.row(m));
        }
        let obs = guard.obs();
        if obs.enabled() {
            obs.counter("cluster.clarans.iterations", local_searches);
            obs.counter("cluster.clarans.neighbors_evaluated", neighbors_evaluated);
            obs.gauge("cluster.clarans.cost", cost);
        }
        Ok(guard.outcome((
            Clustering {
                assignments,
                n_clusters: self.k,
                centroids: Some(centroids),
            },
            medoids,
            cost,
        )))
    }
}

impl Clusterer for Clarans {
    fn name(&self) -> &'static str {
        "clarans"
    }

    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError> {
        Ok(self.fit_medoids_governed(data, guard)?.map(|(c, _, _)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pam;
    use dm_synth::{ClusterSpec, GaussianMixture};

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = GaussianMixture::new(vec![
            ClusterSpec::new(vec![0.0, 0.0], 0.5, 60),
            ClusterSpec::new(vec![10.0, 0.0], 0.5, 60),
            ClusterSpec::new(vec![5.0, 9.0], 0.5, 60),
        ])
        .unwrap()
        .generate(4);
        let c = Clarans::new(3).with_seed(1).fit(&data).unwrap();
        let ari = dm_eval::adjusted_rand_index(&truth, &c.assignments).unwrap();
        assert!(ari > 0.95, "ari {ari}");
    }

    #[test]
    fn cost_close_to_pam_optimum() {
        let (data, _) = GaussianMixture::well_separated(3, 2, 40, 8.0)
            .unwrap()
            .generate(6);
        let (_, pam_medoids) = Pam::new(3).fit_medoids(&data).unwrap();
        let pam_cost = Clarans::cost(&data, &pam_medoids);
        let (_, _, clarans_cost) = Clarans::new(3)
            .with_seed(2)
            .with_num_local(3)
            .fit_medoids(&data)
            .unwrap();
        assert!(
            clarans_cost <= pam_cost * 1.1,
            "clarans {clarans_cost} vs pam {pam_cost}"
        );
    }

    #[test]
    fn medoids_are_data_points_and_deterministic() {
        let (data, _) = GaussianMixture::well_separated(2, 2, 30, 8.0)
            .unwrap()
            .generate(8);
        let (c1, m1, _) = Clarans::new(2).with_seed(5).fit_medoids(&data).unwrap();
        let (c2, m2, _) = Clarans::new(2).with_seed(5).fit_medoids(&data).unwrap();
        assert_eq!(c1.assignments, c2.assignments);
        assert_eq!(m1, m2);
        assert!(m1.iter().all(|&m| m < data.rows()));
    }

    #[test]
    fn invalid_params() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(Clarans::new(0).fit(&data).is_err());
        assert!(Clarans::new(3).fit(&data).is_err());
        assert!(Clarans::new(1).with_num_local(0).fit(&data).is_err());
    }
}
