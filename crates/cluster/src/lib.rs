//! # dm-cluster
//!
//! Clustering algorithms of the classic data-mining survey:
//!
//! * [`KMeans`] — Lloyd's algorithm with Forgy/random-partition/k-means++
//!   initialization.
//! * [`Pam`] — k-medoids (Kaufman & Rousseeuw's PAM: BUILD + SWAP).
//! * [`Agglomerative`] — bottom-up hierarchical clustering with single,
//!   complete, average and Ward linkage (Lance–Williams updates) plus
//!   dendrogram extraction.
//! * [`Clara`] — sampling-based k-medoids for large databases
//!   (Kaufman & Rousseeuw 1990).
//! * [`Clarans`] — randomized k-medoid search for large databases
//!   (Ng & Han, VLDB 1994).
//! * [`Birch`] — the CF-tree pre-clustering of Zhang, Ramakrishnan &
//!   Livny (SIGMOD 1996) with a weighted k-means global phase.
//! * [`Dbscan`] — density-based clustering with noise (Ester et al.,
//!   KDD 1996).
//!
//! All algorithms consume a [`dm_dataset::Matrix`] (rows = points) and
//! produce a [`Clustering`]. Noise points (DBSCAN only) are labelled
//! [`NOISE`].

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod agglomerative;
pub mod birch;
pub mod clara;
pub mod clarans;
pub mod dbscan;
pub mod kmeans;
pub mod pam;

pub use agglomerative::{Agglomerative, Dendrogram, Linkage, Merge};
pub use birch::{Birch, CfNodeStats, CfTree, ClusteringFeature};
pub use clara::Clara;
pub use clarans::Clarans;
pub use dbscan::Dbscan;
pub use kmeans::{Init, KMeans, KMeansModel};
pub use pam::Pam;

use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};

/// Label assigned to noise points by density-based algorithms.
pub const NOISE: u32 = u32::MAX;

/// Rows / queue pops scanned between guard polls inside tight loops.
pub(crate) const POLL_STRIDE: usize = 256;

/// The result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Per-row cluster labels in `0..n_clusters`, or [`NOISE`].
    pub assignments: Vec<u32>,
    /// Number of (non-noise) clusters found.
    pub n_clusters: usize,
    /// Cluster centroids, when the algorithm produces them.
    pub centroids: Option<Matrix>,
}

impl Clustering {
    /// Per-cluster sizes indexed by label (noise excluded).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for &a in &self.assignments {
            if a != NOISE {
                sizes[a as usize] += 1;
            }
        }
        sizes
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.assignments.iter().filter(|&&a| a == NOISE).count()
    }
}

/// A clustering algorithm over dense numeric data.
pub trait Clusterer {
    /// A short human-readable algorithm name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Clusters the rows of `data` to completion — equivalent to
    /// [`Clusterer::fit_governed`] under an unlimited [`Guard`], so
    /// governed runs with no limits are bit-identical by construction.
    fn fit(&self, data: &Matrix) -> Result<Clustering, DataError> {
        Ok(self.fit_governed(data, &Guard::unlimited())?.result)
    }

    /// Clusters the rows of `data` under a resource [`Guard`].
    ///
    /// Implementations poll the guard at iteration/batch boundaries and
    /// degrade gracefully on a trip: the returned [`Clustering`] is
    /// always structurally valid (every point labelled, `n_clusters`
    /// consistent with the labels), built from the best state reached —
    /// e.g. the current centroids for iterative algorithms, the
    /// best-so-far medoids for sampling searches, or a partial
    /// dendrogram cut for hierarchical clustering. The accompanying
    /// [`dm_guard::RunStatus`] says whether the run completed or why it
    /// stopped.
    fn fit_governed(&self, data: &Matrix, guard: &Guard) -> Result<Outcome<Clustering>, DataError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_helpers() {
        let c = Clustering {
            assignments: vec![0, 1, 0, NOISE, 1, 1],
            n_clusters: 2,
            centroids: None,
        };
        assert_eq!(c.cluster_sizes(), vec![2, 3]);
        assert_eq!(c.n_noise(), 1);
    }
}
