//! Property tests for the clustering invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_cluster::{Agglomerative, Birch, Clusterer, Dbscan, KMeans, Linkage, NOISE};
use dm_dataset::matrix::euclidean_sq;
use dm_dataset::Matrix;
use proptest::prelude::*;

/// Strategy: 4–40 random points in up to 3 dimensions.
fn points() -> impl Strategy<Value = Matrix> {
    (4usize..40, 1usize..4).prop_flat_map(|(n, d)| {
        prop::collection::vec(prop::collection::vec(-50.0f64..50.0, d..=d), n..=n)
            .prop_map(|rows| Matrix::from_rows(&rows).expect("rectangular"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assigns_every_point_to_nearest_centroid(data in points(), k in 1usize..5, seed in 0u64..8) {
        prop_assume!(data.rows() >= k);
        let model = KMeans::new(k).with_seed(seed).fit_model(&data).unwrap();
        prop_assert_eq!(model.assignments.len(), data.rows());
        for i in 0..data.rows() {
            let assigned = model.assignments[i] as usize;
            prop_assert!(assigned < k);
            let da = euclidean_sq(data.row(i), model.centroids.row(assigned));
            for c in 0..k {
                prop_assert!(da <= euclidean_sq(data.row(i), model.centroids.row(c)) + 1e-9);
            }
        }
        // Inertia equals the recomputed SSE against final centroids.
        let sse: f64 = (0..data.rows())
            .map(|i| euclidean_sq(data.row(i), model.centroids.row(model.assignments[i] as usize)))
            .sum();
        prop_assert!((sse - model.inertia).abs() < 1e-6);
    }

    #[test]
    fn dendrogram_cut_produces_exactly_k_clusters(data in points(), k in 1usize..6) {
        prop_assume!(data.rows() >= k);
        let d = Agglomerative::new(1).fit_dendrogram(&data).unwrap();
        let labels = d.cut(k).unwrap();
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), k);
        // Labels are dense 0..k.
        prop_assert!(labels.iter().all(|&l| (l as usize) < k));
    }

    #[test]
    fn single_linkage_heights_monotone(data in points()) {
        let d = Agglomerative::new(1)
            .with_linkage(Linkage::Single)
            .fit_dendrogram(&data)
            .unwrap();
        let h = d.heights();
        prop_assert!(h.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{:?}", h);
    }

    #[test]
    fn birch_covers_all_points_and_respects_k(data in points(), k in 1usize..4) {
        prop_assume!(data.rows() >= k);
        let c = Birch::new(k).with_threshold(5.0).with_seed(1).fit(&data).unwrap();
        prop_assert_eq!(c.assignments.len(), data.rows());
        prop_assert!(c.assignments.iter().all(|&a| (a as usize) < k));
        // CF-tree condenses: never more leaf entries than points.
        let stats = Birch::new(k).with_threshold(5.0).tree_stats(&data).unwrap();
        prop_assert!(stats.leaf_entries <= data.rows());
        prop_assert!(stats.leaf_entries >= 1);
    }

    #[test]
    fn dbscan_labels_are_noise_or_dense(data in points(), min_pts in 1usize..6) {
        let c = Dbscan::new(10.0, min_pts).fit(&data).unwrap();
        prop_assert_eq!(c.assignments.len(), data.rows());
        for &a in &c.assignments {
            prop_assert!(a == NOISE || (a as usize) < c.n_clusters);
        }
        // Every non-noise cluster id is used.
        for cluster in 0..c.n_clusters as u32 {
            prop_assert!(c.assignments.contains(&cluster));
        }
        // With min_pts = 1 every point is a core point: no noise at all.
        if min_pts == 1 {
            prop_assert_eq!(c.n_noise(), 0);
        }
    }

    #[test]
    fn clusterers_are_deterministic(data in points(), k in 1usize..4) {
        prop_assume!(data.rows() >= k);
        let a = KMeans::new(k).with_seed(7).fit(&data).unwrap();
        let b = KMeans::new(k).with_seed(7).fit(&data).unwrap();
        prop_assert_eq!(a.assignments, b.assignments);
        let a = Agglomerative::new(k).fit(&data).unwrap();
        let b = Agglomerative::new(k).fit(&data).unwrap();
        prop_assert_eq!(a.assignments, b.assignments);
    }
}
