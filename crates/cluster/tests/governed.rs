//! Guard integration tests for every clusterer: truncated runs must stay
//! structurally valid, cancelled runs stop, and unlimited guards are
//! bit-identical to the ungoverned entry points.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_cluster::{
    Agglomerative, Birch, Clara, Clarans, Clusterer, Clustering, Dbscan, KMeans, Pam, NOISE,
};
use dm_guard::{Budget, CancelToken, Guard, TruncationReason};
use dm_synth::GaussianMixture;

fn blobs() -> dm_dataset::Matrix {
    let (data, _) = GaussianMixture::well_separated(3, 2, 60, 8.0)
        .unwrap()
        .generate(17);
    data
}

fn all_clusterers() -> Vec<Box<dyn Clusterer>> {
    vec![
        Box::new(KMeans::new(3).with_seed(7)),
        Box::new(Pam::new(3)),
        Box::new(Clara::new(3).with_seed(7)),
        Box::new(Clarans::new(3).with_seed(7)),
        Box::new(Birch::new(3).with_threshold(1.0).with_seed(7)),
        Box::new(Agglomerative::new(3)),
        Box::new(Dbscan::new(1.5, 4)),
    ]
}

/// Every point labelled, labels consistent with `n_clusters`.
fn assert_valid(c: &Clustering, n: usize, ctx: &str) {
    assert_eq!(c.assignments.len(), n, "{ctx}: every point labelled");
    for &a in &c.assignments {
        assert!(
            a == NOISE || (a as usize) < c.n_clusters,
            "{ctx}: label {a} out of range (n_clusters {})",
            c.n_clusters
        );
    }
    if let Some(centroids) = &c.centroids {
        for i in 0..centroids.rows() {
            assert!(
                centroids.row(i).iter().all(|v| v.is_finite()),
                "{ctx}: centroid {i} not finite"
            );
        }
    }
}

#[test]
fn work_budget_truncates_but_stays_structurally_valid() {
    let data = blobs();
    let n = data.rows();
    for clusterer in all_clusterers() {
        let full = clusterer.fit(&data).unwrap();
        for max_work in [0u64, 1, 16, 256, 4096] {
            let guard = Guard::new(Budget::unlimited().with_max_work(max_work));
            let out = clusterer.fit_governed(&data, &guard).unwrap();
            let ctx = format!("{} max_work={max_work}", clusterer.name());
            assert_valid(&out.result, n, &ctx);
            if out.is_complete() {
                assert_eq!(out.result, full, "{ctx}: complete run must equal fit()");
            } else {
                assert_eq!(
                    out.truncation(),
                    Some(TruncationReason::WorkLimitExceeded),
                    "{ctx}"
                );
                assert!(guard.work_done() <= max_work, "{ctx}: cap exceeded");
            }
        }
    }
}

#[test]
fn pre_cancelled_token_stops_every_clusterer() {
    let data = blobs();
    let n = data.rows();
    for clusterer in all_clusterers() {
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(Budget::unlimited(), token);
        let out = clusterer.fit_governed(&data, &guard).unwrap();
        assert_eq!(
            out.truncation(),
            Some(TruncationReason::Cancelled),
            "{}",
            clusterer.name()
        );
        assert_valid(&out.result, n, clusterer.name());
    }
}

#[test]
fn expired_deadline_truncates_every_clusterer() {
    let data = blobs();
    let n = data.rows();
    for clusterer in all_clusterers() {
        let guard = Guard::new(Budget::unlimited().with_deadline_ms(0));
        let out = clusterer.fit_governed(&data, &guard).unwrap();
        assert_eq!(
            out.truncation(),
            Some(TruncationReason::DeadlineExceeded),
            "{}",
            clusterer.name()
        );
        assert_valid(&out.result, n, clusterer.name());
    }
}

#[test]
fn unlimited_guard_matches_ungoverned_fit_exactly() {
    let data = blobs();
    for clusterer in all_clusterers() {
        let out = clusterer.fit_governed(&data, &Guard::unlimited()).unwrap();
        assert!(out.is_complete(), "{}", clusterer.name());
        let plain = clusterer.fit(&data).unwrap();
        assert_eq!(out.result, plain, "{}", clusterer.name());
    }
}

#[test]
fn iteration_budget_caps_kmeans() {
    let data = blobs();
    let full = KMeans::new(3).with_seed(7).fit_model(&data).unwrap();
    let guard = Guard::new(Budget::unlimited().with_max_iterations(1));
    let out = KMeans::new(3)
        .with_seed(7)
        .fit_model_governed(&data, &guard)
        .unwrap();
    assert!(out.result.iterations <= 1);
    if full.iterations > 1 {
        assert_eq!(
            out.truncation(),
            Some(TruncationReason::IterationLimitReached)
        );
    }
}
