//! Property tests for the tail-based trace sampler: for arbitrary
//! seeded request streams the retained set is a pure function of the
//! stream (replay determinism — what lets E18 gate retention counters
//! at 0%), every anomalous request survives, and the byte budget is
//! never exceeded. These are the invariants `ServeConfig::trace`
//! inherits wholesale.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::trace::{RequestTrace, TraceConfig, TraceEvent, TraceEventKind, TraceId, TraceStore};
use dm_obs::{InMemoryRecorder, Obs};
use proptest::prelude::*;

/// A synthetic request outcome the generator scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Complete,
    Shed,
    GuardTrip,
    Degraded,
    Panicked,
}

fn fate() -> impl Strategy<Value = Fate> {
    // ~60% boring, the rest split across the anomalous classes.
    (0u32..10).prop_map(|roll| match roll {
        0..=5 => Fate::Complete,
        6 => Fate::Shed,
        7 => Fate::GuardTrip,
        8 => Fate::Degraded,
        _ => Fate::Panicked,
    })
}

/// Builds the trace a server would assemble for request `seq` with the
/// scripted fate. Durations are synthetic but deterministic in `seq`,
/// so slowest-k decisions replay exactly.
fn assemble(seed: u64, seq: u64, f: Fate) -> RequestTrace {
    let id = TraceId::mint(seed, seq);
    let total_ns = 1_000 + (seq * 7_919) % 100_000; // deterministic spread
    let mut events = vec![TraceEvent {
        at_ns: 0,
        kind: TraceEventKind::Submitted,
    }];
    match f {
        Fate::Shed => events.push(TraceEvent {
            at_ns: total_ns,
            kind: TraceEventKind::Shed {
                reason: "queue_full".into(),
            },
        }),
        Fate::Complete | Fate::GuardTrip | Fate::Degraded | Fate::Panicked => {
            events.push(TraceEvent {
                at_ns: 0,
                kind: TraceEventKind::Admitted { depth: 1 },
            });
            events.push(TraceEvent {
                at_ns: total_ns / 2,
                kind: TraceEventKind::Dequeued {
                    worker: 0,
                    wait_ns: total_ns / 2,
                },
            });
            match f {
                Fate::GuardTrip => events.push(TraceEvent {
                    at_ns: total_ns,
                    kind: TraceEventKind::GuardTrip {
                        reason: "deadline".into(),
                    },
                }),
                Fate::Degraded => events.push(TraceEvent {
                    at_ns: total_ns,
                    kind: TraceEventKind::Degraded {
                        tier: "majority".into(),
                    },
                }),
                Fate::Panicked => events.push(TraceEvent {
                    at_ns: total_ns,
                    kind: TraceEventKind::PanicRecovered,
                }),
                _ => {}
            }
            let outcome = match f {
                Fate::Panicked => "panicked",
                Fate::GuardTrip | Fate::Degraded => "truncated",
                _ => "complete",
            };
            events.push(TraceEvent {
                at_ns: total_ns,
                kind: TraceEventKind::Finished {
                    outcome: outcome.into(),
                },
            });
        }
    }
    RequestTrace {
        id,
        seq,
        endpoint: "predict".into(),
        events,
        queue_ns: total_ns / 2,
        exec_ns: total_ns / 2,
        total_ns,
        pinned: Vec::new(),
    }
}

/// Replays one scripted stream through a fresh store and returns the
/// retained (id, pinned) set in seq order.
fn replay(cfg: &TraceConfig, shards: usize, fates: &[Fate]) -> Vec<RequestTrace> {
    let store = TraceStore::new(cfg.clone(), shards);
    let rec = InMemoryRecorder::new();
    let obs = Obs::new(&rec);
    for (i, &f) in fates.iter().enumerate() {
        let seq = i as u64 + 1;
        let shard = if f == Fate::Shed {
            0
        } else {
            (seq as usize % shards.max(2).saturating_sub(1)) + 1
        };
        store.offer(shard.min(shards - 1), assemble(cfg.seed, seq, f), &obs);
    }
    store.retained()
}

proptest! {
    /// Same seed, same stream ⇒ byte-identical retained set. The
    /// sampler consults only ids, fates and synthetic durations — no
    /// ambient clock, no global state.
    #[test]
    fn replay_determinism(
        seed in 0u64..u64::MAX,
        fates in prop::collection::vec(fate(), 1..200),
        sample_every in 0u64..8,
        slowest_k in 0usize..4,
    ) {
        let cfg = TraceConfig {
            seed,
            sample_every,
            slowest_k,
            ..TraceConfig::default()
        };
        let a = replay(&cfg, 3, &fates);
        let b = replay(&cfg, 3, &fates);
        prop_assert_eq!(a, b);
    }

    /// Every anomalous request (shed, guard trip, degraded tier,
    /// recovered panic) is retained — under a budget generous enough
    /// that anomalous traces alone cannot exhaust it.
    #[test]
    fn anomalous_requests_are_always_retained(
        seed in 0u64..u64::MAX,
        fates in prop::collection::vec(fate(), 1..150),
    ) {
        let cfg = TraceConfig {
            seed,
            byte_budget: 1 << 22,
            ring_capacity: 1024,
            ..TraceConfig::default()
        };
        let retained = replay(&cfg, 3, &fates);
        for (i, &f) in fates.iter().enumerate() {
            if f != Fate::Complete {
                let seq = i as u64 + 1;
                prop_assert!(
                    retained.iter().any(|t| t.seq == seq),
                    "anomalous seq {} ({:?}) was dropped", seq, f
                );
            }
        }
        // And each retained anomalous trace agrees with its script.
        for t in &retained {
            let f = fates[(t.seq - 1) as usize];
            prop_assert_eq!(t.is_anomalous(), f != Fate::Complete);
        }
    }

    /// Retained bytes never exceed the configured budget, even under
    /// tiny budgets that force constant eviction; the store's own
    /// accounting matches a recount from scratch.
    #[test]
    fn retained_bytes_never_exceed_budget(
        seed in 0u64..u64::MAX,
        fates in prop::collection::vec(fate(), 1..150),
        budget in 512usize..8192,
    ) {
        let cfg = TraceConfig {
            seed,
            byte_budget: budget,
            sample_every: 1, // maximum retention pressure
            ..TraceConfig::default()
        };
        let store = TraceStore::new(cfg.clone(), 3);
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        for (i, &f) in fates.iter().enumerate() {
            let seq = i as u64 + 1;
            store.offer((i % 3).min(2), assemble(seed, seq, f), &obs);
            let stats = store.stats();
            prop_assert!(
                stats.bytes <= budget,
                "bytes {} exceed budget {} after seq {}", stats.bytes, budget, seq
            );
            // Recount by rebuilding each retained trace the way it was
            // originally constructed (a clone would shrink Vec
            // capacities and undercount the capacity-based HeapSize).
            let recount: usize = store
                .retained()
                .iter()
                .map(|t| assemble(seed, t.seq, fates[(t.seq - 1) as usize]).approx_bytes())
                .sum();
            prop_assert_eq!(stats.bytes, recount, "accounting drifted at seq {}", seq);
        }
    }
}
