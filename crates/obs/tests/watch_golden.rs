//! Golden-file test for the `dm watch` table renderer: a checked-in
//! rule file, six checked-in snapshot fixtures (one per replay tick),
//! and the exact report their replay must render. The report is what
//! `dm watch` prints and what the CI watch-smoke step greps, so a
//! formatting change is a *product* change — it must show up in review
//! as a golden-file edit, not slip by.
//!
//! The snapshot fixtures are canonically the output of [`scenario`]
//! below (an overload burst that fires two rules, then a quiet stretch
//! that lets the window slide past it and resolve them). Regenerate
//! everything after an intentional change:
//!
//! ```text
//! cargo test -p dm-obs --test watch_golden -- --ignored regenerate_fixtures
//! ```
//!
//! The same replay is reproducible through the CLI:
//!
//! ```text
//! cargo run -p dm-bench --bin dm -- watch \
//!     crates/obs/tests/fixtures/watch_rules.json \
//!     crates/obs/tests/fixtures/watch_snap_{1,2,3,4,5,6}.json \
//!     --window 300 --tick 100
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::watch::{Clock, ManualClock, RuleSet, WatchReport, Watcher};
use dm_obs::{InMemoryRecorder, Obs, Snapshot};
use std::sync::Arc;

/// Replay cadence (`--tick`) and sliding window (`--window`).
const TICK_MS: u64 = 100;
const WINDOW_MS: u64 = 300;
const SNAPS: usize = 6;

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// The scripted serving story behind the snapshot fixtures, as six
/// cumulative schema-3 snapshots:
///
/// 1. baseline traffic — fast scores, shallow queue;
/// 2. overload burst — slow scores, sheds, deep queue (rules breach);
/// 3. burst over — the queue drains, but the burst is still inside the
///    300 ms window (latency and shed-rate alerts mature to firing);
/// 4. quiet — the window still reaches back to the baseline frame;
/// 5. quiet — the window finally slides past the burst (alerts clear);
/// 6. quiet — resolved alerts return to ok.
fn scenario() -> Vec<String> {
    let source = InMemoryRecorder::new();
    let obs = Obs::new(&source);
    let mut snaps = Vec::with_capacity(SNAPS);
    // Tick 1: baseline.
    for _ in 0..4 {
        obs.value("serve.latency.score_ns", 500_000);
    }
    obs.counter("serve.req.admitted", 10);
    obs.gauge("serve.queue.depth", 1.0);
    snaps.push(source.snapshot().to_json());
    // Tick 2: overload burst.
    for _ in 0..4 {
        obs.value("serve.latency.score_ns", 5_000_000);
    }
    obs.counter("serve.shed.queue_full", 6);
    obs.gauge("serve.queue.depth", 6.0);
    snaps.push(source.snapshot().to_json());
    // Tick 3: the queue drains; nothing else moves.
    obs.gauge("serve.queue.depth", 1.0);
    snaps.push(source.snapshot().to_json());
    // Ticks 4-6: quiet.
    for _ in 3..SNAPS {
        snaps.push(source.snapshot().to_json());
    }
    snaps
}

/// Replays the committed fixtures exactly the way `dm watch` does:
/// parse the rule file, then per snapshot advance the manual clock one
/// tick and evaluate.
fn replay() -> WatchReport {
    let rules = RuleSet::from_json(&fixture("watch_rules.json")).expect("rule fixture parses");
    let clock = Arc::new(ManualClock::new(0));
    let mut watcher = Watcher::new(rules, WINDOW_MS, clock.clone() as Arc<dyn Clock>);
    let sink = InMemoryRecorder::new();
    let obs = Obs::new(&sink);
    let mut transitions = Vec::new();
    for i in 1..=SNAPS {
        let name = format!("watch_snap_{i}.json");
        let snap = Snapshot::from_json(&fixture(&name))
            .unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        clock.advance(TICK_MS);
        transitions.extend(watcher.tick(&snap, &obs));
    }
    WatchReport {
        transitions,
        statuses: watcher.statuses(),
    }
}

#[test]
fn report_matches_golden() {
    assert_eq!(
        replay().render(),
        fixture("watch_report.golden"),
        "watch table renderer drifted from the committed golden"
    );
}

/// The committed snapshots are exactly what the scripted scenario
/// produces, and each one round-trips through the schema-3 reader —
/// a hand-edit that breaks canonical form fails here.
#[test]
fn snapshot_fixtures_are_canonical() {
    let generated = scenario();
    for (i, expected) in generated.iter().enumerate() {
        let name = format!("watch_snap_{}.json", i + 1);
        let committed = fixture(&name);
        assert_eq!(&committed, expected, "{name} drifted from the scenario");
        let snap = Snapshot::from_json(&committed)
            .unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        assert_eq!(snap.to_json(), committed, "{name} is not canonical");
    }
}

/// The fixtures exercise a full alert lifecycle; this pins the shape so
/// a fixture edit can't silently hollow the golden test out.
#[test]
fn golden_covers_a_full_alert_lifecycle() {
    let report = replay();
    let rendered = report.render();
    assert!(rendered.starts_with("watch: 3 rules, 0 firing, 10 transitions"));
    for edge in [
        "ok -> pending",
        "pending -> firing",
        "pending -> ok",
        "firing -> resolved",
        "resolved -> ok",
    ] {
        assert!(rendered.contains(edge), "golden lost the `{edge}` edge");
    }
    // Both SLO rules complete the firing -> resolved -> ok cycle; the
    // queue-depth near-miss walks back from pending without firing.
    assert_eq!(report.transitions.len(), 10);
}

/// Rewrites every fixture from the scenario (run explicitly after an
/// intentional renderer or scenario change; see the module docs).
#[test]
#[ignore = "regenerates the committed fixtures in-place"]
fn regenerate_fixtures() {
    for (i, snap) in scenario().iter().enumerate() {
        std::fs::write(fixture_path(&format!("watch_snap_{}.json", i + 1)), snap).unwrap();
    }
    std::fs::write(fixture_path("watch_report.golden"), replay().render()).unwrap();
}
