//! Golden-file test for the `dm trace` renderers: a checked-in trace
//! dump (the `traces_to_json` wire format, exactly what the serve-chaos
//! CI job uploads as its artifact) and the exact list / show / chrome
//! renders it must produce. These strings are what `dm trace` prints
//! and what the CI trace-smoke step greps, so a formatting change is a
//! *product* change — it must show up in review as a golden-file edit,
//! not slip by.
//!
//! The dump fixture is canonically the output of [`scenario`] below
//! (one request per lifecycle shape: a clean complete, a queue-full
//! shed, a guard-tripped degrade pinned by a firing rule, and a
//! refresh-raced panic recovery). Regenerate everything after an
//! intentional change:
//!
//! ```text
//! cargo test -p dm-obs --test trace_golden -- --ignored regenerate_fixtures
//! ```
//!
//! The same renders are reproducible through the CLI:
//!
//! ```text
//! cargo run -p dm-bench --bin dm -- trace list \
//!     crates/obs/tests/fixtures/trace_dump.json
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::trace::{
    chrome_trace_request, render_list, render_show, traces_from_json, traces_to_json, RequestTrace,
    TraceEvent, TraceEventKind, TraceId,
};

const SEED: u64 = 0x90_1D;

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn ev(at_ns: u64, kind: TraceEventKind) -> TraceEvent {
    TraceEvent { at_ns, kind }
}

/// The scripted retained set behind the dump fixture — one trace per
/// lifecycle shape, with hand-picked durations that exercise every
/// duration unit the renderer formats (ns, us, ms).
fn scenario() -> Vec<RequestTrace> {
    vec![
        // 1: the boring happy path, kept by the 1-in-N sampler.
        RequestTrace {
            id: TraceId::mint(SEED, 1),
            seq: 1,
            endpoint: "predict".into(),
            events: vec![
                ev(0, TraceEventKind::Submitted),
                ev(0, TraceEventKind::Admitted { depth: 1 }),
                ev(
                    12_400,
                    TraceEventKind::Dequeued {
                        worker: 0,
                        wait_ns: 12_400,
                    },
                ),
                ev(
                    812_400,
                    TraceEventKind::Finished {
                        outcome: "complete".into(),
                    },
                ),
            ],
            queue_ns: 12_400,
            exec_ns: 800_000,
            total_ns: 812_400,
            pinned: Vec::new(),
        },
        // 2: shed at admission — never queued, answered in nanoseconds.
        RequestTrace {
            id: TraceId::mint(SEED, 2),
            seq: 2,
            endpoint: "predict".into(),
            events: vec![
                ev(0, TraceEventKind::Submitted),
                ev(
                    850,
                    TraceEventKind::Shed {
                        reason: "queue_full".into(),
                    },
                ),
            ],
            queue_ns: 0,
            exec_ns: 0,
            total_ns: 850,
            pinned: Vec::new(),
        },
        // 3: deadline trip, served degraded, pinned by a firing rule.
        RequestTrace {
            id: TraceId::mint(SEED, 3),
            seq: 3,
            endpoint: "recommend".into(),
            events: vec![
                ev(0, TraceEventKind::Submitted),
                ev(0, TraceEventKind::Admitted { depth: 3 }),
                ev(
                    2_100_000,
                    TraceEventKind::Dequeued {
                        worker: 1,
                        wait_ns: 2_100_000,
                    },
                ),
                ev(
                    2_900_000,
                    TraceEventKind::GuardTrip {
                        reason: "deadline".into(),
                    },
                ),
                ev(
                    2_950_000,
                    TraceEventKind::Degraded {
                        tier: "top_support".into(),
                    },
                ),
                ev(
                    3_000_000,
                    TraceEventKind::Finished {
                        outcome: "truncated".into(),
                    },
                ),
            ],
            queue_ns: 2_100_000,
            exec_ns: 900_000,
            total_ns: 3_000_000,
            pinned: vec!["latency-slo".into()],
        },
        // 4: artifact refresh lands while queued; the worker then dies
        // on it and the panic is recovered into a typed answer.
        RequestTrace {
            id: TraceId::mint(SEED, 4),
            seq: 4,
            endpoint: "score".into(),
            events: vec![
                ev(0, TraceEventKind::Submitted),
                ev(0, TraceEventKind::Admitted { depth: 2 }),
                ev(
                    55_000,
                    TraceEventKind::Dequeued {
                        worker: 0,
                        wait_ns: 55_000,
                    },
                ),
                ev(
                    55_000,
                    TraceEventKind::RefreshRace {
                        submitted_gen: 0,
                        served_gen: 1,
                    },
                ),
                ev(95_000, TraceEventKind::PanicRecovered),
                ev(
                    95_000,
                    TraceEventKind::Finished {
                        outcome: "panicked".into(),
                    },
                ),
            ],
            queue_ns: 55_000,
            exec_ns: 40_000,
            total_ns: 95_000,
            pinned: Vec::new(),
        },
    ]
}

#[test]
fn list_render_matches_golden() {
    assert_eq!(
        render_list(&scenario()),
        fixture("trace_list.golden"),
        "trace list renderer drifted from the committed golden"
    );
}

#[test]
fn show_render_matches_golden() {
    // The degraded trace is the richest lifecycle: queue/exec split,
    // guard trip, degradation tier, and a pin.
    assert_eq!(
        render_show(&scenario()[2]),
        fixture("trace_show.golden"),
        "trace show renderer drifted from the committed golden"
    );
}

#[test]
fn chrome_export_matches_golden() {
    assert_eq!(
        chrome_trace_request(&scenario()[2]),
        fixture("trace_chrome.golden"),
        "chrome trace exporter drifted from the committed golden"
    );
}

/// The committed dump is exactly what the scenario serializes to, and
/// it round-trips through the schema-1 reader — a hand-edit that
/// breaks canonical form fails here.
#[test]
fn dump_fixture_is_canonical() {
    let committed = fixture("trace_dump.json");
    assert_eq!(
        committed,
        traces_to_json(&scenario()),
        "trace_dump.json drifted from the scenario"
    );
    let parsed = traces_from_json(&committed).expect("fixture parses");
    assert_eq!(parsed, scenario(), "round-trip lost information");
    assert_eq!(
        traces_to_json(&parsed),
        committed,
        "re-encode not canonical"
    );
}

/// The fixture set covers every event kind the tracer can emit, so a
/// renderer change to any arm is guaranteed to move a golden file.
#[test]
fn fixtures_cover_every_event_kind() {
    let labels: std::collections::BTreeSet<&str> = scenario()
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.kind.label()))
        .collect();
    for kind in [
        "submitted",
        "admitted",
        "shed",
        "dequeued",
        "guard_trip",
        "degraded",
        "panic_recovered",
        "refresh_race",
        "finished",
    ] {
        assert!(labels.contains(kind), "no fixture trace emits `{kind}`");
    }
}

/// Rewrites every fixture from the scenario (run explicitly after an
/// intentional renderer or scenario change; see the module docs).
#[test]
#[ignore = "regenerates the committed fixtures in-place"]
fn regenerate_fixtures() {
    let traces = scenario();
    std::fs::write(fixture_path("trace_dump.json"), traces_to_json(&traces)).unwrap();
    std::fs::write(fixture_path("trace_list.golden"), render_list(&traces)).unwrap();
    std::fs::write(fixture_path("trace_show.golden"), render_show(&traces[2])).unwrap();
    std::fs::write(
        fixture_path("trace_chrome.golden"),
        chrome_trace_request(&traces[2]),
    )
    .unwrap();
}
