//! Golden-file tests for `dm_obs::ledger`'s diff renderers: two
//! checked-in fixture records and the exact table / JSON reports their
//! diff must produce. A formatting change here is a *product* change —
//! CI artifacts and review workflows consume these reports — so it
//! must show up in review as a golden-file edit, not slip by.
//!
//! Regenerate after an intentional change:
//!
//! ```text
//! cargo run -p dm-bench --bin dm -- ledger diff \
//!     crates/obs/tests/fixtures/record_a.json \
//!     crates/obs/tests/fixtures/record_b.json \
//!     > crates/obs/tests/fixtures/diff_a_b.table.golden   # and --json
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::json::parse;
use dm_obs::ledger::{check, diff, CheckPolicy, DiffKind, MetricClass, RunRecord};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn records() -> (RunRecord, RunRecord) {
    let a = RunRecord::from_json(&fixture("record_a.json")).expect("record_a parses");
    let b = RunRecord::from_json(&fixture("record_b.json")).expect("record_b parses");
    (a, b)
}

#[test]
fn diff_table_matches_golden() {
    let (a, b) = records();
    assert_eq!(
        diff(&a, &b).render_table(),
        fixture("diff_a_b.table.golden"),
        "table renderer drifted from the committed golden"
    );
}

#[test]
fn diff_json_matches_golden() {
    let (a, b) = records();
    let rendered = diff(&a, &b).render_json();
    assert_eq!(
        rendered,
        fixture("diff_a_b.json.golden"),
        "JSON renderer drifted from the committed golden"
    );
    // The machine form must actually be machine-readable.
    let doc = parse(&rendered).expect("diff JSON parses");
    let differences = doc.get("differences").and_then(|d| d.as_arr()).unwrap();
    assert_eq!(differences.len(), diff(&a, &b).entries.len());
}

/// The fixtures exercise every diff kind and both gate classes; this
/// pins the classification so a fixture edit can't silently hollow the
/// golden tests out.
#[test]
fn fixtures_cover_every_kind_and_class() {
    let (a, b) = records();
    let d = diff(&a, &b);
    for kind in [
        DiffKind::Counter,
        DiffKind::Gauge,
        DiffKind::EventCount,
        DiffKind::HistSum,
        DiffKind::TreeNs,
        DiffKind::WallMs,
        DiffKind::Truncated,
        DiffKind::Experiment,
    ] {
        assert!(
            d.entries.iter().any(|e| e.kind == kind),
            "fixture diff lost coverage of {kind:?}"
        );
    }
    assert!(d.entries_of(MetricClass::Exact).count() >= 5);
    assert!(d.entries_of(MetricClass::Noisy).count() >= 3);
    // And the gate agrees the drift is real: exact violations from the
    // counter/gauge/event changes, none of which a band can absorb.
    let report = check(&a, &b, &CheckPolicy::default());
    assert!(!report.passed());
    assert!(report.violations.len() >= 8);
}

/// The fixtures round-trip through the writer: `from_json ∘ to_json`
/// is the identity on them, so committed records and freshly written
/// ones never drift apart structurally.
#[test]
fn fixtures_round_trip() {
    let (a, b) = records();
    for record in [&a, &b] {
        let re = RunRecord::from_json(&record.to_json()).expect("re-parses");
        assert_eq!(&re, record);
    }
}

/// Every record committed under `ledger/` — the CI baseline and the
/// converted historical benchmarks — parses as a current-schema record
/// and re-serializes to the exact committed bytes. A hand-edit that
/// breaks canonical form (key order, number formatting) fails here, not
/// in CI's gate job.
#[test]
fn committed_ledger_records_parse_and_are_canonical() {
    let dir = format!("{}/../../ledger", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("ledger/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let raw = std::fs::read_to_string(&path).unwrap();
        let record = RunRecord::from_json(&raw)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert!(
            !record.experiments.is_empty(),
            "{} holds no experiments",
            path.display()
        );
        assert_eq!(
            record.to_json(),
            raw,
            "{} is not in canonical serialized form",
            path.display()
        );
    }
    assert!(seen >= 4, "expected baseline + 3 bench records, saw {seen}");
}
