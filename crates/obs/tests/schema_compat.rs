//! Snapshot-schema compatibility: each schema version is a strict
//! superset of the previous one. Consumers keyed on the v1 fields
//! (`schema`, `counters`, `gauges`, `spans`, `events`) must keep
//! working unchanged; the v2 additions (`histograms`, `tree`), the
//! v3 addition (`gauge_seq`) and the v4 addition (`exemplars`) only
//! append. A bump to `schema` (see DESIGN.md, "Metrics snapshot
//! schema") is required whenever an existing key changes shape — this
//! test is the tripwire.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::{InMemoryRecorder, Obs, Snapshot, TraceId, SNAPSHOT_SCHEMA};

/// Every top-level key, in the serialized order. New schema versions
/// append here (and only here).
const TOP_LEVEL_KEYS: [&str; 9] = [
    "schema",
    "counters",
    "gauges",
    "spans",
    "events",
    "histograms",
    "tree",
    "gauge_seq",
    "exemplars",
];

#[test]
fn v1_keys_and_shapes_are_unchanged() {
    let rec = InMemoryRecorder::new();
    let obs = Obs::new(&rec);
    obs.counter("assoc.apriori.passes", 3);
    obs.gauge("assoc.mem.ck_bytes", 4096.0);
    {
        let _outer = obs.span("experiment.e1");
        let _inner = obs.span("assoc.apriori.pass1");
    }
    obs.event("guard.trip", "deadline");
    let json = rec.snapshot().to_json();

    // The v1 field set, in the v1 order, with the v1 value shapes.
    assert!(json.starts_with(&format!("{{\n  \"schema\": {SNAPSHOT_SCHEMA},")));
    assert_eq!(
        SNAPSHOT_SCHEMA, 4,
        "bumping the schema? update DESIGN.md and this test"
    );
    assert!(json.contains("\"counters\": {"));
    assert!(json.contains("\"assoc.apriori.passes\": 3"));
    assert!(json.contains("\"gauges\": {"));
    assert!(json.contains("\"assoc.mem.ck_bytes\": 4096"));
    assert!(json.contains("\"spans\": {"));
    // Span aggregates keep their v1 per-name object shape.
    assert!(json.contains("\"count\": 1, \"total_ns\": "));
    assert!(json.contains("\"events\": ["));
    assert!(json.contains("\"name\": \"guard.trip\", \"detail\": \"deadline\""));
    // v3: every gauge carries a write ordinal, as a plain integer map.
    assert!(json.contains("\"gauge_seq\": {"));
    assert!(json.contains("\"assoc.mem.ck_bytes\": 1"));
    // v4: exemplars, a sparse per-histogram triple list (empty here —
    // nothing was traced).
    assert!(json.contains("\"exemplars\": {}"));

    // Later versions only append new keys, after the earlier ones.
    let order: Vec<usize> = TOP_LEVEL_KEYS
        .iter()
        .map(|k| {
            json.find(&format!("\"{k}\""))
                .unwrap_or_else(|| panic!("missing top-level key {k}"))
        })
        .collect();
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "top-level key order changed: {json}"
    );
}

/// The v1–v3 portion of the document must be byte-identical whether or
/// not the recorder ever produced schema-4 data: the v4 key is pure
/// append, and untraced recorders serialize exactly as a schema-3
/// writer did (modulo the version number itself).
#[test]
fn v1_to_v3_keys_are_byte_identical_under_schema_4() {
    let populate = |rec: &InMemoryRecorder, traced: bool| {
        let obs = Obs::new(rec);
        obs.counter("serve.req.admitted", 2);
        obs.gauge("serve.queue.depth", 1.0);
        obs.event("guard.trip", "deadline");
        if traced {
            obs.value_traced("serve.latency.predict_ns", 800, TraceId(0xAB));
        } else {
            obs.value("serve.latency.predict_ns", 800);
        }
    };
    let plain = InMemoryRecorder::new();
    populate(&plain, false);
    let traced = InMemoryRecorder::new();
    populate(&traced, true);
    let plain_json = plain.snapshot().to_json();
    let traced_json = traced.snapshot().to_json();

    // Everything before the appended v4 key is identical between a
    // traced and an untraced recorder fed the same observations.
    let cut = |s: &str| {
        s.find("\"exemplars\"")
            .map(|i| s[..i].to_owned())
            .expect("schema-4 document carries the exemplars key")
    };
    assert_eq!(cut(&plain_json), cut(&traced_json));
    // And the untraced document differs from a schema-3 writer's output
    // only in the version number and the appended empty key.
    let legacy_shape = plain_json
        .replace("\"schema\": 4", "\"schema\": 3")
        .replace(",\n  \"exemplars\": {}", "");
    assert!(legacy_shape.contains("\"gauge_seq\": {"));
    assert!(!legacy_shape.contains("exemplars"));
}

/// Documents written by every earlier schema version still parse, and
/// the keys they lack default to empty.
#[test]
fn older_schema_documents_parse_with_empty_v4_keys() {
    for schema in 1..=3u32 {
        let doc = format!(
            "{{\"schema\": {schema}, \"counters\": {{\"assoc.rules.emitted\": 4}}, \"gauges\": {{}}}}"
        );
        let snap = Snapshot::from_json(&doc).unwrap();
        assert_eq!(snap.counter("assoc.rules.emitted"), Some(4));
        assert!(snap.exemplars.is_empty(), "schema {schema}");
        assert!(snap.gauge_seq.is_empty() || schema >= 3);
    }
    // Schema 5 (the future) is rejected, exactly like any unknown.
    let err = Snapshot::from_json("{\"schema\": 5}").unwrap_err();
    assert!(err.contains("unsupported schema 5"), "{err}");
}

#[test]
fn empty_snapshot_keeps_every_top_level_key() {
    let rec = InMemoryRecorder::new();
    let json = rec.snapshot().to_json();
    for key in TOP_LEVEL_KEYS {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "empty snapshot must still carry \"{key}\": {json}"
        );
    }
}

#[test]
fn gauge_seq_names_match_gauges() {
    let rec = InMemoryRecorder::new();
    let obs = Obs::new(&rec);
    obs.gauge("stream.kmeans.inertia", 3.0);
    obs.gauge_max("serve.queue.depth_peak", 7.0);
    let snap = rec.snapshot();
    let gauges: Vec<&String> = snap.gauges.keys().collect();
    let seqs: Vec<&String> = snap.gauge_seq.keys().collect();
    assert_eq!(gauges, seqs, "gauge_seq must shadow the gauge key set");
}
