//! Snapshot-schema compatibility: each schema version is a strict
//! superset of the previous one. Consumers keyed on the v1 fields
//! (`schema`, `counters`, `gauges`, `spans`, `events`) must keep
//! working unchanged; the v2 additions (`histograms`, `tree`) and the
//! v3 addition (`gauge_seq`) only append. A bump to `schema` (see
//! DESIGN.md, "Metrics snapshot schema") is required whenever an
//! existing key changes shape — this test is the tripwire.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::{InMemoryRecorder, Obs, SNAPSHOT_SCHEMA};

#[test]
fn v1_keys_and_shapes_are_unchanged() {
    let rec = InMemoryRecorder::new();
    let obs = Obs::new(&rec);
    obs.counter("assoc.apriori.passes", 3);
    obs.gauge("assoc.mem.ck_bytes", 4096.0);
    {
        let _outer = obs.span("experiment.e1");
        let _inner = obs.span("assoc.apriori.pass1");
    }
    obs.event("guard.trip", "deadline");
    let json = rec.snapshot().to_json();

    // The v1 field set, in the v1 order, with the v1 value shapes.
    assert!(json.starts_with(&format!("{{\n  \"schema\": {SNAPSHOT_SCHEMA},")));
    assert_eq!(
        SNAPSHOT_SCHEMA, 3,
        "bumping the schema? update DESIGN.md and this test"
    );
    assert!(json.contains("\"counters\": {"));
    assert!(json.contains("\"assoc.apriori.passes\": 3"));
    assert!(json.contains("\"gauges\": {"));
    assert!(json.contains("\"assoc.mem.ck_bytes\": 4096"));
    assert!(json.contains("\"spans\": {"));
    // Span aggregates keep their v1 per-name object shape.
    assert!(json.contains("\"count\": 1, \"total_ns\": "));
    assert!(json.contains("\"events\": ["));
    assert!(json.contains("\"name\": \"guard.trip\", \"detail\": \"deadline\""));
    // v3: every gauge carries a write ordinal, as a plain integer map.
    assert!(json.contains("\"gauge_seq\": {"));
    assert!(json.contains("\"assoc.mem.ck_bytes\": 1"));

    // Later versions only append new keys, after the earlier ones.
    let order: Vec<usize> = [
        "\"schema\"",
        "\"counters\"",
        "\"gauges\"",
        "\"spans\"",
        "\"events\"",
        "\"histograms\"",
        "\"tree\"",
        "\"gauge_seq\"",
    ]
    .iter()
    .map(|k| {
        json.find(k)
            .unwrap_or_else(|| panic!("missing top-level key {k}"))
    })
    .collect();
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "top-level key order changed: {json}"
    );
}

#[test]
fn empty_snapshot_keeps_every_top_level_key() {
    let rec = InMemoryRecorder::new();
    let json = rec.snapshot().to_json();
    for key in [
        "schema",
        "counters",
        "gauges",
        "spans",
        "events",
        "histograms",
        "tree",
        "gauge_seq",
    ] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "empty snapshot must still carry \"{key}\": {json}"
        );
    }
}

#[test]
fn gauge_seq_names_match_gauges() {
    let rec = InMemoryRecorder::new();
    let obs = Obs::new(&rec);
    obs.gauge("stream.kmeans.inertia", 3.0);
    obs.gauge_max("serve.queue.depth_peak", 7.0);
    let snap = rec.snapshot();
    let gauges: Vec<&String> = snap.gauges.keys().collect();
    let seqs: Vec<&String> = snap.gauge_seq.keys().collect();
    assert_eq!(gauges, seqs, "gauge_seq must shadow the gauge key set");
}
