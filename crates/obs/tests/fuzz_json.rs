//! Fuzz-style robustness tests: `dm_obs::json::parse` over arbitrary
//! byte soup must never panic — every input yields a `Json` value or a
//! typed [`JsonError`] that renders with a byte offset. The parser
//! fronts everything the serving and ledger layers load from disk
//! (artifact bundles, run records, baselines), so totality here is
//! what turns file corruption into readable exit-2 errors instead of
//! crashes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::json::parse;
use proptest::prelude::*;

/// Characters weighted toward JSON's tricky corners: structure, string
/// escapes, unicode escapes, number edges, and the literal keywords.
const JSONISH: &[char] = &[
    '{', '}', '[', ']', ':', ',', '"', '\\', 'u', 'n', 't', 'f', 'a', 'l', 's', 'e', 'r', '0', '1',
    '9', '-', '+', '.', 'E', ' ', '\n', '\t', 'x', '\u{7f}', 'é',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_total_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255u8, 0..512)) {
        // Arbitrary bytes are usually not UTF-8; the lossy conversion
        // keeps the byte soup's shape while giving the parser the &str
        // it takes.
        let text = String::from_utf8_lossy(&bytes);
        match parse(&text) {
            Ok(value) => {
                // Whatever parsed must survive its own accessors.
                let _ = value.as_u64();
                let _ = value.as_f64();
                let _ = value.as_str();
            }
            Err(e) => {
                let rendered = e.to_string();
                prop_assert!(rendered.contains("byte"), "error locates itself: {rendered}");
                prop_assert!(e.offset <= text.len(), "offset stays in bounds");
            }
        }
    }

    #[test]
    fn parse_total_on_jsonish_text(picks in prop::collection::vec(0usize..JSONISH.len(), 0..256)) {
        let doc: String = picks.iter().map(|&i| JSONISH[i]).collect();
        match parse(&doc) {
            Ok(value) => {
                let _ = value.as_arr();
                let _ = value.as_obj();
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn parse_accepts_every_valid_number_literal(bits in 0u64..=u64::MAX) {
        // Round-trippable finite numbers must parse back to themselves.
        let n = f64::from_bits(bits);
        prop_assume!(n.is_finite());
        let doc = format!("{n}");
        let value = parse(&doc).expect("shortest-round-trip float parses");
        prop_assert_eq!(value.as_f64(), Some(n));
    }
}
