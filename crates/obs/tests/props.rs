//! Property tests for the duration histogram: the aggregate invariants
//! the exporters and the bench harness lean on (exact count/sum,
//! order-insensitive merging, monotone quantiles) hold for *arbitrary*
//! inputs, not just the hand-picked unit-test values.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// `count` and `sum` are exact regardless of bucketing.
    #[test]
    fn count_and_sum_are_exact(values in prop::collection::vec(0u64..(1u64 << 52), 0..300)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.sum, values.iter().sum::<u64>());
    }

    /// Merging is associative and agrees with recording everything into
    /// a single histogram, in any grouping.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..(1u64 << 52), 0..100),
        b in prop::collection::vec(0u64..(1u64 << 52), 0..100),
        c in prop::collection::vec(0u64..(1u64 << 52), 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Both equal the one-histogram recording.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist_of(&all));
    }

    /// Quantiles are monotone in `q` and bracketed by the recorded
    /// extremes' bucket upper bounds.
    #[test]
    fn quantiles_are_monotone(
        values in prop::collection::vec(0u64..(1u64 << 52), 1..300),
        qs in prop::collection::vec(0.0f64..1.0, 2..20),
    ) {
        let h = hist_of(&values);
        let mut sorted_qs = qs;
        sorted_qs.sort_by(f64::total_cmp);
        let quantiles: Vec<u64> = sorted_qs
            .iter()
            .map(|&q| h.quantile(q).expect("non-empty histogram"))
            .collect();
        for w in quantiles.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", quantiles);
        }
        let lo = h.quantile(0.0).unwrap();
        let hi = h.quantile(1.0).unwrap();
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        // A bucketed quantile reports the bucket's upper bound, so it
        // can only round *up*, and by strictly less than 2x.
        prop_assert!(lo >= min, "p0 {lo} below the minimum {min}");
        prop_assert!(hi >= max, "p100 {hi} below the maximum {max}");
        prop_assert!(lo <= min.saturating_mul(2).max(1), "p0 {lo} overshoots min {min}");
        prop_assert!(hi <= max.saturating_mul(2).max(1), "p100 {hi} overshoots max {max}");
    }
}
