//! Property tests for the run-ledger diff engine: the algebraic
//! invariants the regression gate's trustworthiness rests on, for
//! arbitrary records — `diff(A, A)` is empty (no false positives on
//! identical runs), counter deltas are antisymmetric under argument
//! swap (the report is a true signed comparison, not direction-biased),
//! and records survive a JSON round-trip bit-exactly (what the gate
//! reads is what the runner wrote).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::ledger::{diff, DiffKind, ExperimentRun, MetricDoc, RunRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small closed name table keeps generated records overlapping: two
/// independent samples share most keys, so diffs exercise the
/// changed/added/removed paths rather than being all-adds.
const NAMES: [&str; 6] = [
    "assoc.apriori.pass1.candidates",
    "assoc.apriori.pass2.candidates",
    "assoc.apriori.passes",
    "cluster.kmeans.iterations",
    "par.shard0.busy_ns",
    "knn.predict.queries",
];

fn counters(pairs: Vec<(usize, u64)>) -> BTreeMap<String, u64> {
    pairs
        .into_iter()
        .map(|(i, v)| (NAMES[i % NAMES.len()].to_owned(), v))
        .collect()
}

fn record_strategy() -> impl Strategy<Value = RunRecord> {
    let exp = prop::collection::vec((0usize..NAMES.len(), 0u64..1_000_000_000_000), 0..8);
    (exp.clone(), exp, 0.0f64..10_000.0).prop_map(|(c1, c2, wall)| {
        let mut record = RunRecord {
            git_rev: "prop".to_owned(),
            label: "e1 e2".to_owned(),
            ..Default::default()
        };
        for (id, pairs) in [("e1", c1), ("e2", c2)] {
            record.experiments.insert(
                id.to_owned(),
                ExperimentRun {
                    wall_ms: wall,
                    truncated: None,
                    metrics: MetricDoc {
                        counters: counters(pairs),
                        ..Default::default()
                    },
                },
            );
        }
        record
    })
}

/// The (experiment, name) → signed delta map of a diff's counter rows.
fn counter_deltas(a: &RunRecord, b: &RunRecord) -> BTreeMap<(String, String), Option<f64>> {
    diff(a, b)
        .entries
        .into_iter()
        .filter(|e| e.kind == DiffKind::Counter)
        .map(|e| ((e.experiment.clone(), e.name.clone()), e.delta()))
        .collect()
}

proptest! {
    /// A record never differs from itself: the gate cannot trip on a
    /// bit-identical rerun.
    #[test]
    fn diff_of_any_record_with_itself_is_empty(a in record_strategy()) {
        let d = diff(&a, &a);
        prop_assert!(d.is_empty(), "self-diff produced entries: {:?}", d.entries);
    }

    /// Swapping the arguments negates every counter delta and flags
    /// exactly the same (experiment, counter) set.
    #[test]
    fn diff_is_antisymmetric_on_counter_deltas(
        a in record_strategy(),
        b in record_strategy(),
    ) {
        let ab = counter_deltas(&a, &b);
        let ba = counter_deltas(&b, &a);
        prop_assert_eq!(
            ab.keys().collect::<Vec<_>>(),
            ba.keys().collect::<Vec<_>>(),
            "diff(A,B) and diff(B,A) flagged different counters"
        );
        for (key, delta_ab) in &ab {
            let delta_ba = &ba[key];
            match (delta_ab, delta_ba) {
                (Some(x), Some(y)) => prop_assert_eq!(
                    *x, -*y,
                    "delta not negated under swap for {:?}", key
                ),
                // One-sided entries (counter absent in one record) have
                // no delta in either direction.
                (None, None) => {}
                other => prop_assert!(false, "asymmetric sidedness for {:?}: {:?}", key, other),
            }
        }
    }

    /// What the runner writes is what the gate reads: serialization
    /// round-trips to an equal record, and re-serializes to identical
    /// bytes (the determinism the committed baseline relies on).
    #[test]
    fn record_round_trips_through_json(a in record_strategy()) {
        let json = a.to_json();
        let re = RunRecord::from_json(&json).expect("generated record parses back");
        prop_assert_eq!(&re, &a);
        prop_assert_eq!(re.to_json(), json);
    }
}
