//! Property tests for the `dm_obs::watch` alert state machine: for
//! *arbitrary* breach/clear sequences and durations the machine only
//! ever takes legal edges, never fires without a sustained breach,
//! never resolves without a sustained clear (the anti-flap
//! hysteresis), and replays deterministically — the invariants E17
//! gates at 0% and the serving reactions (degrade/refresh) rely on.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_obs::watch::{
    AlertState, Clock, Condition, ManualClock, RuleSet, SloRule, Transition, Watcher,
};
use dm_obs::{InMemoryRecorder, Obs, Recorder};
use proptest::prelude::*;
use std::sync::Arc;

/// Evaluation cadence: one tick per series element, 100 ms apart.
const TICK_MS: u64 = 100;

fn gauge_rule(for_ms: u64, clear_for_ms: u64) -> RuleSet {
    RuleSet::new(vec![SloRule::new(
        "props-level",
        Condition::GaugeAbove {
            metric: "props.level".into(),
            max: 5.0,
        },
    )
    .for_ms(for_ms)
    .clear_for_ms(clear_for_ms)])
}

/// Drives one boolean breach series through a fresh watcher (breach ->
/// gauge 9.0, clear -> gauge 1.0) and returns the state after each tick
/// plus the edges each tick produced. Tick `i` runs at `i * TICK_MS`.
fn drive(
    breaches: &[bool],
    for_ms: u64,
    clear_for_ms: u64,
) -> (Vec<AlertState>, Vec<Vec<Transition>>) {
    let clock = Arc::new(ManualClock::new(0));
    let mut w = Watcher::new(
        gauge_rule(for_ms, clear_for_ms),
        10_000,
        clock.clone() as Arc<dyn Clock>,
    );
    let source = InMemoryRecorder::new();
    let sink = InMemoryRecorder::new();
    let obs = Obs::new(&sink);
    let mut states = Vec::with_capacity(breaches.len());
    let mut per_tick = Vec::with_capacity(breaches.len());
    for &b in breaches {
        source.gauge("props.level", if b { 9.0 } else { 1.0 });
        per_tick.push(w.tick(&source.snapshot(), &obs));
        states.push(w.statuses()[0].state);
        clock.advance(TICK_MS);
    }
    (states, per_tick)
}

/// The only edges the machine may take (in particular: `Pending` can
/// never skip straight to `Resolved`, and `Firing` can never fall
/// straight back to `Ok`).
fn legal(from: AlertState, to: AlertState) -> bool {
    matches!(
        (from, to),
        (AlertState::Ok, AlertState::Pending)
            | (AlertState::Pending, AlertState::Firing)
            | (AlertState::Pending, AlertState::Ok)
            | (AlertState::Firing, AlertState::Resolved)
            | (AlertState::Resolved, AlertState::Pending)
            | (AlertState::Resolved, AlertState::Ok)
    )
}

proptest! {
    /// Under any breach sequence and any durations: at most one edge
    /// per tick, every edge is legal, every edge is justified by the
    /// breach history (firing needs a breach run covering `for_ms`,
    /// resolving needs a clean run covering `clear_for_ms`), and the
    /// status state always equals the fold of the edges.
    #[test]
    fn every_edge_is_legal_and_justified(
        breaches in prop::collection::vec((0u8..2).prop_map(|b| b == 1), 1..60),
        for_ticks in 0u64..4,
        clear_ticks in 0u64..4,
    ) {
        let (states, per_tick) = drive(&breaches, for_ticks * TICK_MS, clear_ticks * TICK_MS);
        let mut state = AlertState::Ok;
        for (i, edges) in per_tick.iter().enumerate() {
            prop_assert!(edges.len() <= 1, "tick {i} took {} edges", edges.len());
            if let Some(t) = edges.first() {
                prop_assert_eq!(t.from, state, "edge at tick {} left the wrong state", i);
                prop_assert!(legal(t.from, t.to), "illegal edge {:?} -> {:?}", t.from, t.to);
                prop_assert_eq!(t.at_ms, i as u64 * TICK_MS);
                match t.to {
                    // Entering Pending needs a breach *now*.
                    AlertState::Pending => prop_assert!(breaches[i]),
                    // Firing needs the breach held for the whole
                    // for_ms run ending now.
                    AlertState::Firing => {
                        let run = i.saturating_sub(for_ticks as usize)..=i;
                        for (j, &b) in breaches.iter().enumerate() {
                            prop_assert!(
                                b || !run.contains(&j),
                                "fired at tick {i} over a clean tick {j}"
                            );
                        }
                    }
                    // Resolving needs the clear held for the whole
                    // clear_for_ms run ending now: the hysteresis.
                    AlertState::Resolved => {
                        let run = i.saturating_sub(clear_ticks as usize)..=i;
                        for (j, &b) in breaches.iter().enumerate() {
                            prop_assert!(
                                !b || !run.contains(&j),
                                "resolved at tick {i} over a breach tick {j}"
                            );
                        }
                    }
                    AlertState::Ok => prop_assert!(!breaches[i]),
                }
                state = t.to;
            }
            prop_assert_eq!(states[i], state, "status diverged from the edge fold at tick {}", i);
        }
    }

    /// No breach, no transition: a clean series leaves the machine in
    /// `Ok` forever and emits zero edges.
    #[test]
    fn no_transition_without_a_breach(len in 1usize..80, for_ticks in 0u64..4, clear_ticks in 0u64..4) {
        let series = vec![false; len];
        let (states, per_tick) = drive(&series, for_ticks * TICK_MS, clear_ticks * TICK_MS);
        prop_assert!(states.iter().all(|s| *s == AlertState::Ok));
        prop_assert!(per_tick.iter().all(Vec::is_empty));
    }

    /// Anti-flap hysteresis: once firing, clean runs shorter than
    /// `clear_for_ms` — no matter how they alternate with fresh
    /// breaches — never resolve the alert. It stays `Firing` through
    /// the whole oscillation.
    #[test]
    fn hysteresis_prevents_flapping(
        runs in prop::collection::vec((1usize..3, 1usize..4), 1..10),
        clear_ticks in 3u64..6,
    ) {
        // Two breach ticks walk Ok -> Pending -> Firing (for_ms = 0),
        // then oscillate: every clean run is at most 2 ticks, strictly
        // shorter than the >= 3-tick clear requirement.
        let mut series = vec![true, true];
        for &(clean_len, breach_len) in &runs {
            series.extend(vec![false; clean_len]);
            series.extend(vec![true; breach_len]);
        }
        let (states, _) = drive(&series, 0, clear_ticks * TICK_MS);
        prop_assert_eq!(states[1], AlertState::Firing);
        for (i, s) in states.iter().enumerate().skip(1) {
            prop_assert_eq!(*s, AlertState::Firing, "flapped out of Firing at tick {}", i);
        }
    }

    /// Replay determinism: the same series under the same durations
    /// produces bit-identical edge sequences (what lets E17 gate
    /// transition counts at 0%).
    #[test]
    fn replay_is_deterministic(
        breaches in prop::collection::vec((0u8..2).prop_map(|b| b == 1), 1..60),
        for_ticks in 0u64..4,
        clear_ticks in 0u64..4,
    ) {
        let a = drive(&breaches, for_ticks * TICK_MS, clear_ticks * TICK_MS);
        let b = drive(&breaches, for_ticks * TICK_MS, clear_ticks * TICK_MS);
        prop_assert_eq!(a, b);
    }
}
