//! # dm-obs
//!
//! Zero-cost observability for the workspace's long-running miners
//! (re-exported by the facade as `dm_core::obs`).
//!
//! The canonical evaluations this repo reconstructs — Apriori's per-pass
//! candidate tables, the AprioriTid `C̄_k`-vs-database memory crossover,
//! k-means inertia curves, shard-imbalance ratios — are defined in terms
//! of *internal counters and sizes*, not wall-clock time. This crate is
//! the substrate that surfaces them: a dependency-free [`Recorder`]
//! trait with
//!
//! * [`NoopRecorder`] — the default on every ungoverned path; every
//!   method is an empty body and [`Recorder::enabled`] returns `false`,
//!   so instrumentation sites skip even the metric-name formatting
//!   (measured ≤2% overhead on the assoc/cluster benches, see
//!   `ledger/bench-obs.json`);
//! * [`InMemoryRecorder`] — thread-safe aggregation into counters,
//!   gauges, log-bucketed duration/value [`Histogram`]s, a hierarchical
//!   span *tree*, and an ordered event log, snapshot as a stable,
//!   sorted JSON document ([`Snapshot::to_json`], schema version
//!   [`SNAPSHOT_SCHEMA`]).
//!
//! ## Hierarchical spans
//!
//! [`Obs::span`] returns an RAII guard; guards nest through a
//! thread-local parent stack, so `experiment → pass → shard` trees fall
//! out of ordinary lexical scoping. Crossing a thread boundary (the
//! `dm_par` workers) is explicit: capture [`Obs::current_span`] on the
//! spawning thread and open the child with [`Obs::span_child`]. The
//! flat per-name aggregates (`Snapshot::spans`) are retained alongside
//! the tree, now derived from full histograms so p50/p99 are
//! recoverable. With a disabled recorder no clock is read, no name is
//! formatted and the thread-local stack is never touched.
//!
//! ## Memory accounting
//!
//! The [`HeapSize`] trait estimates the heap bytes of the big
//! intermediate structures (hash-trees, `C̄_k` tid-lists, CF-tree
//! leaves, distance caches); algorithms publish them once per pass as
//! `*.mem_bytes` gauges, with [`Obs::gauge_max`] keeping family-level
//! high-water marks.
//!
//! ## Exporters
//!
//! [`export`] renders a [`Snapshot`] for standard tools with no new
//! dependencies: chrome://tracing trace-event JSON
//! ([`export::chrome_trace`]), folded stacks for flamegraph
//! ([`export::folded_stacks`]), and Prometheus text exposition
//! ([`export::prometheus`]). The `experiments` binary exposes them as
//! `--trace`, `--folded` and `--prom`.
//!
//! ## Metric naming
//!
//! Names are hierarchical, dot-separated, lowercase:
//! `<subsystem>.<algorithm>.<scope>.<metric>` — e.g.
//! `assoc.apriori.pass3.candidates`, `cluster.kmeans.iter.inertia`,
//! `par.shard2.busy_ns`, `guard.trip`. The full registry (name, unit,
//! emitting algorithm) lives in `DESIGN.md`.
//!
//! ## Wiring
//!
//! Recorders ride on `dm_guard::Guard`, which already flows through
//! every governed entry point and every `dm_par` worker: attach one
//! with `Guard::with_recorder`, and instrumentation sites reach it via
//! `Guard::obs()` → [`Obs`]. Ungoverned entry points construct
//! `Guard::unlimited()` (no recorder), so they pay only an
//! `Option`-is-`None` check per emission site.
//!
//! ```
//! use dm_obs::{InMemoryRecorder, Obs, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(InMemoryRecorder::new());
//! let obs = Obs::new(rec.as_ref());
//! obs.counter("assoc.apriori.pass3.candidates", 44);
//! {
//!     let _pass = obs.span("assoc.apriori.pass3"); // nests via TLS
//!     obs.value("par.shard.items", 1000);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("assoc.apriori.pass3.candidates"), Some(44));
//! assert_eq!(snap.tree.len(), 1);
//! assert!(snap.to_json().contains("\"schema\": 4"));
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod compose;
pub mod export;
pub mod heap;
pub mod hist;
pub mod json;
pub mod ledger;
pub mod trace;
pub mod watch;

pub use compose::{ProgressRecorder, ProgressSink, StderrSink, TeeRecorder};
pub use heap::HeapSize;
pub use hist::{Exemplar, Histogram};
pub use trace::TraceId;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// Version of the [`Snapshot`] JSON schema (the `"schema"` key). Bump
/// it whenever a key is added, removed or its meaning changes, and
/// record the change in `DESIGN.md` ("Metrics snapshot schema").
/// Version 4 appended `exemplars`; readers accept 1..=4.
pub const SNAPSHOT_SCHEMA: u32 = 4;

/// Identifier of one node in a recorder's span tree. `SpanId::ROOT`
/// (zero) is "no parent": a top-level span, or a recorder that does not
/// keep a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent/top-level parent id.
    pub const ROOT: SpanId = SpanId(0);

    /// Whether this id names a real span (non-root).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// A metrics sink. Implementations must be cheap and thread-safe: the
/// same recorder is shared by reference across parallel shards.
///
/// All methods take `&self`; implementations use interior mutability
/// (or, like [`NoopRecorder`], no state at all). The span-tree and
/// histogram methods have defaults that degrade gracefully, so a
/// minimal recorder only implements the four flat primitives.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Instrumentation sites check
    /// this before formatting dynamic metric names, so a disabled
    /// recorder costs neither allocation nor clock reads.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records one completed timed span of `elapsed_ns` nanoseconds
    /// under `name` (aggregated into the name's duration histogram).
    fn span_ns(&self, name: &str, elapsed_ns: u64);

    /// Appends an entry to the ordered event log.
    fn event(&self, name: &str, detail: &str);

    /// Raises the named gauge to `value` if it is below it (high-water
    /// mark). Defaults to a plain overwrite for recorders without
    /// max-merge support.
    fn gauge_max(&self, name: &str, value: f64) {
        self.gauge(name, value);
    }

    /// Records one sample into the named value histogram. Defaults to
    /// dropping the sample.
    fn value(&self, name: &str, v: u64) {
        let _ = (name, v);
    }

    /// Records one sample into the named value histogram *and* marks
    /// the bucket it lands in with `trace` as its exemplar (last write
    /// wins). Defaults to plain [`Recorder::value`] for recorders
    /// without exemplar storage.
    fn value_traced(&self, name: &str, v: u64, trace: TraceId) {
        let _ = trace;
        self.value(name, v);
    }

    /// Opens a span in the hierarchical span tree under `parent`
    /// (`SpanId::ROOT` for a top-level span), returning its id.
    /// Recorders without a tree return `SpanId::ROOT`, which callers
    /// treat as "no tree node was created".
    fn span_begin(&self, name: &str, parent: SpanId) -> SpanId {
        let _ = (name, parent);
        SpanId::ROOT
    }

    /// Closes span `id` after `elapsed_ns`, also feeding the name's
    /// duration histogram. The default forwards to [`Recorder::span_ns`]
    /// so tree-less recorders still aggregate durations.
    fn span_end(&self, id: SpanId, name: &str, elapsed_ns: u64) {
        let _ = id;
        self.span_ns(name, elapsed_ns);
    }
}

/// The do-nothing recorder: every method compiles to an empty body and
/// [`Recorder::enabled`] is `false`, so callers skip name formatting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn counter(&self, _name: &str, _delta: u64) {}
    #[inline]
    fn gauge(&self, _name: &str, _value: f64) {}
    #[inline]
    fn span_ns(&self, _name: &str, _elapsed_ns: u64) {}
    #[inline]
    fn event(&self, _name: &str, _detail: &str) {}
}

/// The process-wide noop instance [`Obs::noop`] hands out.
pub static NOOP: NoopRecorder = NoopRecorder;

/// Aggregated timings of one span name — the schema-1 view, derived
/// from the name's full [`Histogram`] (count and sum are exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
}

/// One entry of the ordered event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// 0-based sequence number (emission order).
    pub seq: u64,
    /// Event name (same hierarchical scheme as metrics).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

/// One node of the hierarchical span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// This span's id (1-based; ids are assigned in open order).
    pub id: u64,
    /// Parent span id, `0` for top-level spans.
    pub parent: u64,
    /// Span name (same hierarchical scheme as metrics).
    pub name: String,
    /// Dense index of the opening thread (0-based, in first-seen order).
    pub tid: u32,
    /// Open timestamp, nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Span duration; `None` while the span is still open (or was
    /// leaked without closing).
    pub dur_ns: Option<u64>,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// Per-gauge write ordinal: the value of the recorder-wide gauge
    /// write counter at that gauge's most recent write. Gauges are
    /// last-write-wins, so without this a reader cannot tell a fresh
    /// write of the same value from no write at all.
    gauge_seq: BTreeMap<String, u64>,
    /// Recorder-wide monotonic gauge write counter (feeds `gauge_seq`).
    gauge_writes: u64,
    hists: BTreeMap<String, Histogram>,
    /// Per-histogram bucket exemplars: the most recent traced
    /// observation per bucket (schema 4).
    exemplars: BTreeMap<String, BTreeMap<usize, Exemplar>>,
    events: Vec<Event>,
    nodes: Vec<SpanNode>,
    /// Dense thread-id table: `threads[i]` opened spans with `tid = i`.
    threads: Vec<ThreadId>,
}

impl State {
    fn touch_gauge(&mut self, name: &str) {
        self.gauge_writes += 1;
        let seq = self.gauge_writes;
        self.gauge_seq.insert(name.to_owned(), seq);
    }
}

impl State {
    fn dense_tid(&mut self, t: ThreadId) -> u32 {
        match self.threads.iter().position(|&x| x == t) {
            Some(i) => i as u32,
            None => {
                self.threads.push(t);
                (self.threads.len() - 1) as u32
            }
        }
    }
}

/// A thread-safe recorder that aggregates everything in memory.
///
/// Counters sum, gauges keep the last written value (high-water via
/// [`Recorder::gauge_max`]), span durations and explicit values
/// aggregate into power-of-two [`Histogram`]s, the span tree keeps
/// every opened span with its parent and timestamps, events append in
/// order. Every mutation takes the internal lock exactly once.
/// [`InMemoryRecorder::snapshot`] returns a point-in-time copy;
/// [`Snapshot::to_json`] serializes it in a stable format (keys sorted,
/// schema versioned — see `DESIGN.md`).
#[derive(Debug)]
pub struct InMemoryRecorder {
    state: Mutex<State>,
    /// Time origin of `SpanNode::start_ns`.
    epoch: Instant,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self {
            state: Mutex::new(State::default()),
            epoch: Instant::now(),
        }
    }
}

/// Nanoseconds since `t0`, saturating at `u64::MAX`.
fn ns_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl InMemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<T>(&self, f: impl FnOnce(&mut State) -> T) -> T {
        // Mutex poisoning can only happen if a panic escaped mid-record;
        // metrics are best-effort, so keep recording into the inner state.
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut state)
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.with_state(|s| Snapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            spans: s
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        SpanStat {
                            count: h.count,
                            total_ns: h.sum,
                        },
                    )
                })
                .collect(),
            histograms: s.hists.clone(),
            exemplars: s.exemplars.clone(),
            events: s.events.clone(),
            tree: s.nodes.clone(),
            gauge_seq: s.gauge_seq.clone(),
        })
    }
}

impl Recorder for InMemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.with_state(|s| {
            *s.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }

    fn gauge(&self, name: &str, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(name.to_owned(), value);
            s.touch_gauge(name);
        });
    }

    fn gauge_max(&self, name: &str, value: f64) {
        self.with_state(|s| {
            s.gauges
                .entry(name.to_owned())
                .and_modify(|g| *g = g.max(value))
                .or_insert(value);
            s.touch_gauge(name);
        });
    }

    fn span_ns(&self, name: &str, elapsed_ns: u64) {
        self.with_state(|s| {
            s.hists
                .entry(name.to_owned())
                .or_default()
                .record(elapsed_ns);
        });
    }

    fn value(&self, name: &str, v: u64) {
        self.with_state(|s| {
            s.hists.entry(name.to_owned()).or_default().record(v);
        });
    }

    fn value_traced(&self, name: &str, v: u64, trace: TraceId) {
        self.with_state(|s| {
            s.hists.entry(name.to_owned()).or_default().record(v);
            s.exemplars.entry(name.to_owned()).or_default().insert(
                hist::bucket_index(v),
                Exemplar {
                    trace_id: trace.0,
                    value: v,
                },
            );
        });
    }

    fn event(&self, name: &str, detail: &str) {
        // Single lock acquisition covers both the sequence-number read
        // and the append, so concurrent writers can neither duplicate
        // nor skip a `seq`.
        self.with_state(|s| {
            let seq = s.events.len() as u64;
            s.events.push(Event {
                seq,
                name: name.to_owned(),
                detail: detail.to_owned(),
            });
        });
    }

    fn span_begin(&self, name: &str, parent: SpanId) -> SpanId {
        let start_ns = ns_since(self.epoch);
        let thread = std::thread::current().id();
        self.with_state(|s| {
            let id = s.nodes.len() as u64 + 1;
            // A parent id from a different recorder (or a stale one)
            // cannot be resolved; fall back to top-level.
            let parent = if parent.0 <= s.nodes.len() as u64 {
                parent.0
            } else {
                0
            };
            let tid = s.dense_tid(thread);
            s.nodes.push(SpanNode {
                id,
                parent,
                name: name.to_owned(),
                tid,
                start_ns,
                dur_ns: None,
            });
            SpanId(id)
        })
    }

    fn span_end(&self, id: SpanId, name: &str, elapsed_ns: u64) {
        self.with_state(|s| {
            s.hists
                .entry(name.to_owned())
                .or_default()
                .record(elapsed_ns);
            if id.is_some() {
                if let Some(node) = s.nodes.get_mut(id.0 as usize - 1) {
                    if node.dur_ns.is_none() {
                        node.dur_ns = Some(elapsed_ns);
                    }
                }
            }
        });
    }
}

/// A point-in-time copy of an [`InMemoryRecorder`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<String, f64>,
    /// Span aggregates by name (schema-1 view, derived from
    /// [`Snapshot::histograms`]; count/sum are exact).
    pub spans: BTreeMap<String, SpanStat>,
    /// Full duration/value histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// The ordered event log.
    pub events: Vec<Event>,
    /// The hierarchical span tree, in open order (`id` = index + 1).
    pub tree: Vec<SpanNode>,
    /// Per-gauge write ordinal (schema 3): the recorder-wide gauge
    /// write counter at each gauge's last write. Strictly increases
    /// with every write to any gauge, so two snapshots of the same
    /// recorder order gauge observations even when the value repeats.
    pub gauge_seq: BTreeMap<String, u64>,
    /// Per-histogram bucket exemplars (schema 4): for each histogram
    /// fed through [`Recorder::value_traced`], the most recent traced
    /// observation per bucket.
    pub exemplars: BTreeMap<String, BTreeMap<usize, Exemplar>>,
}

impl Snapshot {
    /// The value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The last written value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The duration/value histogram recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The exemplar marking `bucket` of histogram `name`, if a traced
    /// observation ever landed there.
    pub fn exemplar(&self, name: &str, bucket: usize) -> Option<Exemplar> {
        self.exemplars
            .get(name)
            .and_then(|m| m.get(&bucket))
            .copied()
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.tree.is_empty()
    }

    /// All counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
            .collect()
    }

    /// All gauges whose name starts with `prefix`, in name order.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(&str, f64)> {
        self.gauges
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
            .collect()
    }

    /// Serializes the snapshot as a JSON document.
    ///
    /// The format is stable and versioned (`"schema"`, currently
    /// [`SNAPSHOT_SCHEMA`]): one object whose schema-1 keys
    /// (`counters`, `gauges`, `spans`, `events`) are unchanged from
    /// version 1, plus `histograms` (sparse power-of-two buckets) and
    /// `tree` (the span hierarchy) from version 2, plus `gauge_seq`
    /// (per-gauge write ordinals) from version 3, plus `exemplars`
    /// (sparse `[bucket, trace_id, value]` triples per histogram) from
    /// version 4. Map keys sorted lexicographically; non-finite gauge
    /// values serialize as `null`.
    /// See `DESIGN.md` ("Metrics snapshot schema") for the full schema
    /// and the bump rule.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\n  \"schema\": {SNAPSHOT_SCHEMA},");
        out.push_str("\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_string(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json_string(k), json_f64(*v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, (k, v)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"total_ns\": {}}}",
                json_string(k),
                v.count,
                v.total_ns
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\": {}, \"name\": {}, \"detail\": {}}}",
                e.seq,
                json_string(&e.name),
                json_string(&e.detail)
            );
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_string(k),
                h.count,
                h.sum
            );
            for (j, (bucket, count)) in h.nonzero_buckets().into_iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{bucket}, {count}]");
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"tree\": [");
        for (i, n) in self.tree.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let dur = match n.dur_ns {
                Some(d) => d.to_string(),
                None => "null".into(),
            };
            let _ = write!(
                out,
                "{sep}\n    {{\"id\": {}, \"parent\": {}, \"name\": {}, \"tid\": {}, \"start_ns\": {}, \"dur_ns\": {dur}}}",
                n.id,
                n.parent,
                json_string(&n.name),
                n.tid,
                n.start_ns
            );
        }
        if !self.tree.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"gauge_seq\": {");
        for (i, (k, v)) in self.gauge_seq.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_string(k));
        }
        if !self.gauge_seq.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"exemplars\": {");
        for (i, (k, buckets)) in self.exemplars.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: [", json_string(k));
            for (j, (bucket, e)) in buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{bucket}, {}, {}]", e.trace_id, e.value);
            }
            out.push(']');
        }
        if !self.exemplars.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }

    /// Parses a snapshot serialized by [`Snapshot::to_json`] — the
    /// replay path behind `dm watch`, where archived snapshots feed a
    /// [`watch::MetricView`] exactly as live ones would. Any schema
    /// version up to [`SNAPSHOT_SCHEMA`] is accepted; keys an older
    /// version lacks default to empty (a schema-2 document simply has
    /// no `gauge_seq`, and the view synthesizes ordinals).
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        use crate::json::Json;
        let doc = json::parse(input).map_err(|e| format!("snapshot: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("snapshot: missing or non-integer `schema`")?;
        if schema == 0 || schema > u64::from(SNAPSHOT_SCHEMA) {
            return Err(format!(
                "snapshot: unsupported schema {schema} (this build reads <= {SNAPSHOT_SCHEMA})"
            ));
        }

        fn obj_entries<'a>(
            doc: &'a Json,
            key: &str,
        ) -> Result<Vec<(&'a String, &'a Json)>, String> {
            match doc.get(key) {
                None => Ok(Vec::new()),
                Some(v) => Ok(v
                    .as_obj()
                    .ok_or_else(|| format!("snapshot: `{key}` is not an object"))?
                    .iter()
                    .collect()),
            }
        }
        fn arr_entries<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
            match doc.get(key) {
                None => Ok(&[]),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| format!("snapshot: `{key}` is not an array")),
            }
        }
        fn field_u64(v: &Json, ctx: &str, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("snapshot: {ctx} missing integer `{key}`"))
        }
        fn field_str(v: &Json, ctx: &str, key: &str) -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("snapshot: {ctx} missing string `{key}`"))?
                .to_owned())
        }

        let mut snap = Snapshot::default();
        for (k, v) in obj_entries(&doc, "counters")? {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("snapshot: counter `{k}` is not a u64"))?;
            snap.counters.insert(k.clone(), n);
        }
        for (k, v) in obj_entries(&doc, "gauges")? {
            // Non-finite gauge values serialize as `null`.
            let n = match v {
                Json::Null => f64::NAN,
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("snapshot: gauge `{k}` is not a number"))?,
            };
            snap.gauges.insert(k.clone(), n);
        }
        for (k, v) in obj_entries(&doc, "spans")? {
            snap.spans.insert(
                k.clone(),
                SpanStat {
                    count: field_u64(v, "span", "count")?,
                    total_ns: field_u64(v, "span", "total_ns")?,
                },
            );
        }
        for e in arr_entries(&doc, "events")? {
            snap.events.push(Event {
                seq: field_u64(e, "event", "seq")?,
                name: field_str(e, "event", "name")?,
                detail: field_str(e, "event", "detail")?,
            });
        }
        for (k, v) in obj_entries(&doc, "histograms")? {
            let mut h = Histogram::new();
            h.count = field_u64(v, "histogram", "count")?;
            h.sum = field_u64(v, "histogram", "sum")?;
            for pair in v
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("snapshot: histogram `{k}` missing `buckets`"))?
            {
                let [i, c] = pair.as_arr().unwrap_or(&[]) else {
                    return Err(format!(
                        "snapshot: histogram `{k}` bucket is not an [index, count] pair"
                    ));
                };
                let (i, c) = i
                    .as_u64()
                    .zip(c.as_u64())
                    .ok_or_else(|| format!("snapshot: histogram `{k}` bucket is not integers"))?;
                let slot = h
                    .buckets
                    .get_mut(i as usize)
                    .ok_or_else(|| format!("snapshot: histogram `{k}` bucket index {i} >= 65"))?;
                *slot = c;
            }
            snap.histograms.insert(k.clone(), h);
        }
        for n in arr_entries(&doc, "tree")? {
            snap.tree.push(SpanNode {
                id: field_u64(n, "tree node", "id")?,
                parent: field_u64(n, "tree node", "parent")?,
                name: field_str(n, "tree node", "name")?,
                tid: u32::try_from(field_u64(n, "tree node", "tid")?)
                    .map_err(|_| "snapshot: tree node `tid` exceeds u32".to_string())?,
                start_ns: field_u64(n, "tree node", "start_ns")?,
                dur_ns: match n.get("dur_ns") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or("snapshot: tree node `dur_ns` is not a u64")?,
                    ),
                },
            });
        }
        for (k, v) in obj_entries(&doc, "gauge_seq")? {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("snapshot: gauge_seq `{k}` is not a u64"))?;
            snap.gauge_seq.insert(k.clone(), n);
        }
        for (k, v) in obj_entries(&doc, "exemplars")? {
            let mut buckets = BTreeMap::new();
            for triple in v
                .as_arr()
                .ok_or_else(|| format!("snapshot: exemplars `{k}` is not an array"))?
            {
                let [b, t, val] = triple.as_arr().unwrap_or(&[]) else {
                    return Err(format!(
                        "snapshot: exemplars `{k}` entry is not a [bucket, trace_id, value] triple"
                    ));
                };
                let (b, t, val) = match (b.as_u64(), t.as_u64(), val.as_u64()) {
                    (Some(b), Some(t), Some(val)) => (b, t, val),
                    _ => return Err(format!("snapshot: exemplars `{k}` entry is not integers")),
                };
                if b as usize >= hist::N_BUCKETS {
                    return Err(format!("snapshot: exemplars `{k}` bucket index {b} >= 65"));
                }
                buckets.insert(
                    b as usize,
                    Exemplar {
                        trace_id: t,
                        value: val,
                    },
                );
            }
            snap.exemplars.insert(k.clone(), buckets);
        }
        Ok(snap)
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps enough digits to round-trip and always includes
        // a decimal point or exponent, which every JSON parser accepts.
        format!("{v:?}")
    } else {
        "null".into()
    }
}

thread_local! {
    /// Per-thread span stack: `(recorder address, span id)` pairs. The
    /// address disambiguates recorders when two are live on one thread,
    /// so a span can only parent under its own recorder's spans.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A borrowed handle to a recorder — the type instrumentation sites work
/// with. `Copy`, two words wide, and cheap to pass around.
///
/// All emission helpers check [`Recorder::enabled`] first, so with the
/// [`NoopRecorder`] behind it every call reduces to a predictable branch.
#[derive(Clone, Copy)]
pub struct Obs<'a> {
    rec: &'a dyn Recorder,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.enabled())
            .finish()
    }
}

impl<'a> Obs<'a> {
    /// Wraps a recorder reference.
    pub fn new(rec: &'a dyn Recorder) -> Self {
        Self { rec }
    }

    /// A handle to the process-wide [`NoopRecorder`].
    pub fn noop() -> Obs<'static> {
        Obs { rec: &NOOP }
    }

    /// The address of the underlying recorder, used to key the
    /// thread-local span stack.
    fn addr(&self) -> usize {
        self.rec as *const dyn Recorder as *const () as usize
    }

    /// Whether emissions are kept (see [`Recorder::enabled`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if self.rec.enabled() {
            self.rec.counter(name, delta);
        }
    }

    /// Adds `delta` to a counter whose name is built lazily — the
    /// `format_args!` is only rendered when the recorder is enabled.
    #[inline]
    pub fn counter_fmt(&self, name: std::fmt::Arguments<'_>, delta: u64) {
        if self.rec.enabled() {
            self.rec.counter(&name.to_string(), delta);
        }
    }

    /// Sets the named gauge.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if self.rec.enabled() {
            self.rec.gauge(name, value);
        }
    }

    /// Sets a gauge with a lazily formatted name.
    #[inline]
    pub fn gauge_fmt(&self, name: std::fmt::Arguments<'_>, value: f64) {
        if self.rec.enabled() {
            self.rec.gauge(&name.to_string(), value);
        }
    }

    /// Raises the named high-water gauge to `value` if it is below it.
    #[inline]
    pub fn gauge_max(&self, name: &str, value: f64) {
        if self.rec.enabled() {
            self.rec.gauge_max(name, value);
        }
    }

    /// High-water gauge with a lazily formatted name.
    #[inline]
    pub fn gauge_max_fmt(&self, name: std::fmt::Arguments<'_>, value: f64) {
        if self.rec.enabled() {
            self.rec.gauge_max(&name.to_string(), value);
        }
    }

    /// Records one sample into the named value histogram.
    #[inline]
    pub fn value(&self, name: &str, v: u64) {
        if self.rec.enabled() {
            self.rec.value(name, v);
        }
    }

    /// Value-histogram sample with a lazily formatted name.
    #[inline]
    pub fn value_fmt(&self, name: std::fmt::Arguments<'_>, v: u64) {
        if self.rec.enabled() {
            self.rec.value(&name.to_string(), v);
        }
    }

    /// Value-histogram sample carrying a trace exemplar (see
    /// [`Recorder::value_traced`]).
    #[inline]
    pub fn value_traced(&self, name: &str, v: u64, trace: TraceId) {
        if self.rec.enabled() {
            self.rec.value_traced(name, v, trace);
        }
    }

    /// Traced value sample with a lazily formatted name.
    #[inline]
    pub fn value_traced_fmt(&self, name: std::fmt::Arguments<'_>, v: u64, trace: TraceId) {
        if self.rec.enabled() {
            self.rec.value_traced(&name.to_string(), v, trace);
        }
    }

    /// Appends an event to the log.
    #[inline]
    pub fn event(&self, name: &str, detail: &str) {
        if self.rec.enabled() {
            self.rec.event(name, detail);
        }
    }

    /// The innermost span this recorder has open on the current thread
    /// (`SpanId::ROOT` if none) — capture it before spawning workers
    /// and hand it to [`Obs::span_child`] so cross-thread spans parent
    /// correctly.
    pub fn current_span(&self) -> SpanId {
        if !self.rec.enabled() {
            return SpanId::ROOT;
        }
        let addr = self.addr();
        SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(a, _)| *a == addr)
                .map_or(SpanId::ROOT, |&(_, id)| SpanId(id))
        })
    }

    /// Starts a timed span that records on drop, parented under the
    /// current thread's innermost open span. With a disabled recorder,
    /// no clock is read, nothing is allocated and the thread-local
    /// stack is untouched.
    #[inline]
    pub fn span(&self, name: &str) -> Span<'a> {
        if self.rec.enabled() {
            self.begin_span(name.to_owned(), self.current_span())
        } else {
            Span { active: None }
        }
    }

    /// [`Obs::span`] with a lazily formatted name.
    #[inline]
    pub fn span_fmt(&self, name: std::fmt::Arguments<'_>) -> Span<'a> {
        if self.rec.enabled() {
            self.begin_span(name.to_string(), self.current_span())
        } else {
            Span { active: None }
        }
    }

    /// Starts a timed span under an explicit parent — the cross-thread
    /// variant: capture [`Obs::current_span`] on the spawning thread,
    /// then open the worker's span with it.
    #[inline]
    pub fn span_child(&self, name: &str, parent: SpanId) -> Span<'a> {
        if self.rec.enabled() {
            self.begin_span(name.to_owned(), parent)
        } else {
            Span { active: None }
        }
    }

    /// [`Obs::span_child`] with a lazily formatted name.
    #[inline]
    pub fn span_child_fmt(&self, name: std::fmt::Arguments<'_>, parent: SpanId) -> Span<'a> {
        if self.rec.enabled() {
            self.begin_span(name.to_string(), parent)
        } else {
            Span { active: None }
        }
    }

    fn begin_span(&self, name: String, parent: SpanId) -> Span<'a> {
        let id = self.rec.span_begin(&name, parent);
        let addr = self.addr();
        if id.is_some() {
            SPAN_STACK.with(|stack| stack.borrow_mut().push((addr, id.0)));
        }
        Span {
            active: Some(ActiveSpan {
                rec: self.rec,
                name,
                start: Instant::now(),
                id,
                addr,
            }),
        }
    }

    /// Records an already-measured span duration (histogram only; no
    /// tree node).
    #[inline]
    pub fn span_ns(&self, name: &str, elapsed_ns: u64) {
        if self.rec.enabled() {
            self.rec.span_ns(name, elapsed_ns);
        }
    }

    /// Records a span with a lazily formatted name.
    #[inline]
    pub fn span_ns_fmt(&self, name: std::fmt::Arguments<'_>, elapsed_ns: u64) {
        if self.rec.enabled() {
            self.rec.span_ns(&name.to_string(), elapsed_ns);
        }
    }
}

struct ActiveSpan<'a> {
    rec: &'a dyn Recorder,
    name: String,
    start: Instant,
    id: SpanId,
    addr: usize,
}

/// A guard for a timed span: closes the span (tree node + duration
/// histogram) when dropped. Obtained from [`Obs::span`] /
/// [`Obs::span_child`].
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Span<'_> {
    /// The tree id of this span (`SpanId::ROOT` when the recorder is
    /// disabled or keeps no tree). Hand it to [`Obs::span_child`] to
    /// parent work on another thread under this span.
    pub fn id(&self) -> SpanId {
        self.active.as_ref().map_or(SpanId::ROOT, |a| a.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let ns = ns_since(span.start);
            if span.id.is_some() {
                SPAN_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    // Strict nesting makes this the top entry; search
                    // defensively in case a guard was dropped out of
                    // order.
                    if let Some(pos) = stack
                        .iter()
                        .rposition(|&(a, id)| a == span.addr && id == span.id.0)
                    {
                        stack.remove(pos);
                    }
                });
            }
            span.rec.span_end(span.id, &span.name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noop_is_disabled_and_silent() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.counter("a.b", 1);
        obs.gauge("a.g", 1.0);
        obs.gauge_max("a.hw", 2.0);
        obs.value("a.v", 3);
        obs.event("a.e", "x");
        obs.counter_fmt(format_args!("a.{}", 3), 1);
        assert_eq!(obs.current_span(), SpanId::ROOT);
        drop(obs.span("a.s"));
    }

    #[test]
    fn counters_sum_and_gauges_overwrite() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.pass1.candidates", 10);
        obs.counter("assoc.apriori.pass1.candidates", 5);
        obs.gauge("cluster.kmeans.iter.inertia", 10.0);
        obs.gauge("cluster.kmeans.iter.inertia", 3.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("assoc.apriori.pass1.candidates"), Some(15));
        assert_eq!(snap.gauge("cluster.kmeans.iter.inertia"), Some(3.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauge_max_keeps_high_water() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.gauge_max("assoc.mem.ck_bytes", 100.0);
        obs.gauge_max("assoc.mem.ck_bytes", 400.0);
        obs.gauge_max("assoc.mem.ck_bytes", 250.0);
        assert_eq!(rec.snapshot().gauge("assoc.mem.ck_bytes"), Some(400.0));
    }

    #[test]
    fn spans_aggregate_count_and_total() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.span_ns("knn.predict.batch", 100);
        obs.span_ns("knn.predict.batch", 50);
        {
            let _s = obs.span("knn.predict.batch");
        }
        let snap = rec.snapshot();
        let stat = snap.spans["knn.predict.batch"];
        assert_eq!(stat.count, 3);
        assert!(stat.total_ns >= 150);
        // The histogram behind the flat view has the same exact count/sum.
        let hist = snap.histogram("knn.predict.batch").unwrap();
        assert_eq!(hist.count, stat.count);
        assert_eq!(hist.sum, stat.total_ns);
    }

    #[test]
    fn span_tree_nests_lexically() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        {
            let outer = obs.span("experiment.e1");
            assert_eq!(obs.current_span(), outer.id());
            {
                let _pass = obs.span("assoc.apriori.pass1");
                let _inner = obs.span("assoc.apriori.pass1.count");
            }
            let _pass2 = obs.span("assoc.apriori.pass2");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.tree.len(), 4);
        let by_name = |n: &str| snap.tree.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("experiment.e1");
        assert_eq!(outer.parent, 0);
        assert_eq!(by_name("assoc.apriori.pass1").parent, outer.id);
        assert_eq!(by_name("assoc.apriori.pass2").parent, outer.id);
        assert_eq!(
            by_name("assoc.apriori.pass1.count").parent,
            by_name("assoc.apriori.pass1").id
        );
        assert!(snap.tree.iter().all(|s| s.dur_ns.is_some()));
        // The stack fully unwinds.
        assert_eq!(obs.current_span(), SpanId::ROOT);
    }

    #[test]
    fn span_child_parents_across_threads() {
        let rec = Arc::new(InMemoryRecorder::new());
        let obs = Obs::new(rec.as_ref());
        {
            let _pass = obs.span("assoc.apriori.pass2");
            let parent = obs.current_span();
            std::thread::scope(|s| {
                for w in 0..2 {
                    let rec = Arc::clone(&rec);
                    s.spawn(move || {
                        let obs = Obs::new(rec.as_ref());
                        let _shard = obs.span_child_fmt(format_args!("par.shard{w}"), parent);
                    });
                }
            });
        }
        let snap = rec.snapshot();
        let pass = snap
            .tree
            .iter()
            .find(|s| s.name == "assoc.apriori.pass2")
            .unwrap();
        let shards: Vec<_> = snap
            .tree
            .iter()
            .filter(|s| s.name.starts_with("par.shard"))
            .collect();
        assert_eq!(shards.len(), 2);
        for s in shards {
            assert_eq!(s.parent, pass.id, "shard span parents under the pass");
            assert_ne!(s.tid, pass.tid, "shard ran on a worker thread");
        }
    }

    #[test]
    fn events_keep_order() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.event("guard.trip", "work-unit budget exhausted");
        obs.event("guard.trip", "cancelled");
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[0].detail, "work-unit budget exhausted");
        assert_eq!(snap.events[1].seq, 1);
    }

    #[test]
    fn concurrent_event_appends_keep_dense_unique_seqs() {
        let rec = Arc::new(InMemoryRecorder::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    let obs = Obs::new(rec.as_ref());
                    for i in 0..250 {
                        obs.event("e", &format!("{t}:{i}"));
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 1000);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "seqs are dense and unique");
        }
    }

    #[test]
    fn gauge_seq_orders_writes_even_when_values_repeat() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.gauge("stream.kmeans.inertia", 5.0);
        obs.gauge("serve.queue.depth", 2.0);
        let first = rec.snapshot();
        // Rewriting the same value still advances the write ordinal.
        obs.gauge("stream.kmeans.inertia", 5.0);
        let second = rec.snapshot();
        assert_eq!(first.gauge("stream.kmeans.inertia"), Some(5.0));
        assert_eq!(second.gauge("stream.kmeans.inertia"), Some(5.0));
        let s1 = first.gauge_seq["stream.kmeans.inertia"];
        let s2 = second.gauge_seq["stream.kmeans.inertia"];
        assert!(s2 > s1, "rewrite must advance the ordinal ({s1} -> {s2})");
        // gauge_max writes advance it too.
        obs.gauge_max("serve.queue.depth", 1.0); // below the high water
        let third = rec.snapshot();
        assert_eq!(third.gauge("serve.queue.depth"), Some(2.0));
        assert!(third.gauge_seq["serve.queue.depth"] > second.gauge_seq["serve.queue.depth"]);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.passes", 3);
        obs.gauge("stream.kmeans.inertia", 41.5);
        obs.gauge("cluster.kmeans.sse", f64::NAN); // serializes as null
        obs.value("serve.latency.predict_ns", 1_234);
        obs.value("serve.latency.predict_ns", 0);
        obs.event("guard.trip", "deadline");
        {
            let _outer = obs.span("experiment.e1");
            let _inner = obs.span("assoc.apriori.pass");
        }
        let snap = rec.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        // NaN breaks PartialEq on the whole snapshot; compare around it.
        assert!(parsed.gauge("cluster.kmeans.sse").unwrap().is_nan());
        let mut snap = snap;
        let mut parsed = parsed;
        snap.gauges.remove("cluster.kmeans.sse");
        parsed.gauges.remove("cluster.kmeans.sse");
        assert_eq!(snap, parsed);
    }

    #[test]
    fn snapshot_from_json_rejects_unknown_schema_and_garbage() {
        let err = Snapshot::from_json("{\"schema\": 99}").unwrap_err();
        assert!(err.contains("unsupported schema 99"), "{err}");
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("nonsense").is_err());
        // A schema-2 document (no gauge_seq) still parses.
        let old = Snapshot::from_json(
            "{\"schema\": 2, \"counters\": {\"assoc.rules.emitted\": 4}, \"gauges\": {}}",
        )
        .unwrap();
        assert_eq!(old.counter("assoc.rules.emitted"), Some(4));
        assert!(old.gauge_seq.is_empty());
    }

    #[test]
    fn prefix_query_returns_sorted_matches() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.pass2.candidates", 6);
        obs.counter("assoc.apriori.pass1.candidates", 5);
        obs.counter("assoc.ais.pass1.candidates", 5);
        let snap = rec.snapshot();
        let got = snap.counters_with_prefix("assoc.apriori.");
        assert_eq!(
            got,
            vec![
                ("assoc.apriori.pass1.candidates", 5),
                ("assoc.apriori.pass2.candidates", 6)
            ]
        );
    }

    #[test]
    fn json_snapshot_is_stable_and_escaped() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("b", 2);
        obs.counter("a", 1);
        obs.gauge("g.nan", f64::NAN);
        obs.gauge("g.v", 1.5);
        obs.span_ns("s", 42);
        obs.event("e", "line1\n\"quoted\"");
        let json = rec.snapshot().to_json();
        // Keys sorted: "a" before "b".
        assert!(json.find("\"a\": 1").unwrap() < json.find("\"b\": 2").unwrap());
        assert!(json.contains("\"g.nan\": null"));
        assert!(json.contains("\"g.v\": 1.5"));
        assert!(json.contains("{\"count\": 1, \"total_ns\": 42}"));
        assert!(json.contains("\\n\\\"quoted\\\""));
        // Same content -> same serialization.
        assert_eq!(json, rec.snapshot().to_json());
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = InMemoryRecorder::new().snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": 4"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"tree\": []"));
        assert!(json.contains("\"gauge_seq\": {}"));
        assert!(json.contains("\"exemplars\": {}"));
    }

    #[test]
    fn value_traced_keeps_last_exemplar_per_bucket() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        // Two values in the same bucket (le 1023): last trace wins.
        obs.value_traced("serve.latency.predict_ns", 600, TraceId(0xA));
        obs.value_traced("serve.latency.predict_ns", 900, TraceId(0xB));
        // A different bucket keeps its own exemplar.
        obs.value_traced("serve.latency.predict_ns", 3, TraceId(0xC));
        // Untraced samples never touch exemplars.
        obs.value("serve.latency.predict_ns", 700);
        let snap = rec.snapshot();
        let h = snap.histogram("serve.latency.predict_ns").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(
            snap.exemplar("serve.latency.predict_ns", hist::bucket_index(900)),
            Some(Exemplar {
                trace_id: 0xB,
                value: 900
            })
        );
        assert_eq!(
            snap.exemplar("serve.latency.predict_ns", hist::bucket_index(3)),
            Some(Exemplar {
                trace_id: 0xC,
                value: 3
            })
        );
        assert_eq!(snap.exemplar("serve.latency.predict_ns", 0), None);
        // Exemplars round-trip through the schema-4 document.
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn shared_across_threads() {
        let rec = Arc::new(InMemoryRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    let obs = Obs::new(rec.as_ref());
                    for _ in 0..1000 {
                        obs.counter("par.shard0.items", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("par.shard0.items"), Some(4000));
    }
}
