//! # dm-obs
//!
//! Zero-cost observability for the workspace's long-running miners
//! (re-exported by the facade as `dm_core::obs`).
//!
//! The canonical evaluations this repo reconstructs — Apriori's per-pass
//! candidate tables, k-means inertia curves, shard-imbalance ratios —
//! are defined in terms of *internal counters*, not wall-clock time.
//! This crate is the substrate that surfaces them: a dependency-free
//! [`Recorder`] trait with
//!
//! * [`NoopRecorder`] — the default on every ungoverned path; every
//!   method is an empty body and [`Recorder::enabled`] returns `false`,
//!   so instrumentation sites skip even the metric-name formatting
//!   (measured ≤2% overhead on the assoc/cluster benches, see
//!   `BENCH_obs.json`);
//! * [`InMemoryRecorder`] — thread-safe aggregation into counters,
//!   gauges, span timings and an ordered event log, snapshot as a
//!   stable, sorted JSON document ([`Snapshot::to_json`]).
//!
//! ## Metric naming
//!
//! Names are hierarchical, dot-separated, lowercase:
//! `<subsystem>.<algorithm>.<scope>.<metric>` — e.g.
//! `assoc.apriori.pass3.candidates`, `cluster.kmeans.iter.inertia`,
//! `par.shard2.busy_ns`, `guard.trip`. The full registry (name, unit,
//! emitting algorithm) lives in `DESIGN.md`.
//!
//! ## Wiring
//!
//! Recorders ride on `dm_guard::Guard`, which already flows through
//! every governed entry point and every `dm_par` worker: attach one
//! with `Guard::with_recorder`, and instrumentation sites reach it via
//! `Guard::obs()` → [`Obs`]. Ungoverned entry points construct
//! `Guard::unlimited()` (no recorder), so they pay only an
//! `Option`-is-`None` check per emission site.
//!
//! ```
//! use dm_obs::{InMemoryRecorder, Obs, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(InMemoryRecorder::new());
//! let obs = Obs::new(rec.as_ref());
//! obs.counter("assoc.apriori.pass3.candidates", 44);
//! obs.gauge("cluster.kmeans.iter.inertia", 3038.5);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("assoc.apriori.pass3.candidates"), Some(44));
//! assert!(snap.to_json().contains("\"counters\""));
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// A metrics sink. Implementations must be cheap and thread-safe: the
/// same recorder is shared by reference across parallel shards.
///
/// All methods take `&self`; implementations use interior mutability
/// (or, like [`NoopRecorder`], no state at all).
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Instrumentation sites check
    /// this before formatting dynamic metric names, so a disabled
    /// recorder costs neither allocation nor clock reads.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records one completed timed span of `elapsed_ns` nanoseconds
    /// under `name` (aggregated as count + total).
    fn span_ns(&self, name: &str, elapsed_ns: u64);

    /// Appends an entry to the ordered event log.
    fn event(&self, name: &str, detail: &str);
}

/// The do-nothing recorder: every method compiles to an empty body and
/// [`Recorder::enabled`] is `false`, so callers skip name formatting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn counter(&self, _name: &str, _delta: u64) {}
    #[inline]
    fn gauge(&self, _name: &str, _value: f64) {}
    #[inline]
    fn span_ns(&self, _name: &str, _elapsed_ns: u64) {}
    #[inline]
    fn event(&self, _name: &str, _detail: &str) {}
}

/// The process-wide noop instance [`Obs::noop`] hands out.
pub static NOOP: NoopRecorder = NoopRecorder;

/// Aggregated timings of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
}

/// One entry of the ordered event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// 0-based sequence number (emission order).
    pub seq: u64,
    /// Event name (same hierarchical scheme as metrics).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, SpanStat>,
    events: Vec<Event>,
}

/// A thread-safe recorder that aggregates everything in memory.
///
/// Counters sum, gauges keep the last written value, spans aggregate to
/// `(count, total_ns)`, events append in order. [`InMemoryRecorder::snapshot`]
/// returns a point-in-time copy; [`Snapshot::to_json`] serializes it in a
/// stable format (keys sorted, schema documented in `DESIGN.md`).
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    state: Mutex<State>,
}

impl InMemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<T>(&self, f: impl FnOnce(&mut State) -> T) -> T {
        // Mutex poisoning can only happen if a panic escaped mid-record;
        // metrics are best-effort, so keep recording into the inner state.
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut state)
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.with_state(|s| Snapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            spans: s.spans.clone(),
            events: s.events.clone(),
        })
    }
}

impl Recorder for InMemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.with_state(|s| {
            *s.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }

    fn gauge(&self, name: &str, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(name.to_owned(), value);
        });
    }

    fn span_ns(&self, name: &str, elapsed_ns: u64) {
        self.with_state(|s| {
            let stat = s.spans.entry(name.to_owned()).or_default();
            stat.count += 1;
            stat.total_ns += elapsed_ns;
        });
    }

    fn event(&self, name: &str, detail: &str) {
        self.with_state(|s| {
            let seq = s.events.len() as u64;
            s.events.push(Event {
                seq,
                name: name.to_owned(),
                detail: detail.to_owned(),
            });
        });
    }
}

/// A point-in-time copy of an [`InMemoryRecorder`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<String, f64>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanStat>,
    /// The ordered event log.
    pub events: Vec<Event>,
}

impl Snapshot {
    /// The value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The last written value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
    }

    /// All counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
            .collect()
    }

    /// Serializes the snapshot as a JSON document.
    ///
    /// The format is stable: one object with `counters`, `gauges`,
    /// `spans` and `events` keys; map keys sorted lexicographically;
    /// non-finite gauge values serialize as `null`. See `DESIGN.md`
    /// ("Metrics snapshot schema") for the full schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_string(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json_string(k), json_f64(*v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, (k, v)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"total_ns\": {}}}",
                json_string(k),
                v.count,
                v.total_ns
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\": {}, \"name\": {}, \"detail\": {}}}",
                e.seq,
                json_string(&e.name),
                json_string(&e.detail)
            );
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps enough digits to round-trip and always includes
        // a decimal point or exponent, which every JSON parser accepts.
        format!("{v:?}")
    } else {
        "null".into()
    }
}

/// A borrowed handle to a recorder — the type instrumentation sites work
/// with. `Copy`, two words wide, and cheap to pass around.
///
/// All emission helpers check [`Recorder::enabled`] first, so with the
/// [`NoopRecorder`] behind it every call reduces to a predictable branch.
#[derive(Clone, Copy)]
pub struct Obs<'a> {
    rec: &'a dyn Recorder,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.enabled())
            .finish()
    }
}

impl<'a> Obs<'a> {
    /// Wraps a recorder reference.
    pub fn new(rec: &'a dyn Recorder) -> Self {
        Self { rec }
    }

    /// A handle to the process-wide [`NoopRecorder`].
    pub fn noop() -> Obs<'static> {
        Obs { rec: &NOOP }
    }

    /// Whether emissions are kept (see [`Recorder::enabled`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if self.rec.enabled() {
            self.rec.counter(name, delta);
        }
    }

    /// Adds `delta` to a counter whose name is built lazily — the
    /// `format_args!` is only rendered when the recorder is enabled.
    #[inline]
    pub fn counter_fmt(&self, name: std::fmt::Arguments<'_>, delta: u64) {
        if self.rec.enabled() {
            self.rec.counter(&name.to_string(), delta);
        }
    }

    /// Sets the named gauge.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if self.rec.enabled() {
            self.rec.gauge(name, value);
        }
    }

    /// Sets a gauge with a lazily formatted name.
    #[inline]
    pub fn gauge_fmt(&self, name: std::fmt::Arguments<'_>, value: f64) {
        if self.rec.enabled() {
            self.rec.gauge(&name.to_string(), value);
        }
    }

    /// Appends an event to the log.
    #[inline]
    pub fn event(&self, name: &str, detail: &str) {
        if self.rec.enabled() {
            self.rec.event(name, detail);
        }
    }

    /// Starts a timed span that records on drop. With a disabled
    /// recorder, no clock is read and nothing is recorded.
    #[inline]
    pub fn span(&self, name: &str) -> Span<'a> {
        if self.rec.enabled() {
            Span {
                active: Some(ActiveSpan {
                    rec: self.rec,
                    name: name.to_owned(),
                    start: Instant::now(),
                }),
            }
        } else {
            Span { active: None }
        }
    }

    /// Records an already-measured span duration.
    #[inline]
    pub fn span_ns(&self, name: &str, elapsed_ns: u64) {
        if self.rec.enabled() {
            self.rec.span_ns(name, elapsed_ns);
        }
    }

    /// Records a span with a lazily formatted name.
    #[inline]
    pub fn span_ns_fmt(&self, name: std::fmt::Arguments<'_>, elapsed_ns: u64) {
        if self.rec.enabled() {
            self.rec.span_ns(&name.to_string(), elapsed_ns);
        }
    }
}

struct ActiveSpan<'a> {
    rec: &'a dyn Recorder,
    name: String,
    start: Instant,
}

/// A guard for a timed span: records elapsed time to the recorder when
/// dropped. Obtained from [`Obs::span`].
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let ns = span.start.elapsed().as_nanos();
            span.rec
                .span_ns(&span.name, u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noop_is_disabled_and_silent() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.counter("a.b", 1);
        obs.gauge("a.g", 1.0);
        obs.event("a.e", "x");
        obs.counter_fmt(format_args!("a.{}", 3), 1);
        drop(obs.span("a.s"));
    }

    #[test]
    fn counters_sum_and_gauges_overwrite() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.pass1.candidates", 10);
        obs.counter("assoc.apriori.pass1.candidates", 5);
        obs.gauge("cluster.kmeans.iter.inertia", 10.0);
        obs.gauge("cluster.kmeans.iter.inertia", 3.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("assoc.apriori.pass1.candidates"), Some(15));
        assert_eq!(snap.gauge("cluster.kmeans.iter.inertia"), Some(3.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn spans_aggregate_count_and_total() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.span_ns("knn.predict.batch", 100);
        obs.span_ns("knn.predict.batch", 50);
        {
            let _s = obs.span("knn.predict.batch");
        }
        let snap = rec.snapshot();
        let stat = snap.spans["knn.predict.batch"];
        assert_eq!(stat.count, 3);
        assert!(stat.total_ns >= 150);
    }

    #[test]
    fn events_keep_order() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.event("guard.trip", "work-unit budget exhausted");
        obs.event("guard.trip", "cancelled");
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[0].detail, "work-unit budget exhausted");
        assert_eq!(snap.events[1].seq, 1);
    }

    #[test]
    fn prefix_query_returns_sorted_matches() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.pass2.candidates", 6);
        obs.counter("assoc.apriori.pass1.candidates", 5);
        obs.counter("assoc.ais.pass1.candidates", 5);
        let snap = rec.snapshot();
        let got = snap.counters_with_prefix("assoc.apriori.");
        assert_eq!(
            got,
            vec![
                ("assoc.apriori.pass1.candidates", 5),
                ("assoc.apriori.pass2.candidates", 6)
            ]
        );
    }

    #[test]
    fn json_snapshot_is_stable_and_escaped() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("b", 2);
        obs.counter("a", 1);
        obs.gauge("g.nan", f64::NAN);
        obs.gauge("g.v", 1.5);
        obs.span_ns("s", 42);
        obs.event("e", "line1\n\"quoted\"");
        let json = rec.snapshot().to_json();
        // Keys sorted: "a" before "b".
        assert!(json.find("\"a\": 1").unwrap() < json.find("\"b\": 2").unwrap());
        assert!(json.contains("\"g.nan\": null"));
        assert!(json.contains("\"g.v\": 1.5"));
        assert!(json.contains("{\"count\": 1, \"total_ns\": 42}"));
        assert!(json.contains("\\n\\\"quoted\\\""));
        // Same content -> same serialization.
        assert_eq!(json, rec.snapshot().to_json());
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = InMemoryRecorder::new().snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
    }

    #[test]
    fn shared_across_threads() {
        let rec = Arc::new(InMemoryRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    let obs = Obs::new(rec.as_ref());
                    for _ in 0..1000 {
                        obs.counter("par.shard0.items", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("par.shard0.items"), Some(4000));
    }
}
