//! A minimal, dependency-free JSON reader for the run ledger.
//!
//! The workspace *writes* JSON by hand ([`crate::Snapshot::to_json`],
//! the exporters) but until the ledger nothing ever had to *read* it
//! back. This module is the missing half: a strict recursive-descent
//! parser producing a [`Json`] tree. Numbers keep their raw source
//! token so `u64` counters round-trip exactly — going through `f64`
//! would silently corrupt counts above 2^53, which real candidate
//! counters can reach on adversarial workloads.
//!
//! Scope is deliberately small: no serde-style typed decoding, no
//! streaming, inputs are trusted repo artifacts (ledger records,
//! metric snapshots). Malformed input yields a [`JsonError`] with a
//! byte offset, never a panic.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`), which
/// matches the deterministic sorted-key serialization used everywhere
/// in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its raw source token (e.g. `"42"`, `"1.5"`,
    /// `"-3e-2"`) so integer precision is never lost.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64`, when it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as `f64` (numbers only; `null` is *not* a number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str, so
                    // a char boundary always exists at `pos`).
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            // Safe: the prefix was just validated.
                            match std::str::from_utf8(&rest[..e.valid_up_to()]) {
                                Ok(s) => s,
                                Err(_) => return Err(self.err("invalid UTF-8")),
                            }
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..end];
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digit"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let big = u64::MAX;
        let parsed = parse(&big.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
        // Above 2^53 an f64 detour would corrupt this.
        let above_f64 = (1u64 << 53) + 1;
        assert_eq!(
            parse(&above_f64.to_string()).unwrap().as_u64(),
            Some(above_f64)
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": null}, "x"], "c": {"d": 2.5}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""line1\n\"quoted\"\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("line1\n\"quoted\"A😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "{}extra",
            "[1 2]",
            "\"\\q\"",
            "1.",
            "-",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_snapshot_output() {
        use crate::{InMemoryRecorder, Obs};
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.pass1.candidates", 44);
        obs.gauge("g.nan", f64::NAN);
        obs.gauge("g.v", 2.25);
        obs.value("par.shard.items", 100);
        obs.event("guard.trip", "detail \"quoted\"");
        {
            let _s = obs.span("assoc.apriori.pass1");
        }
        let json = rec.snapshot().to_json();
        let v = parse(&json).expect("snapshot JSON parses");
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(4));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("assoc.apriori.pass1.candidates")
                .unwrap()
                .as_u64(),
            Some(44)
        );
        assert_eq!(v.get("gauges").unwrap().get("g.nan").unwrap(), &Json::Null);
        assert_eq!(
            v.get("gauges").unwrap().get("g.v").unwrap().as_f64(),
            Some(2.25)
        );
    }
}
