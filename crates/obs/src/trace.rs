//! Request-scoped tracing with tail-based sampling.
//!
//! The rest of this crate is *aggregate*: counters, histograms, span
//! rollups. They can say "p99 regressed" but not *which request* did it
//! or where its time went. This module is the per-request half: a
//! server mints a deterministic [`TraceId`] per submission
//! ([`TraceId::mint`] from a configured seed and the request sequence
//! number, so a replayed seeded run reproduces the exact same ids), the
//! request accumulates typed [`TraceEvent`]s across its lifecycle
//! (admission/shed, queue wait, worker pickup, guard trips,
//! degradation-tier selection, panic recovery, artifact refresh races),
//! and on completion the assembled [`RequestTrace`] is offered to a
//! [`TraceStore`].
//!
//! ## Tail-based sampling
//!
//! The store decides retention *after* the request finishes, when the
//! interesting-or-boring verdict is known:
//!
//! * **always retain** anomalous traces — any shed, guard trip
//!   (deadline/work-budget/cancel), degraded tier, or recovered panic;
//! * **slowest-k** — up to `slowest_k` of the slowest boring traces per
//!   shard are kept (a later, slower one demotes the fastest of them);
//! * **probabilistic** — 1-in-`sample_every` boring traces are kept by
//!   id hash (deterministic, since ids are seeded);
//! * everything else is dropped.
//!
//! Retained traces live in bounded per-worker ring buffers under a
//! store-wide byte budget, accounted with [`HeapSize`]. Under pressure
//! the *lowest class, oldest* trace is evicted first (sampled → slow →
//! anomalous → pinned), so boring traces never push out evidence.
//! [`TraceStore::pin_recent`] upgrades everything currently retained to
//! the pinned class — the `watch` integration calls it on a rule's
//! Ok→Firing edge so every fired alert ships with the traces that
//! overlapped it.
//!
//! Store decisions emit `trace.retained` / `trace.dropped` /
//! `trace.evicted` / `trace.pinned` counters and the `trace.bytes`
//! gauge through the [`Obs`] passed to each call.
//!
//! ## Files and rendering
//!
//! [`TraceStore::to_json`] dumps the retained set as a stable,
//! schema-versioned document ([`TRACE_SCHEMA`]); [`traces_from_json`]
//! reads it back. [`render_list`] / [`render_show`] /
//! [`chrome_trace_request`] are the presentation layer behind the
//! `dm trace` CLI: a filterable table, a single request's lifecycle,
//! and a chrome://tracing export whose slices carry the `trace_id` as
//! args (the "linked slice" form Perfetto surfaces next to exemplars).

use crate::heap::HeapSize;
use crate::json::{self, Json};
use crate::{json_string, Obs};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Version of the trace-file schema (the `"schema"` key written by
/// [`TraceStore::to_json`]). Same bump rule as the snapshot schema:
/// append-only keys, record changes in `DESIGN.md`.
pub const TRACE_SCHEMA: u32 = 1;

/// The default store-wide byte budget (1 MiB).
pub const DEFAULT_BYTE_BUDGET: usize = 1 << 20;

/// SplitMix64 — the id-mixing permutation. A bijection on `u64`, so
/// distinct (seed, seq) pairs mint distinct ids for a fixed seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Identifier of one traced request. Deterministic: minted from the
/// store's seed and the server's per-request sequence number, so a
/// seeded replay reproduces the same ids and every exemplar in a gated
/// experiment resolves. Displays as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints the id of request `seq` under `seed`. Injective in `seq`
    /// for a fixed seed (SplitMix64 is a bijection).
    pub fn mint(seed: u64, seq: u64) -> TraceId {
        TraceId(splitmix64(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One lifecycle event, stamped with nanoseconds since submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the request was submitted.
    pub at_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The typed lifecycle events a request can accumulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The request entered `Server::submit`.
    Submitted,
    /// Admitted to the queue at this depth.
    Admitted {
        /// Queue depth right after the push.
        depth: u64,
    },
    /// Rejected at admission (`queue_full`) or answered during
    /// shutdown (`shutdown`).
    Shed {
        /// Why the request was shed.
        reason: String,
    },
    /// A worker popped the job.
    Dequeued {
        /// 0-based worker index.
        worker: u32,
        /// Time spent queued (also charged against the deadline).
        wait_ns: u64,
    },
    /// The per-request guard truncated the run.
    GuardTrip {
        /// The guard's truncation reason (deadline, work budget, …).
        reason: String,
    },
    /// The response was served from a degradation tier.
    Degraded {
        /// Tier label (`centroid`, `majority`, `top_support`).
        tier: String,
    },
    /// The handler panicked; the worker boundary caught it.
    PanicRecovered,
    /// The served bundle was refreshed between submit and pickup — the
    /// request ran on a different artifact generation than it saw at
    /// admission.
    RefreshRace {
        /// Generation at submit.
        submitted_gen: u64,
        /// Generation actually served.
        served_gen: u64,
    },
    /// Terminal event: the response (or error) was delivered.
    Finished {
        /// Outcome label (`complete`, `truncated`, `panicked`, …).
        outcome: String,
    },
}

impl TraceEventKind {
    /// Stable lowercase tag (the `"kind"` field in the trace file).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Submitted => "submitted",
            TraceEventKind::Admitted { .. } => "admitted",
            TraceEventKind::Shed { .. } => "shed",
            TraceEventKind::Dequeued { .. } => "dequeued",
            TraceEventKind::GuardTrip { .. } => "guard_trip",
            TraceEventKind::Degraded { .. } => "degraded",
            TraceEventKind::PanicRecovered => "panic_recovered",
            TraceEventKind::RefreshRace { .. } => "refresh_race",
            TraceEventKind::Finished { .. } => "finished",
        }
    }
}

impl HeapSize for TraceEventKind {
    fn heap_bytes(&self) -> usize {
        match self {
            TraceEventKind::Shed { reason } | TraceEventKind::GuardTrip { reason } => {
                reason.heap_bytes()
            }
            TraceEventKind::Degraded { tier } => tier.heap_bytes(),
            TraceEventKind::Finished { outcome } => outcome.heap_bytes(),
            _ => 0,
        }
    }
}

impl HeapSize for TraceEvent {
    fn heap_bytes(&self) -> usize {
        self.kind.heap_bytes()
    }
}

/// One request's assembled trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The minted id.
    pub id: TraceId,
    /// Server-side submission sequence number (1-based).
    pub seq: u64,
    /// Endpoint label (`predict`, `score`, `recommend`).
    pub endpoint: String,
    /// Lifecycle events in emission order.
    pub events: Vec<TraceEvent>,
    /// Time spent queued.
    pub queue_ns: u64,
    /// Time spent executing the handler.
    pub exec_ns: u64,
    /// Submit-to-delivery wall time.
    pub total_ns: u64,
    /// Watch rules whose Ok→Firing edge pinned this trace.
    pub pinned: Vec<String>,
}

impl RequestTrace {
    /// The terminal outcome label (`unknown` if no terminal event was
    /// recorded — a trace assembled from a malformed file).
    pub fn outcome(&self) -> &str {
        for ev in self.events.iter().rev() {
            match &ev.kind {
                TraceEventKind::Finished { outcome } => return outcome,
                TraceEventKind::Shed { reason } => return reason,
                _ => {}
            }
        }
        "unknown"
    }

    /// Whether the tail sampler must always retain this trace: any
    /// shed, guard trip (deadline exceeded, work budget, cancel),
    /// degraded tier, or recovered panic.
    pub fn is_anomalous(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                TraceEventKind::Shed { .. }
                    | TraceEventKind::GuardTrip { .. }
                    | TraceEventKind::Degraded { .. }
                    | TraceEventKind::PanicRecovered
            )
        })
    }

    /// Retained-size estimate: inline struct plus heap payload.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<RequestTrace>() + self.heap_bytes()
    }
}

impl HeapSize for RequestTrace {
    fn heap_bytes(&self) -> usize {
        self.endpoint.heap_bytes()
            + self.events.heap_bytes()
            + self.pinned.capacity() * std::mem::size_of::<String>()
            + self.pinned.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

/// Tail-sampler tuning. All decisions are deterministic functions of
/// the (seeded) trace ids and the synthetic/measured durations, so a
/// seeded replay retains the identical set.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Seed folded into every minted [`TraceId`].
    pub seed: u64,
    /// Store-wide cap on retained bytes ([`HeapSize`]-accounted).
    pub byte_budget: usize,
    /// Max retained traces per shard (per-worker ring bound).
    pub ring_capacity: usize,
    /// Keep 1-in-N boring traces by id hash; `0` disables probabilistic
    /// retention entirely.
    pub sample_every: u64,
    /// Keep up to this many of the slowest boring traces per shard;
    /// `0` disables slowest-k retention (gated experiments use that —
    /// wall-clock must not influence the retained *set*).
    pub slowest_k: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            byte_budget: DEFAULT_BYTE_BUDGET,
            ring_capacity: 256,
            sample_every: 16,
            slowest_k: 4,
        }
    }
}

/// Retention class, in eviction order: lowest class evicts first, and
/// within a class the oldest admission goes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RetainClass {
    Sampled,
    Slow,
    Anomalous,
    Pinned,
}

#[derive(Debug)]
struct Retained {
    trace: RequestTrace,
    bytes: usize,
    class: RetainClass,
    admit: u64,
}

#[derive(Debug, Default)]
struct Inner {
    shards: Vec<VecDeque<Retained>>,
    bytes: usize,
    admit_seq: u64,
    retained: u64,
    dropped: u64,
    evicted: u64,
    pinned: u64,
}

/// Point-in-time store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Offers accepted (cumulative; includes later-evicted traces).
    pub retained: u64,
    /// Offers rejected by the sampler (cumulative).
    pub dropped: u64,
    /// Retained traces later evicted by capacity/budget pressure.
    pub evicted: u64,
    /// Pin markings applied by [`TraceStore::pin_recent`] (cumulative).
    pub pinned: u64,
    /// Bytes currently held.
    pub bytes: usize,
    /// Traces currently held.
    pub live: usize,
}

/// The retention store: per-worker rings, one byte budget, tail-based
/// admission. One instance per server; workers offer completed traces
/// to their own shard (shard 0 is the submit path, for sheds).
#[derive(Debug)]
pub struct TraceStore {
    cfg: TraceConfig,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// A store with `shards` rings (workers + 1; shard 0 is the submit
    /// path). At least one shard is always allocated.
    pub fn new(cfg: TraceConfig, shards: usize) -> Self {
        let inner = Inner {
            shards: (0..shards.max(1)).map(|_| VecDeque::new()).collect(),
            ..Inner::default()
        };
        Self {
            cfg,
            inner: Mutex::new(inner),
        }
    }

    /// The id-minting seed (servers fold it into [`TraceId::mint`]).
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.cfg.byte_budget
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut Inner) -> T) -> T {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut inner)
    }

    /// Offers a completed trace to shard `shard` (clamped into range).
    /// Returns `true` when the tail sampler retained it. Emits
    /// `trace.retained` / `trace.dropped` / `trace.evicted` counters
    /// and the `trace.bytes` gauge through `obs`.
    pub fn offer(&self, shard: usize, trace: RequestTrace, obs: &Obs<'_>) -> bool {
        let kept = self.with_inner(|inner| {
            let shard = shard.min(inner.shards.len() - 1);
            let class = classify(&self.cfg, &inner.shards[shard], &trace);
            let Some(class) = class else {
                inner.dropped += 1;
                return (false, 0, inner.bytes);
            };
            if class == RetainClass::Slow {
                // A full slow set admits this slower trace by demoting
                // its fastest member to the evictable Sampled class.
                demote_fastest_slow(&mut inner.shards[shard], self.cfg.slowest_k);
            }
            let bytes = trace.approx_bytes();
            inner.admit_seq += 1;
            let admit = inner.admit_seq;
            inner.bytes += bytes;
            inner.retained += 1;
            inner.shards[shard].push_back(Retained {
                trace,
                bytes,
                class,
                admit,
            });
            let evicted = evict_to_limits(inner, &self.cfg);
            (true, evicted, inner.bytes)
        });
        let (kept, evicted, bytes) = kept;
        if kept {
            obs.counter("trace.retained", 1);
        } else {
            obs.counter("trace.dropped", 1);
        }
        if evicted > 0 {
            obs.counter("trace.evicted", evicted);
        }
        obs.gauge("trace.bytes", bytes as f64);
        kept
    }

    /// Marks every currently retained trace as pinned by `rule`
    /// (idempotent per rule) and upgrades it to the pinned class, so
    /// alert evidence outlives ordinary eviction pressure. Returns how
    /// many traces were newly pinned; emits `trace.pinned`.
    pub fn pin_recent(&self, rule: &str, obs: &Obs<'_>) -> usize {
        let (n, evicted, bytes) = self.with_inner(|inner| {
            let mut n = 0usize;
            let mut delta = 0isize;
            for ring in &mut inner.shards {
                for r in ring.iter_mut() {
                    if r.trace.pinned.iter().any(|p| p == rule) {
                        continue;
                    }
                    r.trace.pinned.push(rule.to_owned());
                    let new_bytes = r.trace.approx_bytes();
                    delta += new_bytes as isize - r.bytes as isize;
                    r.bytes = new_bytes;
                    r.class = RetainClass::Pinned;
                    n += 1;
                }
            }
            inner.bytes = inner.bytes.saturating_add_signed(delta);
            inner.pinned += n as u64;
            let evicted = evict_to_limits(inner, &self.cfg);
            (n, evicted, inner.bytes)
        });
        if n > 0 {
            obs.counter("trace.pinned", n as u64);
            obs.gauge("trace.bytes", bytes as f64);
        }
        if evicted > 0 {
            obs.counter("trace.evicted", evicted);
        }
        n
    }

    /// All retained traces, sorted by submission sequence.
    pub fn retained(&self) -> Vec<RequestTrace> {
        self.with_inner(|inner| {
            let mut out: Vec<RequestTrace> = inner
                .shards
                .iter()
                .flat_map(|ring| ring.iter().map(|r| r.trace.clone()))
                .collect();
            out.sort_by_key(|t| t.seq);
            out
        })
    }

    /// Looks up one retained trace by id.
    pub fn find(&self, id: TraceId) -> Option<RequestTrace> {
        self.with_inner(|inner| {
            inner
                .shards
                .iter()
                .flat_map(VecDeque::iter)
                .find(|r| r.trace.id == id)
                .map(|r| r.trace.clone())
        })
    }

    /// Current statistics.
    pub fn stats(&self) -> TraceStats {
        self.with_inner(|inner| TraceStats {
            retained: inner.retained,
            dropped: inner.dropped,
            evicted: inner.evicted,
            pinned: inner.pinned,
            bytes: inner.bytes,
            live: inner.shards.iter().map(VecDeque::len).sum(),
        })
    }

    /// Serializes the retained set as the versioned trace-file format
    /// ([`TRACE_SCHEMA`]) read by `dm trace` / [`traces_from_json`].
    pub fn to_json(&self) -> String {
        traces_to_json(&self.retained())
    }
}

/// The sampler's admission verdict (`None` = drop).
fn classify(
    cfg: &TraceConfig,
    ring: &VecDeque<Retained>,
    trace: &RequestTrace,
) -> Option<RetainClass> {
    if trace.is_anomalous() {
        return Some(RetainClass::Anomalous);
    }
    if cfg.sample_every > 0 && trace.id.0.is_multiple_of(cfg.sample_every) {
        return Some(RetainClass::Sampled);
    }
    if cfg.slowest_k > 0 {
        let slow: Vec<u64> = ring
            .iter()
            .filter(|r| r.class == RetainClass::Slow)
            .map(|r| r.trace.total_ns)
            .collect();
        if slow.len() < cfg.slowest_k {
            return Some(RetainClass::Slow);
        }
        let floor = slow.iter().copied().min().unwrap_or(0);
        if trace.total_ns > floor {
            return Some(RetainClass::Slow);
        }
    }
    None
}

/// Demotes the fastest Slow-class member to Sampled when the slow set
/// is already at `k` — the incoming slower trace takes its slot.
fn demote_fastest_slow(ring: &mut VecDeque<Retained>, k: usize) {
    let slow: Vec<usize> = ring
        .iter()
        .enumerate()
        .filter(|(_, r)| r.class == RetainClass::Slow)
        .map(|(i, _)| i)
        .collect();
    if slow.len() < k {
        return;
    }
    if let Some(&fastest) = slow
        .iter()
        .min_by_key(|&&i| (ring[i].trace.total_ns, ring[i].admit))
    {
        ring[fastest].class = RetainClass::Sampled;
    }
}

/// Evicts lowest-(class, admit-order) traces until every shard is
/// within `ring_capacity` and the store is within `byte_budget`.
/// Returns how many were evicted.
fn evict_to_limits(inner: &mut Inner, cfg: &TraceConfig) -> u64 {
    let mut evicted = 0u64;
    // Per-shard ring bound first.
    for s in 0..inner.shards.len() {
        while inner.shards[s].len() > cfg.ring_capacity.max(1) {
            if let Some(pos) = victim_in_shard(&inner.shards[s]) {
                let r = remove_at(&mut inner.shards[s], pos);
                inner.bytes = inner.bytes.saturating_sub(r.bytes);
                inner.evicted += 1;
                evicted += 1;
            } else {
                break;
            }
        }
    }
    // Store-wide byte budget.
    while inner.bytes > cfg.byte_budget {
        let victim = inner
            .shards
            .iter()
            .enumerate()
            .filter_map(|(s, ring)| {
                victim_in_shard(ring).map(|pos| {
                    let r = &ring[pos];
                    ((r.class, r.admit), s, pos)
                })
            })
            .min_by_key(|&(key, _, _)| key);
        let Some((_, s, pos)) = victim else { break };
        let r = remove_at(&mut inner.shards[s], pos);
        inner.bytes = inner.bytes.saturating_sub(r.bytes);
        inner.evicted += 1;
        evicted += 1;
    }
    evicted
}

fn victim_in_shard(ring: &VecDeque<Retained>) -> Option<usize> {
    ring.iter()
        .enumerate()
        .min_by_key(|(_, r)| (r.class, r.admit))
        .map(|(i, _)| i)
}

fn remove_at(ring: &mut VecDeque<Retained>, pos: usize) -> Retained {
    // `pos` comes from an enumerate over the same ring, so it is in
    // bounds; the fallback keeps the accounting sane regardless.
    match ring.remove(pos) {
        Some(r) => r,
        None => Retained {
            trace: RequestTrace {
                id: TraceId(0),
                seq: 0,
                endpoint: String::new(),
                events: Vec::new(),
                queue_ns: 0,
                exec_ns: 0,
                total_ns: 0,
                pinned: Vec::new(),
            },
            bytes: 0,
            class: RetainClass::Sampled,
            admit: 0,
        },
    }
}

// ---------------------------------------------------------------------------
// Trace-file serialization
// ---------------------------------------------------------------------------

fn write_event(out: &mut String, ev: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"at_ns\": {}, \"kind\": \"{}\"",
        ev.at_ns,
        ev.kind.label()
    );
    match &ev.kind {
        TraceEventKind::Admitted { depth } => {
            let _ = write!(out, ", \"depth\": {depth}");
        }
        TraceEventKind::Shed { reason } => {
            let _ = write!(out, ", \"reason\": {}", json_string(reason));
        }
        TraceEventKind::Dequeued { worker, wait_ns } => {
            let _ = write!(out, ", \"worker\": {worker}, \"wait_ns\": {wait_ns}");
        }
        TraceEventKind::GuardTrip { reason } => {
            let _ = write!(out, ", \"reason\": {}", json_string(reason));
        }
        TraceEventKind::Degraded { tier } => {
            let _ = write!(out, ", \"tier\": {}", json_string(tier));
        }
        TraceEventKind::RefreshRace {
            submitted_gen,
            served_gen,
        } => {
            let _ = write!(
                out,
                ", \"submitted_gen\": {submitted_gen}, \"served_gen\": {served_gen}"
            );
        }
        TraceEventKind::Finished { outcome } => {
            let _ = write!(out, ", \"outcome\": {}", json_string(outcome));
        }
        TraceEventKind::Submitted | TraceEventKind::PanicRecovered => {}
    }
    out.push('}');
}

/// Serializes traces as the versioned trace-file document: stable key
/// order, ids as 16-hex-digit strings, events in emission order.
pub fn traces_to_json(traces: &[RequestTrace]) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\n  \"schema\": {TRACE_SCHEMA},\n  \"traces\": [");
    for (i, t) in traces.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"id\": \"{}\", \"seq\": {}, \"endpoint\": {}, \"queue_ns\": {}, \"exec_ns\": {}, \"total_ns\": {}, \"pinned\": [",
            t.id,
            t.seq,
            json_string(&t.endpoint),
            t.queue_ns,
            t.exec_ns,
            t.total_ns,
        );
        for (j, p) in t.pinned.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}", json_string(p));
        }
        out.push_str("], \"events\": [");
        for (j, ev) in t.events.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            write_event(&mut out, ev);
        }
        out.push_str("]}");
    }
    if !traces.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn parse_event(v: &Json) -> Result<TraceEvent, String> {
    let at_ns = v
        .get("at_ns")
        .and_then(Json::as_u64)
        .ok_or("trace: event missing integer `at_ns`")?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("trace: event missing string `kind`")?;
    let str_field = |key: &str| -> Result<String, String> {
        Ok(v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace: `{kind}` event missing string `{key}`"))?
            .to_owned())
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trace: `{kind}` event missing integer `{key}`"))
    };
    let kind = match kind {
        "submitted" => TraceEventKind::Submitted,
        "admitted" => TraceEventKind::Admitted {
            depth: u64_field("depth")?,
        },
        "shed" => TraceEventKind::Shed {
            reason: str_field("reason")?,
        },
        "dequeued" => TraceEventKind::Dequeued {
            worker: u32::try_from(u64_field("worker")?)
                .map_err(|_| "trace: `dequeued` worker exceeds u32".to_string())?,
            wait_ns: u64_field("wait_ns")?,
        },
        "guard_trip" => TraceEventKind::GuardTrip {
            reason: str_field("reason")?,
        },
        "degraded" => TraceEventKind::Degraded {
            tier: str_field("tier")?,
        },
        "panic_recovered" => TraceEventKind::PanicRecovered,
        "refresh_race" => TraceEventKind::RefreshRace {
            submitted_gen: u64_field("submitted_gen")?,
            served_gen: u64_field("served_gen")?,
        },
        "finished" => TraceEventKind::Finished {
            outcome: str_field("outcome")?,
        },
        other => return Err(format!("trace: unknown event kind `{other}`")),
    };
    Ok(TraceEvent { at_ns, kind })
}

/// Parses a trace-file document produced by [`traces_to_json`]. Any
/// schema up to [`TRACE_SCHEMA`] is accepted.
pub fn traces_from_json(input: &str) -> Result<Vec<RequestTrace>, String> {
    let doc = json::parse(input).map_err(|e| format!("trace: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or("trace: missing or non-integer `schema`")?;
    if schema == 0 || schema > u64::from(TRACE_SCHEMA) {
        return Err(format!(
            "trace: unsupported schema {schema} (this build reads <= {TRACE_SCHEMA})"
        ));
    }
    let mut out = Vec::new();
    for t in doc
        .get("traces")
        .and_then(Json::as_arr)
        .ok_or("trace: missing `traces` array")?
    {
        let id = t
            .get("id")
            .and_then(Json::as_str)
            .and_then(TraceId::from_hex)
            .ok_or("trace: missing or malformed `id`")?;
        let u64_field = |key: &str| -> Result<u64, String> {
            t.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace: entry missing integer `{key}`"))
        };
        let mut events = Vec::new();
        for ev in t
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("trace: entry missing `events` array")?
        {
            events.push(parse_event(ev)?);
        }
        let mut pinned = Vec::new();
        if let Some(arr) = t.get("pinned").and_then(Json::as_arr) {
            for p in arr {
                pinned.push(
                    p.as_str()
                        .ok_or("trace: `pinned` entry is not a string")?
                        .to_owned(),
                );
            }
        }
        out.push(RequestTrace {
            id,
            seq: u64_field("seq")?,
            endpoint: t
                .get("endpoint")
                .and_then(Json::as_str)
                .ok_or("trace: entry missing string `endpoint`")?
                .to_owned(),
            events,
            queue_ns: u64_field("queue_ns")?,
            exec_ns: u64_field("exec_ns")?,
            total_ns: u64_field("total_ns")?,
            pinned,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Rendering (the `dm trace` presentation layer)
// ---------------------------------------------------------------------------

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn event_detail(kind: &TraceEventKind) -> String {
    match kind {
        TraceEventKind::Submitted | TraceEventKind::PanicRecovered => String::new(),
        TraceEventKind::Admitted { depth } => format!("depth={depth}"),
        TraceEventKind::Shed { reason } => format!("reason={reason}"),
        TraceEventKind::Dequeued { worker, wait_ns } => {
            format!("worker={worker} wait={}", fmt_ns(*wait_ns))
        }
        TraceEventKind::GuardTrip { reason } => format!("reason={reason}"),
        TraceEventKind::Degraded { tier } => format!("tier={tier}"),
        TraceEventKind::RefreshRace {
            submitted_gen,
            served_gen,
        } => format!("submitted_gen={submitted_gen} served_gen={served_gen}"),
        TraceEventKind::Finished { outcome } => format!("outcome={outcome}"),
    }
}

/// Renders traces as a fixed-width table (the `dm trace list` view),
/// one row per trace in the given order.
pub fn render_list(traces: &[RequestTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16}  {:>5}  {:<9}  {:<18}  {:>10}  {:>10}  {:>10}  {:>6}  PINNED",
        "TRACE", "SEQ", "ENDPOINT", "OUTCOME", "QUEUE", "EXEC", "TOTAL", "EVENTS"
    );
    for t in traces {
        let pinned = if t.pinned.is_empty() {
            "-".to_owned()
        } else {
            t.pinned.join(",")
        };
        let _ = writeln!(
            out,
            "{:<16}  {:>5}  {:<9}  {:<18}  {:>10}  {:>10}  {:>10}  {:>6}  {}",
            t.id.to_string(),
            t.seq,
            t.endpoint,
            t.outcome(),
            fmt_ns(t.queue_ns),
            fmt_ns(t.exec_ns),
            fmt_ns(t.total_ns),
            t.events.len(),
            pinned
        );
    }
    out
}

/// Renders one request's full lifecycle (the `dm trace show` view).
pub fn render_show(t: &RequestTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}  seq {}  endpoint {}  outcome {}",
        t.id,
        t.seq,
        t.endpoint,
        t.outcome()
    );
    let _ = writeln!(
        out,
        "  queue {}  exec {}  total {}",
        fmt_ns(t.queue_ns),
        fmt_ns(t.exec_ns),
        fmt_ns(t.total_ns)
    );
    for ev in &t.events {
        let detail = event_detail(&ev.kind);
        if detail.is_empty() {
            let _ = writeln!(out, "  +{:<12} {}", fmt_ns(ev.at_ns), ev.kind.label());
        } else {
            let _ = writeln!(
                out,
                "  +{:<12} {:<15} {}",
                fmt_ns(ev.at_ns),
                ev.kind.label(),
                detail
            );
        }
    }
    if !t.pinned.is_empty() {
        let _ = writeln!(out, "  pinned by: {}", t.pinned.join(", "));
    }
    out
}

/// Exports one request's lifecycle as chrome://tracing trace-event
/// JSON: a `request <endpoint>` slice spanning submit→delivery with
/// nested `queue` and `exec` phase slices, plus an instant event per
/// lifecycle event. Every slice carries the `trace_id` in `args`, which
/// is the "linked slice" form Perfetto can join against histogram
/// exemplars.
pub fn chrome_trace_request(t: &RequestTrace) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    let id = t.id.to_string();
    let emit = |line: String, out: &mut String, first: &mut bool| {
        let sep = if *first { "" } else { "," };
        *first = false;
        let _ = write!(out, "{sep}\n  {line}");
    };
    let slice = |name: &str, ph: char, ts_ns: u64| {
        format!(
            "{{\"name\": \"{name}\", \"cat\": \"trace\", \"ph\": \"{ph}\", \"ts\": {:.3}, \"pid\": 1, \"tid\": 1, \"args\": {{\"trace_id\": \"{id}\"}}}}",
            ts_ns as f64 / 1e3
        )
    };
    let request = format!("request {}", t.endpoint);
    emit(slice(&request, 'B', 0), &mut out, &mut first);
    if t.queue_ns > 0 || t.exec_ns > 0 {
        emit(slice("queue", 'B', 0), &mut out, &mut first);
        emit(slice("queue", 'E', t.queue_ns), &mut out, &mut first);
        emit(slice("exec", 'B', t.queue_ns), &mut out, &mut first);
        emit(
            slice("exec", 'E', t.queue_ns + t.exec_ns),
            &mut out,
            &mut first,
        );
    }
    for ev in &t.events {
        let ts = ev.at_ns.min(t.total_ns);
        emit(
            format!(
                "{{\"name\": \"{}\", \"cat\": \"trace\", \"ph\": \"i\", \"ts\": {:.3}, \"pid\": 1, \"tid\": 1, \"s\": \"t\", \"args\": {{\"trace_id\": \"{id}\", \"detail\": {}}}}}",
                ev.kind.label(),
                ts as f64 / 1e3,
                json_string(&event_detail(&ev.kind))
            ),
            &mut out,
            &mut first,
        );
    }
    emit(slice(&request, 'E', t.total_ns), &mut out, &mut first);
    out.push('\n');
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boring(seed: u64, seq: u64, total_ns: u64) -> RequestTrace {
        RequestTrace {
            id: TraceId::mint(seed, seq),
            seq,
            endpoint: "predict".into(),
            events: vec![
                TraceEvent {
                    at_ns: 0,
                    kind: TraceEventKind::Submitted,
                },
                TraceEvent {
                    at_ns: total_ns,
                    kind: TraceEventKind::Finished {
                        outcome: "complete".into(),
                    },
                },
            ],
            queue_ns: total_ns / 4,
            exec_ns: total_ns - total_ns / 4,
            total_ns,
            pinned: Vec::new(),
        }
    }

    fn anomalous(seed: u64, seq: u64) -> RequestTrace {
        let mut t = boring(seed, seq, 1_000);
        t.events.insert(
            1,
            TraceEvent {
                at_ns: 500,
                kind: TraceEventKind::GuardTrip {
                    reason: "DeadlineExceeded".into(),
                },
            },
        );
        t
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceId::mint(7, 1);
        assert_eq!(a, TraceId::mint(7, 1));
        assert_ne!(a, TraceId::mint(7, 2));
        assert_ne!(a, TraceId::mint(8, 1));
        let hex = a.to_string();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceId::from_hex(&hex), Some(a));
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("00ff"), None, "length must be 16");
    }

    #[test]
    fn anomalous_traces_are_always_retained() {
        let cfg = TraceConfig {
            sample_every: 0,
            slowest_k: 0,
            ..TraceConfig::default()
        };
        let store = TraceStore::new(cfg, 2);
        let obs = Obs::noop();
        for seq in 1..=20 {
            store.offer(1, anomalous(0, seq), &obs);
        }
        assert_eq!(store.retained().len(), 20);
        // A boring trace under the same config is dropped.
        assert!(!store.offer(1, boring(0, 100, 10), &obs));
        let stats = store.stats();
        assert_eq!(stats.retained, 20);
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn sampling_is_deterministic_in_the_ids() {
        let cfg = TraceConfig {
            sample_every: 4,
            slowest_k: 0,
            ..TraceConfig::default()
        };
        let run = || {
            let store = TraceStore::new(cfg.clone(), 2);
            let obs = Obs::noop();
            for seq in 1..=64 {
                store.offer(1, boring(42, seq, 100), &obs);
            }
            store.retained().iter().map(|t| t.seq).collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run(), "same seed, same retained set");
        assert!(!first.is_empty() && first.len() < 64, "a strict subset");
    }

    #[test]
    fn slowest_k_keeps_the_slow_tail() {
        let cfg = TraceConfig {
            sample_every: 0,
            slowest_k: 2,
            ..TraceConfig::default()
        };
        let store = TraceStore::new(cfg, 1);
        let obs = Obs::noop();
        // Increasing totals: each new trace displaces the fastest.
        for (seq, total) in [(1u64, 100u64), (2, 200), (3, 300), (4, 50), (5, 400)] {
            store.offer(0, boring(0, seq, total), &obs);
        }
        let retained = store.retained();
        let totals: Vec<u64> = retained.iter().map(|t| t.total_ns).collect();
        // Slow class holds {300, 400}; earlier displacements were
        // demoted to Sampled but nothing forced their eviction.
        assert!(totals.contains(&300) && totals.contains(&400), "{totals:?}");
        // seq 4 (50ns, slower floor already 200) was dropped outright.
        assert!(!retained.iter().any(|t| t.seq == 4), "{totals:?}");
    }

    #[test]
    fn byte_budget_evicts_boring_before_anomalous() {
        let one = anomalous(0, 1).approx_bytes();
        let cfg = TraceConfig {
            sample_every: 1, // retain every boring trace (class Sampled)
            slowest_k: 0,
            byte_budget: one * 4,
            ring_capacity: 1024,
            ..TraceConfig::default()
        };
        let store = TraceStore::new(cfg.clone(), 1);
        let obs = Obs::noop();
        for seq in 1..=3 {
            store.offer(0, boring(0, seq, 100), &obs);
        }
        for seq in 4..=7 {
            store.offer(0, anomalous(0, seq), &obs);
        }
        let stats = store.stats();
        assert!(stats.bytes <= cfg.byte_budget, "budget respected");
        let retained = store.retained();
        // All four anomalous traces survived; boring ones were evicted.
        for seq in 4..=7 {
            assert!(retained.iter().any(|t| t.seq == seq), "anomalous {seq}");
        }
        assert!(stats.evicted >= 2, "boring traces made way: {stats:?}");
    }

    #[test]
    fn ring_capacity_bounds_each_shard() {
        let cfg = TraceConfig {
            sample_every: 1,
            slowest_k: 0,
            ring_capacity: 8,
            ..TraceConfig::default()
        };
        let store = TraceStore::new(cfg, 2);
        let obs = Obs::noop();
        for seq in 1..=40 {
            store.offer((seq % 2) as usize, boring(0, seq, 10), &obs);
        }
        assert!(store.stats().live <= 16, "{:?}", store.stats());
    }

    #[test]
    fn pin_recent_upgrades_and_is_idempotent() {
        let store = TraceStore::new(
            TraceConfig {
                sample_every: 1,
                slowest_k: 0,
                ..TraceConfig::default()
            },
            1,
        );
        let obs = Obs::noop();
        store.offer(0, boring(0, 1, 10), &obs);
        assert_eq!(store.pin_recent("latency-slo", &obs), 1);
        assert_eq!(store.pin_recent("latency-slo", &obs), 0, "idempotent");
        assert_eq!(store.pin_recent("drift", &obs), 1, "second rule re-pins");
        let t = &store.retained()[0];
        assert_eq!(t.pinned, vec!["latency-slo".to_owned(), "drift".to_owned()]);
    }

    #[test]
    fn store_emits_trace_metrics() {
        use crate::InMemoryRecorder;
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let store = TraceStore::new(
            TraceConfig {
                sample_every: 0,
                slowest_k: 0,
                ..TraceConfig::default()
            },
            1,
        );
        store.offer(0, anomalous(0, 1), &obs);
        store.offer(0, boring(0, 2, 10), &obs);
        store.pin_recent("rule", &obs);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("trace.retained"), Some(1));
        assert_eq!(snap.counter("trace.dropped"), Some(1));
        assert_eq!(snap.counter("trace.pinned"), Some(1));
        assert!(snap.gauge("trace.bytes").unwrap() > 0.0);
    }

    #[test]
    fn trace_file_round_trips() {
        let mut t = anomalous(3, 9);
        t.events.insert(
            1,
            TraceEvent {
                at_ns: 10,
                kind: TraceEventKind::Admitted { depth: 2 },
            },
        );
        t.events.insert(
            2,
            TraceEvent {
                at_ns: 120,
                kind: TraceEventKind::Dequeued {
                    worker: 1,
                    wait_ns: 110,
                },
            },
        );
        t.events.insert(
            3,
            TraceEvent {
                at_ns: 130,
                kind: TraceEventKind::RefreshRace {
                    submitted_gen: 1,
                    served_gen: 2,
                },
            },
        );
        t.pinned.push("latency-slo".into());
        let boring = boring(3, 10, 55);
        let json = traces_to_json(&[t.clone(), boring.clone()]);
        let parsed = traces_from_json(&json).unwrap();
        assert_eq!(parsed, vec![t, boring]);
    }

    #[test]
    fn trace_file_rejects_garbage() {
        assert!(traces_from_json("nonsense").is_err());
        assert!(traces_from_json("{}").is_err());
        assert!(traces_from_json("{\"schema\": 99, \"traces\": []}").is_err());
        let bad_event = "{\"schema\": 1, \"traces\": [{\"id\": \"0000000000000001\", \"seq\": 1, \"endpoint\": \"predict\", \"queue_ns\": 0, \"exec_ns\": 0, \"total_ns\": 0, \"pinned\": [], \"events\": [{\"at_ns\": 0, \"kind\": \"nope\"}]}]}";
        assert!(traces_from_json(bad_event)
            .unwrap_err()
            .contains("unknown event kind"));
    }

    #[test]
    fn chrome_export_is_balanced_and_linked() {
        let t = anomalous(0, 1);
        let json = chrome_trace_request(&t);
        assert!(json.starts_with('{') && json.ends_with('}'));
        let b = json.matches("\"ph\": \"B\"").count();
        let e = json.matches("\"ph\": \"E\"").count();
        assert_eq!(b, e, "balanced B/E pairs");
        assert!(b >= 1);
        let id = t.id.to_string();
        // Every slice and instant is linked to the trace id.
        let events = json.matches("\"ph\"").count();
        assert_eq!(json.matches(&id).count(), events);
    }

    #[test]
    fn renderers_cover_every_event_kind() {
        let mut t = anomalous(1, 2);
        t.events.insert(
            1,
            TraceEvent {
                at_ns: 5,
                kind: TraceEventKind::Degraded {
                    tier: "centroid".into(),
                },
            },
        );
        t.events.insert(
            2,
            TraceEvent {
                at_ns: 6,
                kind: TraceEventKind::PanicRecovered,
            },
        );
        t.pinned.push("slo".into());
        let list = render_list(std::slice::from_ref(&t));
        assert!(list.contains(&t.id.to_string()));
        assert!(list.contains("predict"));
        let show = render_show(&t);
        for needle in [
            "submitted",
            "degraded",
            "panic_recovered",
            "guard_trip",
            "finished",
            "pinned by: slo",
        ] {
            assert!(show.contains(needle), "`{needle}` missing from:\n{show}");
        }
    }
}
