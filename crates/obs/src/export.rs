//! Exporters: render a [`Snapshot`] for standard tooling, with no
//! dependencies beyond `std`.
//!
//! * [`chrome_trace`] — the chrome://tracing / Perfetto "trace event"
//!   JSON format (duration `B`/`E` pairs), built from the span tree.
//! * [`folded_stacks`] — Brendan Gregg's folded-stack text, one
//!   `root;child;leaf self_ns` line per distinct stack, ready for
//!   `flamegraph.pl` / inferno.
//! * [`prometheus`] — the Prometheus text exposition format for
//!   counters, gauges and histograms (cumulative `le` buckets).

use crate::hist::bucket_max;
use crate::{Snapshot, SpanNode};
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

/// Resolved view of one span for export: the node plus its effective
/// (closed) parent and clamped interval.
struct Closed<'a> {
    node: &'a SpanNode,
    start_ns: u64,
    end_ns: u64,
}

/// Effective parent of `node`: nearest ancestor that is *closed*, so
/// children of a leaked/open span re-attach instead of vanishing.
/// Returns 0 for top-level. `closed` maps id → index into `tree`.
fn effective_parent(tree: &[SpanNode], closed: &BTreeMap<u64, usize>, node: &SpanNode) -> u64 {
    let mut p = node.parent;
    let mut hops = 0;
    while p != 0 && !closed.contains_key(&p) {
        let Some(parent) = tree.get(p as usize - 1) else {
            return 0;
        };
        p = parent.parent;
        hops += 1;
        if hops > tree.len() {
            return 0; // defensive: a malformed cycle
        }
    }
    p
}

/// Closed spans with intervals clamped into their effective parent's
/// interval (chrome requires child B/E strictly inside the parent's),
/// plus a parent→children index. Children are visited in
/// `(start_ns, id)` order.
fn resolve(snap: &Snapshot) -> (Vec<Closed<'_>>, BTreeMap<u64, Vec<usize>>) {
    let closed_ids: BTreeMap<u64, usize> = snap
        .tree
        .iter()
        .enumerate()
        .filter(|(_, n)| n.dur_ns.is_some())
        .map(|(i, n)| (n.id, i))
        .collect();
    let mut spans: Vec<Closed<'_>> = Vec::with_capacity(closed_ids.len());
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    // Tree is in open order, so parents precede children and their
    // clamped intervals are available when the child is resolved.
    for (i, node) in snap.tree.iter().enumerate() {
        let Some(dur) = node.dur_ns else { continue };
        let _ = i;
        let parent = effective_parent(&snap.tree, &closed_ids, node);
        let (mut start, mut end) = (node.start_ns, node.start_ns.saturating_add(dur));
        if let Some(&pi) = index_of.get(&parent) {
            let p = &spans[pi];
            start = start.clamp(p.start_ns, p.end_ns);
            end = end.clamp(start, p.end_ns);
        }
        let slot = spans.len();
        spans.push(Closed {
            node,
            start_ns: start,
            end_ns: end,
        });
        index_of.insert(node.id, slot);
        children.entry(parent).or_default().push(slot);
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|&i| (spans[i].start_ns, spans[i].node.id));
    }
    (spans, children)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the span tree as chrome://tracing "trace event" JSON.
///
/// Every closed span becomes a `B`/`E` pair with `ts` in microseconds
/// since the recorder's epoch. Pairs are emitted by recursing over the
/// tree (begin, children, end) so nesting is well-formed by
/// construction; child intervals are clamped into their parent's.
/// Open (unclosed) spans are skipped, with their closed descendants
/// re-parented to the nearest closed ancestor. Load the file directly
/// in `chrome://tracing` or [ui.perfetto.dev](https://ui.perfetto.dev).
pub fn chrome_trace(snap: &Snapshot) -> String {
    let (spans, children) = resolve(snap);
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    // Depth-first over roots; an explicit stack of (slot, next-child)
    // keeps B/E strictly balanced per thread lane.
    let roots = children.get(&0).cloned().unwrap_or_default();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let emit = |out: &mut String, first: &mut bool, s: &Closed<'_>, ph: char, ts_ns: u64| {
        let sep = if *first { "" } else { "," };
        *first = false;
        let _ = write!(
            out,
            "{sep}\n  {{\"name\": \"{}\", \"cat\": \"dm\", \"ph\": \"{ph}\", \"ts\": {:.3}, \"pid\": 1, \"tid\": {}}}",
            json_escape(&s.node.name),
            ts_ns as f64 / 1e3,
            s.node.tid
        );
    };
    for root in roots {
        stack.push((root, 0));
        emit(
            &mut out,
            &mut first,
            &spans[root],
            'B',
            spans[root].start_ns,
        );
        while let Some(&mut (slot, ref mut next)) = stack.last_mut() {
            let kids = children
                .get(&spans[slot].node.id)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            if *next < kids.len() {
                let child = kids[*next];
                *next += 1;
                stack.push((child, 0));
                emit(
                    &mut out,
                    &mut first,
                    &spans[child],
                    'B',
                    spans[child].start_ns,
                );
            } else {
                emit(&mut out, &mut first, &spans[slot], 'E', spans[slot].end_ns);
                stack.pop();
            }
        }
    }
    if !first {
        out.push('\n');
    }
    out.push_str("]}");
    out
}

/// Renders the span tree as folded-stack lines for flamegraph tools:
/// one `root;child;leaf <self_ns>` line per distinct stack, aggregated,
/// in lexicographic stack order. Self time is the span's duration minus
/// its closed children's (clamped) durations.
pub fn folded_stacks(snap: &Snapshot) -> String {
    let (spans, children) = resolve(snap);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    // (slot, path-so-far)
    let mut stack: Vec<(usize, String)> = children
        .get(&0)
        .map(Vec::as_slice)
        .unwrap_or(&[])
        .iter()
        .map(|&slot| (slot, spans[slot].node.name.clone()))
        .collect();
    while let Some((slot, path)) = stack.pop() {
        let s = &spans[slot];
        let total = s.end_ns - s.start_ns;
        let mut child_ns = 0u64;
        for &c in children.get(&s.node.id).map(Vec::as_slice).unwrap_or(&[]) {
            child_ns = child_ns.saturating_add(spans[c].end_ns - spans[c].start_ns);
            stack.push((c, format!("{path};{}", spans[c].node.name)));
        }
        let self_ns = total.saturating_sub(child_ns);
        if self_ns > 0 {
            *folded.entry(path).or_insert(0) += self_ns;
        }
    }
    let mut out = String::new();
    for (path, ns) in folded {
        let _ = writeln!(out, "{path} {ns}");
    }
    out
}

/// Sanitizes a metric name for Prometheus: `[a-zA-Z0-9_]` kept,
/// everything else becomes `_`, and a leading digit gets a `_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v:?}")
    }
}

/// Renders counters, gauges and histograms in the Prometheus text
/// exposition format (version 0.0.4).
///
/// Histograms use cumulative `le` buckets with bounds `2^i - 1` — the
/// inclusive upper edge of each power-of-two bucket, so integer
/// semantics are exact — plus `+Inf`, `_sum` and `_count` series.
/// Buckets that carry an exemplar (a traced observation, see
/// [`crate::Recorder::value_traced`]) append it in OpenMetrics
/// exemplar syntax: `… {cum} # {trace_id="<16 hex>"} <value>`.
/// Distinct dotted names that sanitize to the same Prometheus name are
/// emitted once (first in sorted order wins).
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen: HashSet<String> = HashSet::new();
    for (name, &v) in &snap.counters {
        let n = prom_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, &v) in &snap.gauges {
        let n = prom_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(v));
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        let exemplars = snap.exemplars.get(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (bucket, count) in h.nonzero_buckets() {
            cum += count;
            let _ = write!(out, "{n}_bucket{{le=\"{}\"}} {cum}", bucket_max(bucket));
            if let Some(e) = exemplars.and_then(|m| m.get(&bucket)) {
                let _ = write!(out, " # {{trace_id=\"{:016x}\"}} {}", e.trace_id, e.value);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Obs, Recorder, SpanId};

    fn sample() -> Snapshot {
        let rec = InMemoryRecorder::new();
        // Span durations are explicit: a live `obs.span` leaf can
        // measure 0 ns under load, and folded_stacks rightly drops
        // zero-self-time frames — the fixture must not depend on the
        // clock's resolution.
        let e = rec.span_begin("experiment.e1", SpanId::ROOT);
        let p1 = rec.span_begin("assoc.apriori.pass1", e);
        let s0 = rec.span_begin("par.shard0", p1);
        rec.span_end(s0, "par.shard0", 100);
        rec.span_end(p1, "assoc.apriori.pass1", 300);
        let p2 = rec.span_begin("assoc.apriori.pass2", e);
        rec.span_end(p2, "assoc.apriori.pass2", 200);
        rec.span_end(e, "experiment.e1", 900);
        let obs = Obs::new(&rec);
        obs.counter("assoc.apriori.passes", 2);
        obs.gauge("assoc.mem.db_bytes", 1024.0);
        obs.value("par.shard.items", 100);
        obs.value("par.shard.items", 900);
        rec.snapshot()
    }

    #[test]
    fn chrome_trace_has_balanced_nested_pairs() {
        let json = chrome_trace(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        let b = json.matches("\"ph\": \"B\"").count();
        let e = json.matches("\"ph\": \"E\"").count();
        assert_eq!(b, 4);
        assert_eq!(b, e);
        // Recursion order: experiment B, pass1 B, shard B/E, pass1 E,
        // pass2 B/E, experiment E.
        let pos = |pat: &str| json.find(pat).unwrap();
        assert!(pos("experiment.e1") < pos("assoc.apriori.pass1"));
        assert!(pos("assoc.apriori.pass1") < pos("par.shard0"));
    }

    #[test]
    fn chrome_trace_skips_open_spans_and_reparents() {
        let rec = InMemoryRecorder::new();
        // Open a parent, close only the child: the child must survive
        // as a top-level pair.
        let parent = rec.span_begin("leaked", SpanId::ROOT);
        let child = rec.span_begin("kept", parent);
        rec.span_end(child, "kept", 500);
        let json = chrome_trace(&rec.snapshot());
        assert!(!json.contains("leaked"));
        assert_eq!(json.matches("kept").count(), 2, "B and E for the child");
    }

    /// The trace-event contract, checked structurally: every `E` event
    /// closes the most recent unclosed `B` *of the same name on the
    /// same tid* — including when worker spans land on their own thread
    /// lanes via the explicit parent handoff.
    #[test]
    fn chrome_trace_every_end_matches_an_earlier_begin() {
        let rec = std::sync::Arc::new(InMemoryRecorder::new());
        let parent = rec.span_begin("experiment.e1", SpanId::ROOT);
        let pass = rec.span_begin("assoc.apriori.pass2", parent);
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let name = format!("par.shard{w}");
                    let id = rec.span_begin(&name, pass);
                    rec.span_end(id, &name, 1_000 + w);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        rec.span_end(pass, "assoc.apriori.pass2", 5_000);
        rec.span_end(parent, "experiment.e1", 9_000);

        let json = chrome_trace(&rec.snapshot());
        let mut stacks: std::collections::HashMap<String, Vec<String>> =
            std::collections::HashMap::new();
        let field = |line: &str, key: &str| -> String {
            let (_, rest) = line.split_once(&format!("\"{key}\": ")).unwrap();
            rest.trim_start_matches('"')
                .split(['"', ',', '}'])
                .next()
                .unwrap()
                .to_owned()
        };
        let mut events = 0;
        for line in json.lines().filter(|l| l.contains("\"ph\"")) {
            events += 1;
            let (name, ph, tid) = (field(line, "name"), field(line, "ph"), field(line, "tid"));
            match ph.as_str() {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => {
                    let top = stacks.get_mut(&tid).and_then(Vec::pop);
                    assert_eq!(top.as_deref(), Some(name.as_str()), "E without matching B");
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(events, 8, "4 spans, one B/E pair each");
        assert!(
            stacks.values().all(Vec::is_empty),
            "unclosed B events remain: {stacks:?}"
        );
    }

    #[test]
    fn folded_stacks_aggregate_self_time() {
        let out = folded_stacks(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.iter().all(|l| l.rsplit_once(' ').is_some()));
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("experiment.e1;assoc.apriori.pass1;par.shard0 ")),
            "full stack path present: {out}"
        );
        // Values parse as integers.
        for l in &lines {
            let (_, v) = l.rsplit_once(' ').unwrap();
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn prometheus_emits_all_series_types() {
        let out = prometheus(&sample());
        assert!(out.contains("# TYPE assoc_apriori_passes counter\nassoc_apriori_passes 2\n"));
        assert!(out.contains("# TYPE assoc_mem_db_bytes gauge\nassoc_mem_db_bytes 1024.0\n"));
        assert!(out.contains("# TYPE par_shard_items histogram"));
        // 100 lands in bucket 7 (le 127), 900 in bucket 10 (le 1023).
        assert!(out.contains("par_shard_items_bucket{le=\"127\"} 1\n"));
        assert!(out.contains("par_shard_items_bucket{le=\"1023\"} 2\n"));
        assert!(out.contains("par_shard_items_bucket{le=\"+Inf\"} 2\n"));
        assert!(out.contains("par_shard_items_sum 1000\n"));
        assert!(out.contains("par_shard_items_count 2\n"));
    }

    /// Asserts one exposition line is well-formed, including the
    /// optional OpenMetrics exemplar suffix on bucket lines.
    fn lint_line(line: &str) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            assert!(matches!(
                parts.next(),
                Some("counter" | "gauge" | "histogram")
            ));
            return;
        }
        // Split off an exemplar suffix: `<series> <value> # {trace_id="…"} <exemplar-value>`
        let series_part = match line.split_once(" # ") {
            Some((series, exemplar)) => {
                let rest = exemplar
                    .strip_prefix("{trace_id=\"")
                    .unwrap_or_else(|| panic!("bad exemplar labels in {line}"));
                let (id, rest) = rest.split_once("\"} ").expect("unterminated exemplar");
                assert_eq!(id.len(), 16, "trace_id is 16 hex digits in {line}");
                assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
                rest.parse::<f64>().expect("exemplar value parses");
                series
            }
            None => line,
        };
        let (series, value) = series_part.rsplit_once(' ').unwrap();
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "bad value in {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad series name in {line}"
        );
    }

    #[test]
    fn prometheus_lint_every_line_well_formed() {
        for line in prometheus(&sample()).lines() {
            lint_line(line);
        }
    }

    #[test]
    fn prometheus_buckets_carry_exemplars() {
        use crate::TraceId;
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.value_traced("serve.latency.predict_ns", 100, TraceId(0xDEAD_BEEF));
        obs.value_traced("serve.latency.predict_ns", 900, TraceId(0xFEED));
        let out = prometheus(&rec.snapshot());
        assert!(
            out.contains(
                "serve_latency_predict_ns_bucket{le=\"127\"} 1 # {trace_id=\"00000000deadbeef\"} 100"
            ),
            "{out}"
        );
        assert!(
            out.contains(
                "serve_latency_predict_ns_bucket{le=\"1023\"} 2 # {trace_id=\"000000000000feed\"} 900"
            ),
            "{out}"
        );
        // +Inf / _sum / _count never carry exemplars.
        assert!(out.contains("serve_latency_predict_ns_bucket{le=\"+Inf\"} 2\n"));
        for line in out.lines() {
            lint_line(line);
        }
    }
}
