//! Log-bucketed histograms: the aggregation behind every span-duration
//! and value distribution in the recorder.
//!
//! Buckets are powers of two — bucket `0` holds the value `0`, bucket
//! `i >= 1` holds values in `[2^(i-1), 2^i)` — so recording is two
//! instructions (`leading_zeros` + increment), merging is elementwise
//! addition (exactly associative and commutative), and the exact
//! `count`/`sum` ride alongside so nothing the old `(count, total_ns)`
//! aggregate offered is lost. Quantiles are recovered from the bucket
//! counts to within one power of two, which is what the p50/p99 span
//! tables need.

use std::fmt;

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const N_BUCKETS: usize = 65;

/// A histogram exemplar: the most recent *traced* observation that
/// landed in a bucket. Recorders keep one per (histogram, bucket) —
/// last write wins — so an operator can jump from "the p99 bucket grew"
/// straight to a concrete request trace. Exported in OpenMetrics
/// exemplar syntax by [`crate::export::prometheus`] and serialized in
/// snapshot schema 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Raw id of the trace whose observation landed here (the `u64`
    /// behind [`crate::trace::TraceId`]).
    pub trace_id: u64,
    /// The exact observed value (the bucket only bounds it).
    pub value: u64,
}

/// A mergeable power-of-two histogram with exact count and sum.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values (saturating).
    pub sum: u64,
    /// `buckets[0]` counts zeros; `buckets[i]` counts values in
    /// `[2^(i-1), 2^i)`.
    pub buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
#[inline]
pub fn bucket_max(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The smallest value bucket `i` can hold.
#[inline]
pub fn bucket_min(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Merges another histogram in (elementwise; exactly associative).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The histogram of values recorded since `earlier` was snapshot,
    /// assuming `self` is a later cumulative snapshot of the same
    /// series — elementwise saturating subtraction, the inverse of
    /// [`Histogram::merge`]. Saturation (rather than panic) keeps a
    /// window query safe if the recorder was swapped out underneath
    /// the caller; in that case the delta degrades to the newer
    /// snapshot's own contents.
    pub fn saturating_delta(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *o = a.saturating_sub(*b);
        }
        out
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the inclusive upper bound
    /// of the bucket holding the rank-⌈q·count⌉ value — an upper
    /// estimate within a factor of two of the true order statistic.
    /// `None` when empty; `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target order statistic, 1-based; q=0 maps to the
        // minimum (rank 1).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_max(i));
            }
        }
        Some(u64::MAX)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs in index order
    /// (the sparse form the snapshot serializes).
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_index(lo), i, "2^{} lower edge", i - 1);
            assert_eq!(bucket_index(lo + lo / 2), i, "mid-bucket");
            let hi = bucket_max(i);
            assert_eq!(bucket_index(hi), i, "upper edge");
            if i < 64 {
                assert_eq!(bucket_index(hi + 1), i + 1, "next bucket");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn count_and_sum_are_exact() {
        let mut h = Histogram::new();
        let values = [0u64, 1, 2, 3, 1000, 65_535, 65_536, u64::MAX / 2];
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count, values.len() as u64);
        assert_eq!(h.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // True median 500; bucket upper bound within [500, 1023].
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((990..=1023).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(0.0), Some(bucket_max(bucket_index(1))));
        assert_eq!(h.quantile(1.0), Some(bucket_max(bucket_index(1000))));
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 17);
            all.record(v * 17);
        }
        for v in 0..37u64 {
            b.record(v * v);
            all.record(v * v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn saturating_delta_inverts_merge() {
        let mut early = Histogram::new();
        for v in 0..50u64 {
            early.record(v * 13);
        }
        let mut late = early.clone();
        let mut window = Histogram::new();
        for v in 0..31u64 {
            late.record(v * v + 7);
            window.record(v * v + 7);
        }
        assert_eq!(late.saturating_delta(&early), window);
        // Degenerate direction (older minus newer) saturates to empty.
        assert!(early.saturating_delta(&late).is_empty());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
    }
}
