//! Live SLO evaluation, alerting, and concept-drift detection — the
//! layer that turns the recorder from a flight data recorder into a
//! control loop.
//!
//! A [`Watcher`] is driven by ticks: each tick it snapshots a live
//! recorder into a [`MetricView`] sliding window, evaluates every
//! [`SloRule`] against the windowed quantities, and advances one
//! [`AlertState`] machine per rule:
//!
//! ```text
//! Ok ──breach──▶ Pending ──breach held for_ms──▶ Firing
//! ▲                 │                               │
//! │              !breach                   clear for clear_for_ms
//! │                 ▼                               ▼
//! └──────────────── Ok ◀──────!breach─────────── Resolved
//! ```
//!
//! At most one edge is taken per tick, so `Pending` can never skip to
//! `Resolved`, and during `Firing` any breach tick resets the clear
//! timer — the hysteresis that keeps an oscillating series from
//! flapping. Time comes from an injected [`Clock`], so the whole
//! machine is deterministic and property-testable: the same snapshots
//! at the same tick times produce bit-identical transition sequences
//! (E17 gates exactly this at 0% tolerance).
//!
//! Drift rules wrap a [`drift`] detector (Page–Hinkley or CUSUM) around
//! a gauge's observation series — each new gauge write ordinal (schema
//! 3 `gauge_seq`) feeds the detector once — and a detection latches the
//! rule breached for its hold window so the state machine can walk the
//! same `Pending → Firing` path.
//!
//! Every evaluation emits `watch.*` metrics through the ordinary
//! [`Obs`] facade, so the watcher's own behaviour lands in snapshots,
//! the Prometheus exposition, and the run ledger like any other
//! subsystem.

pub mod drift;
pub mod rules;
pub mod view;

pub use drift::{Cusum, Detector, PageHinkley};
pub use rules::{Condition, DetectorSpec, RuleKind, RuleSet, SloRule};
pub use view::MetricView;

use crate::{Obs, Snapshot};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The watcher's time source. Injected so every gated path can use a
/// [`ManualClock`] and stay wall-clock-free.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds (any fixed origin).
    fn now_ms(&self) -> u64;
}

/// A hand-advanced clock: deterministic tests and experiments move
/// time explicitly.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock standing at `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        Self {
            ms: AtomicU64::new(start_ms),
        }
    }

    /// Moves time forward by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.ms.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Jumps to an absolute time (must not move backwards in sane use).
    pub fn set(&self, t_ms: u64) {
        self.ms.store(t_ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

/// The real clock: milliseconds since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl SystemClock {
    /// A clock whose zero is "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// Where one rule's alert currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No breach.
    Ok,
    /// Breached, waiting out `for_ms` before firing.
    Pending,
    /// The alert is live.
    Firing,
    /// The alert just cleared (one tick; then back to `Ok`).
    Resolved,
}

impl AlertState {
    /// Lowercase label (`"ok"`, `"pending"`, `"firing"`, `"resolved"`).
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One state-machine edge taken during a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Rule name.
    pub rule: String,
    /// SLO or drift rule.
    pub kind: RuleKind,
    /// State before the tick.
    pub from: AlertState,
    /// State after the tick.
    pub to: AlertState,
    /// Clock time of the tick.
    pub at_ms: u64,
}

/// A rule's externally visible status (the serving status API row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertStatus {
    /// Rule name.
    pub rule: String,
    /// SLO or drift rule.
    pub kind: RuleKind,
    /// Current state.
    pub state: AlertState,
    /// Clock time the current state was entered (`None`: never left
    /// the initial `Ok`).
    pub since_ms: Option<u64>,
    /// Total edges taken since the watcher started.
    pub transitions: u64,
}

/// Everything one tick (or one replay) produced, renderable as the
/// `dm watch` table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WatchReport {
    /// Edges taken, in occurrence order.
    pub transitions: Vec<Transition>,
    /// Final status of every rule, in rule order.
    pub statuses: Vec<AlertStatus>,
}

impl WatchReport {
    /// Renders the firing/resolved table plus the transition log
    /// (stable output — golden-tested).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let firing = self
            .statuses
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count();
        let _ = writeln!(
            out,
            "watch: {} rules, {} firing, {} transitions",
            self.statuses.len(),
            firing,
            self.transitions.len()
        );
        out.push('\n');
        let rule_w = self
            .statuses
            .iter()
            .map(|s| s.rule.len())
            .chain([4])
            .max()
            .unwrap_or(4);
        let _ = writeln!(
            out,
            "{:<rule_w$}  {:<5}  {:<8}  {:>10}  {:>11}",
            "RULE", "KIND", "STATE", "SINCE", "TRANSITIONS"
        );
        for s in &self.statuses {
            let since = match s.since_ms {
                Some(t) => format!("@{t}ms"),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "{:<rule_w$}  {:<5}  {:<8}  {:>10}  {:>11}",
                s.rule,
                s.kind.label(),
                s.state.label(),
                since,
                s.transitions
            );
        }
        if !self.transitions.is_empty() {
            out.push('\n');
            out.push_str("TRANSITIONS\n");
            for t in &self.transitions {
                let _ = writeln!(
                    out,
                    "@{}ms  {} [{}]  {} -> {}",
                    t.at_ms,
                    t.rule,
                    t.kind.label(),
                    t.from.label(),
                    t.to.label()
                );
            }
        }
        out
    }
}

/// Rule name as a metric-name segment: lowercase, `[a-z0-9_]` only.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// One rule's runtime: the rule plus its state-machine scratch.
#[derive(Debug)]
struct RuleRuntime {
    rule: SloRule,
    /// Sanitized name segment for `watch.alert.<name>.*` metrics.
    metric_name: String,
    state: AlertState,
    /// When the current breach streak started (while `Pending`).
    pending_since: Option<u64>,
    /// When the current clean streak started (while `Firing`).
    clear_since: Option<u64>,
    /// When the current state was entered.
    state_since: Option<u64>,
    /// Running drift detector (drift rules only).
    detector: Option<Detector>,
    /// Last gauge write ordinal consumed by the detector.
    last_seq: Option<u64>,
    /// A detection latches the rule breached until this clock time.
    drift_breach_until: Option<u64>,
    transitions: u64,
}

impl RuleRuntime {
    fn new(rule: SloRule) -> Self {
        let detector = match &rule.condition {
            Condition::Drift { detector, .. } => Some(detector.build()),
            _ => None,
        };
        Self {
            metric_name: sanitize(&rule.name),
            detector,
            rule,
            state: AlertState::Ok,
            pending_since: None,
            clear_since: None,
            state_since: None,
            last_seq: None,
            drift_breach_until: None,
            transitions: 0,
        }
    }

    /// Whether the rule's condition holds right now. Drift rules feed
    /// their detector with any unconsumed gauge observation first and
    /// report detection edges via the return's second slot.
    fn breach(&mut self, view: &MetricView, now: u64) -> (bool, bool) {
        match &self.rule.condition {
            Condition::QuantileAbove { metric, q, max } => {
                let b = view
                    .hist_delta(metric)
                    .and_then(|h| h.quantile(*q))
                    .is_some_and(|v| v as f64 > *max);
                (b, false)
            }
            Condition::RatioAbove {
                numerator,
                denominators,
                max,
            } => {
                let den: u64 = denominators.iter().map(|d| view.counter_delta(d)).sum();
                if den == 0 {
                    return (false, false);
                }
                let num = view.counter_delta(numerator);
                (num as f64 / den as f64 > *max, false)
            }
            Condition::StaleFor { metric, max_age_ms } => {
                let b = view
                    .ms_since_change(metric, now)
                    .is_some_and(|age| age > *max_age_ms);
                (b, false)
            }
            Condition::GaugeAbove { metric, max } => {
                (view.gauge(metric).is_some_and(|(v, _)| v > *max), false)
            }
            Condition::Drift {
                metric, detector, ..
            } => {
                let mut detected = false;
                if let Some((v, seq)) = view.gauge(metric) {
                    if self.last_seq != Some(seq) {
                        self.last_seq = Some(seq);
                        let det = self.detector.get_or_insert_with(|| detector.build());
                        if det.update(v) {
                            detected = true;
                            self.drift_breach_until =
                                Some(now.saturating_add(self.rule.drift_hold_ms().max(1)));
                        }
                    }
                }
                let b = self.drift_breach_until.is_some_and(|until| now < until);
                (b, detected)
            }
        }
    }

    /// Advances the state machine by at most one edge.
    fn step(&mut self, breach: bool, now: u64) -> Option<(AlertState, AlertState)> {
        let from = self.state;
        let to = match (self.state, breach) {
            (AlertState::Ok, true) => {
                self.pending_since = Some(now);
                Some(AlertState::Pending)
            }
            (AlertState::Ok, false) => None,
            (AlertState::Pending, false) => {
                self.pending_since = None;
                Some(AlertState::Ok)
            }
            (AlertState::Pending, true) => {
                let since = self.pending_since.unwrap_or(now);
                if now.saturating_sub(since) >= self.rule.for_ms {
                    self.pending_since = None;
                    self.clear_since = None;
                    Some(AlertState::Firing)
                } else {
                    None
                }
            }
            (AlertState::Firing, true) => {
                // Any breach tick resets the clear timer: hysteresis.
                self.clear_since = None;
                None
            }
            (AlertState::Firing, false) => {
                let since = *self.clear_since.get_or_insert(now);
                if now.saturating_sub(since) >= self.rule.clear_for_ms {
                    self.clear_since = None;
                    Some(AlertState::Resolved)
                } else {
                    None
                }
            }
            (AlertState::Resolved, true) => {
                self.pending_since = Some(now);
                Some(AlertState::Pending)
            }
            (AlertState::Resolved, false) => Some(AlertState::Ok),
        }?;
        self.state = to;
        self.state_since = Some(now);
        self.transitions += 1;
        Some((from, to))
    }

    fn status(&self) -> AlertStatus {
        AlertStatus {
            rule: self.rule.name.clone(),
            kind: self.rule.kind(),
            state: self.state,
            since_ms: self.state_since,
            transitions: self.transitions,
        }
    }
}

/// The alerting engine: a rule set, a sliding [`MetricView`], and one
/// state machine per rule, all driven by an injected [`Clock`].
pub struct Watcher {
    view: MetricView,
    clock: Arc<dyn Clock>,
    rules: Vec<RuleRuntime>,
    ticks: u64,
}

impl fmt::Debug for Watcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Watcher")
            .field("rules", &self.rules.len())
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl Watcher {
    /// A watcher evaluating `rules` over a `window_ms` sliding window,
    /// reading time from `clock`.
    pub fn new(rules: RuleSet, window_ms: u64, clock: Arc<dyn Clock>) -> Self {
        Self {
            view: MetricView::new(window_ms),
            clock,
            rules: rules.rules.into_iter().map(RuleRuntime::new).collect(),
            ticks: 0,
        }
    }

    /// Evaluation ticks performed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of rules currently `Firing`.
    pub fn firing(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| r.state == AlertState::Firing)
            .count()
    }

    /// Current status of every rule, in rule order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules.iter().map(RuleRuntime::status).collect()
    }

    /// One evaluation tick: absorb `snap` at the clock's current time,
    /// evaluate every rule, advance the state machines, and emit
    /// `watch.*` metrics through `obs`. Returns the edges taken.
    pub fn tick(&mut self, snap: &Snapshot, obs: &Obs<'_>) -> Vec<Transition> {
        let now = self.clock.now_ms();
        self.ticks += 1;
        self.view.push(snap, now);
        obs.counter("watch.eval.ticks", 1);
        let mut transitions = Vec::new();
        let view = &self.view;
        for rt in &mut self.rules {
            let (breach, detected) = rt.breach(view, now);
            if detected {
                obs.counter("watch.drift.detections", 1);
                obs.counter_fmt(format_args!("watch.drift.{}.detections", rt.metric_name), 1);
            }
            if let Some(det) = &rt.detector {
                obs.gauge_fmt(
                    format_args!("watch.drift.{}.stat", rt.metric_name),
                    det.statistic(),
                );
            }
            if let Some((from, to)) = rt.step(breach, now) {
                obs.counter("watch.alert.transitions", 1);
                obs.counter_fmt(
                    format_args!("watch.alert.{}.{}", rt.metric_name, to.label()),
                    1,
                );
                obs.event(
                    "watch.alert.transition",
                    &format!(
                        "{} [{}] {}->{} @{}ms",
                        rt.rule.name,
                        rt.rule.kind().label(),
                        from.label(),
                        to.label(),
                        now
                    ),
                );
                transitions.push(Transition {
                    rule: rt.rule.name.clone(),
                    kind: rt.rule.kind(),
                    from,
                    to,
                    at_ms: now,
                });
            }
        }
        obs.gauge("watch.alert.firing", self.firing() as f64);
        transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Recorder};

    fn depth_rule(for_ms: u64, clear_for_ms: u64) -> RuleSet {
        RuleSet::new(vec![SloRule::new(
            "queue-depth",
            Condition::GaugeAbove {
                metric: "serve.queue.depth".into(),
                max: 5.0,
            },
        )
        .for_ms(for_ms)
        .clear_for_ms(clear_for_ms)])
    }

    /// Drives one gauge through the watcher at a 100 ms cadence and
    /// returns the state after each tick.
    fn drive(
        rules: RuleSet,
        metric: &str,
        series: &[f64],
    ) -> (Vec<AlertState>, Vec<Transition>, Snapshot) {
        let clock = Arc::new(ManualClock::new(0));
        let mut w = Watcher::new(rules, 10_000, clock.clone() as Arc<dyn Clock>);
        let source = InMemoryRecorder::new();
        let sink = InMemoryRecorder::new();
        let obs = Obs::new(&sink);
        let mut states = Vec::new();
        let mut edges = Vec::new();
        for &v in series {
            source.gauge(metric, v);
            edges.extend(w.tick(&source.snapshot(), &obs));
            states.push(w.statuses()[0].state);
            clock.advance(100);
        }
        (states, edges, sink.snapshot())
    }

    #[test]
    fn walks_ok_pending_firing_resolved_ok() {
        let series = [1.0, 9.0, 9.0, 9.0, 1.0, 1.0];
        let (states, edges, snap) = drive(depth_rule(100, 0), "serve.queue.depth", &series);
        assert_eq!(
            states,
            [
                AlertState::Ok,
                AlertState::Pending,
                AlertState::Firing,
                AlertState::Firing,
                AlertState::Resolved,
                AlertState::Ok,
            ]
        );
        assert_eq!(edges.len(), 4);
        assert_eq!(snap.counter("watch.alert.transitions"), Some(4));
        assert_eq!(snap.counter("watch.alert.queue_depth.firing"), Some(1));
        assert_eq!(snap.counter("watch.alert.queue_depth.resolved"), Some(1));
        assert_eq!(snap.counter("watch.eval.ticks"), Some(6));
        assert_eq!(snap.gauge("watch.alert.firing"), Some(0.0));
        // The event log carries the full deterministic trail.
        assert_eq!(snap.events.len(), 4);
        assert_eq!(
            snap.events[1].detail,
            "queue-depth [slo] pending->firing @200ms"
        );
    }

    #[test]
    fn short_breach_returns_to_ok_without_firing() {
        let series = [1.0, 9.0, 1.0, 1.0];
        let (states, edges, _) = drive(depth_rule(300, 0), "serve.queue.depth", &series);
        assert_eq!(
            states,
            [
                AlertState::Ok,
                AlertState::Pending,
                AlertState::Ok,
                AlertState::Ok,
            ]
        );
        assert!(edges.iter().all(|t| t.to != AlertState::Firing));
    }

    #[test]
    fn hysteresis_holds_firing_through_oscillation() {
        // Breach, then oscillate every tick (100 ms) with a 250 ms
        // clear requirement: the clean runs never mature, so the alert
        // stays firing until the series goes clean for good.
        let series = [9.0, 9.0, 1.0, 9.0, 1.0, 9.0, 1.0, 1.0, 1.0, 1.0];
        let (states, _, _) = drive(depth_rule(0, 250), "serve.queue.depth", &series);
        assert_eq!(states[1], AlertState::Firing);
        for (i, s) in states.iter().enumerate().take(9).skip(1) {
            assert_ne!(*s, AlertState::Resolved, "resolved early at tick {i}");
            assert_ne!(*s, AlertState::Ok, "cleared early at tick {i}");
        }
        assert_eq!(*states.last().unwrap(), AlertState::Resolved);
    }

    #[test]
    fn quiet_series_never_transitions() {
        let series = [1.0; 20];
        let (states, edges, snap) = drive(depth_rule(0, 0), "serve.queue.depth", &series);
        assert!(states.iter().all(|s| *s == AlertState::Ok));
        assert!(edges.is_empty());
        assert_eq!(snap.counter("watch.alert.transitions"), None);
    }

    #[test]
    fn drift_rule_fires_and_emits_detection_counters() {
        let rules = RuleSet::new(vec![SloRule::new(
            "inertia-drift",
            Condition::Drift {
                metric: "stream.kmeans.inertia".into(),
                detector: DetectorSpec::PageHinkley {
                    delta: 0.05,
                    lambda: 5.0,
                },
                hold_ms: Some(300),
            },
        )]);
        let mut series = vec![1.0; 30];
        series.extend_from_slice(&[8.0; 20]);
        let (states, edges, snap) = drive(rules, "stream.kmeans.inertia", &series);
        assert!(
            states.contains(&AlertState::Firing),
            "drift never fired: {states:?}"
        );
        assert!(snap.counter("watch.drift.detections").unwrap_or(0) >= 1);
        assert!(
            snap.counter("watch.drift.inertia_drift.detections")
                .unwrap_or(0)
                >= 1
        );
        assert!(edges
            .iter()
            .any(|t| t.kind == RuleKind::Drift && t.to == AlertState::Firing));
        // The latch expires: with the series flat again at the new
        // level, the alert resolves by the end.
        assert_eq!(*states.last().unwrap(), AlertState::Ok);
    }

    #[test]
    fn report_renders_stably() {
        let series = [1.0, 9.0, 9.0, 1.0];
        let clock = Arc::new(ManualClock::new(0));
        let mut w = Watcher::new(depth_rule(0, 0), 10_000, clock.clone() as Arc<dyn Clock>);
        let source = InMemoryRecorder::new();
        let sink = InMemoryRecorder::new();
        let obs = Obs::new(&sink);
        let mut transitions = Vec::new();
        for &v in &series {
            source.gauge("serve.queue.depth", v);
            transitions.extend(w.tick(&source.snapshot(), &obs));
            clock.advance(100);
        }
        let report = WatchReport {
            transitions,
            statuses: w.statuses(),
        };
        let rendered = report.render();
        assert!(rendered.starts_with("watch: 1 rules, 0 firing, 3 transitions"));
        assert!(rendered.contains("queue-depth"));
        assert!(rendered.contains("firing -> resolved"));
        // Same inputs, same bytes.
        assert_eq!(rendered, report.render());
    }

    #[test]
    fn sanitize_maps_rule_names_to_metric_segments() {
        assert_eq!(sanitize("queue-depth p99!"), "queue_depth_p99_");
        assert_eq!(sanitize("Ok_123"), "ok_123");
    }
}
