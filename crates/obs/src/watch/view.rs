//! Sliding windows over a sequence of recorder snapshots.
//!
//! A [`MetricView`] turns the recorder's *cumulative* aggregates into
//! the *windowed* quantities SLO rules are written against: counter
//! deltas, windowed histograms (elementwise subtraction of cumulative
//! snapshots — the inverse of [`Histogram::merge`]), the latest gauge
//! observation with its write ordinal, and counter staleness. Time is
//! whatever the caller's [`super::Clock`] says, so a view replayed from
//! the same snapshots at the same tick times answers identically.

use crate::hist::Histogram;
use crate::Snapshot;
use std::collections::{BTreeMap, VecDeque};

/// One absorbed snapshot, stamped with the tick time it arrived at.
#[derive(Debug, Clone)]
struct Frame {
    t_ms: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (f64, u64)>,
    hists: BTreeMap<String, Histogram>,
}

/// A bounded window of recorder snapshots with delta queries.
///
/// Push a fresh [`Snapshot`] per evaluation tick; the view keeps just
/// enough frames to answer "what happened in the last `window_ms`"
/// (the newest frame, everything inside the window, and one frame at
/// or before its edge to serve as the subtraction base).
#[derive(Debug)]
pub struct MetricView {
    window_ms: u64,
    frames: VecDeque<Frame>,
    /// Tick time each counter (or event name) last changed value.
    last_change_ms: BTreeMap<String, u64>,
    /// Tick time of the first push — the staleness baseline for
    /// counters that have never appeared.
    birth_ms: Option<u64>,
    /// Fallback ordinal for gauges whose snapshot carries no
    /// `gauge_seq` entry (pre-schema-3 documents replayed through the
    /// CLI): advances once per push, so every frame counts as a fresh
    /// observation.
    synth_seq: u64,
}

impl MetricView {
    /// A view answering queries over the trailing `window_ms`
    /// milliseconds (min 1).
    pub fn new(window_ms: u64) -> Self {
        Self {
            window_ms: window_ms.max(1),
            frames: VecDeque::new(),
            last_change_ms: BTreeMap::new(),
            birth_ms: None,
            synth_seq: 0,
        }
    }

    /// The configured window length.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Number of frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no snapshot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Absorbs one snapshot taken at tick time `t_ms` (must not move
    /// backwards; equal times are allowed and replace nothing).
    pub fn push(&mut self, snap: &Snapshot, t_ms: u64) {
        self.birth_ms.get_or_insert(t_ms);
        self.synth_seq += 1;
        let mut counters = snap.counters.clone();
        // Events are counters in all but storage: fold their per-name
        // counts in so rules can reference names like `guard.trip`.
        for e in &snap.events {
            *counters.entry(e.name.clone()).or_insert(0) += 1;
        }
        let gauges = snap
            .gauges
            .iter()
            .map(|(k, &v)| {
                let seq = snap.gauge_seq.get(k).copied().unwrap_or(self.synth_seq);
                (k.clone(), (v, seq))
            })
            .collect();
        // Counter staleness: a counter "changed" when its cumulative
        // value differs from the previous frame (or it first appears).
        let prev = self.frames.back();
        for (k, &v) in &counters {
            let changed = match prev.and_then(|f| f.counters.get(k)) {
                Some(&old) => old != v,
                None => true,
            };
            if changed {
                self.last_change_ms.insert(k.clone(), t_ms);
            }
        }
        self.frames.push_back(Frame {
            t_ms,
            counters,
            gauges,
            hists: snap.histograms.clone(),
        });
        // Evict frames strictly older than the window, but always keep
        // one at or before the edge as the delta base.
        let edge = t_ms.saturating_sub(self.window_ms);
        while self.frames.len() >= 2 && self.frames[1].t_ms <= edge {
            self.frames.pop_front();
        }
    }

    /// Growth of a counter (or event count) across the window.
    pub fn counter_delta(&self, name: &str) -> u64 {
        let (Some(oldest), Some(newest)) = (self.frames.front(), self.frames.back()) else {
            return 0;
        };
        let old = oldest.counters.get(name).copied().unwrap_or(0);
        let new = newest.counters.get(name).copied().unwrap_or(0);
        new.saturating_sub(old)
    }

    /// Histogram of values recorded across the window (`None` when the
    /// name never appeared).
    pub fn hist_delta(&self, name: &str) -> Option<Histogram> {
        let newest = self.frames.back()?.hists.get(name)?;
        match self.frames.front()?.hists.get(name) {
            Some(oldest) => Some(newest.saturating_delta(oldest)),
            None => Some(newest.clone()),
        }
    }

    /// The latest gauge observation as `(value, write ordinal)`.
    pub fn gauge(&self, name: &str) -> Option<(f64, u64)> {
        self.frames.back()?.gauges.get(name).copied()
    }

    /// Milliseconds since the counter last changed, as seen at `now_ms`.
    /// A counter that has never appeared ages from the first push
    /// (`None` before any push).
    pub fn ms_since_change(&self, name: &str, now_ms: u64) -> Option<u64> {
        let last = self.last_change_ms.get(name).copied().or(self.birth_ms)?;
        Some(now_ms.saturating_sub(last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Obs};

    #[test]
    fn counter_delta_spans_the_window_only() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let mut view = MetricView::new(100);
        obs.counter("serve.queue.admitted", 5);
        view.push(&rec.snapshot(), 0);
        obs.counter("serve.queue.admitted", 7);
        view.push(&rec.snapshot(), 50);
        assert_eq!(view.counter_delta("serve.queue.admitted"), 7);
        // A push far in the future evicts the early frames; the base
        // becomes the t=50 frame.
        obs.counter("serve.queue.admitted", 1);
        view.push(&rec.snapshot(), 200);
        assert_eq!(view.counter_delta("serve.queue.admitted"), 1);
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn events_count_as_counters() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let mut view = MetricView::new(1000);
        view.push(&rec.snapshot(), 0);
        obs.event("guard.trip", "deadline");
        obs.event("guard.trip", "work");
        view.push(&rec.snapshot(), 10);
        assert_eq!(view.counter_delta("guard.trip"), 2);
    }

    #[test]
    fn hist_delta_is_the_windowed_histogram() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let mut view = MetricView::new(1000);
        obs.value("serve.latency.score_ns", 10);
        view.push(&rec.snapshot(), 0);
        obs.value("serve.latency.score_ns", 1000);
        obs.value("serve.latency.score_ns", 2000);
        view.push(&rec.snapshot(), 10);
        let h = view.hist_delta("serve.latency.score_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 3000);
        assert!(view.hist_delta("missing").is_none());
    }

    #[test]
    fn gauge_carries_write_ordinal() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let mut view = MetricView::new(1000);
        obs.gauge("stream.kmeans.inertia", 4.0);
        view.push(&rec.snapshot(), 0);
        let (v1, s1) = view.gauge("stream.kmeans.inertia").unwrap();
        // Same value rewritten: the ordinal still advances.
        obs.gauge("stream.kmeans.inertia", 4.0);
        view.push(&rec.snapshot(), 10);
        let (v2, s2) = view.gauge("stream.kmeans.inertia").unwrap();
        assert_eq!((v1, v2), (4.0, 4.0));
        assert!(s2 > s1);
    }

    #[test]
    fn staleness_ages_from_last_change_or_birth() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        let mut view = MetricView::new(1000);
        assert_eq!(view.ms_since_change("serve.artifact.refreshed", 99), None);
        view.push(&rec.snapshot(), 0);
        // Never seen: ages from the first push.
        assert_eq!(
            view.ms_since_change("serve.artifact.refreshed", 40),
            Some(40)
        );
        obs.counter("serve.artifact.refreshed", 1);
        view.push(&rec.snapshot(), 50);
        assert_eq!(
            view.ms_since_change("serve.artifact.refreshed", 70),
            Some(20)
        );
        // No further change: age keeps growing across pushes.
        view.push(&rec.snapshot(), 100);
        assert_eq!(
            view.ms_since_change("serve.artifact.refreshed", 150),
            Some(100)
        );
    }
}
