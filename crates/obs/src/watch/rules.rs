//! Declarative SLO and drift rules, loadable from the workspace's
//! dependency-free JSON.
//!
//! A rule file is one object with a `rules` array; each rule names
//! itself, picks exactly one condition, and may tune the alert state
//! machine's `for_ms` (breach duration before `Pending` matures into
//! `Firing`) and `clear_for_ms` (clean duration before `Firing` clears
//! — the hysteresis that stops an oscillating series from flapping):
//!
//! ```json
//! {
//!   "rules": [
//!     {"name": "score-latency-p99", "for_ms": 200, "clear_for_ms": 400,
//!      "quantile_above": {"metric": "serve.latency.score_ns",
//!                         "q": 0.99, "max": 50000000}},
//!     {"name": "shed-rate",
//!      "ratio_above": {"numerator": "serve.queue.shed",
//!                      "denominators": ["serve.queue.admitted",
//!                                       "serve.queue.shed"],
//!                      "max": 0.05}},
//!     {"name": "artifact-stale",
//!      "stale_for": {"metric": "serve.artifact.refreshed",
//!                    "max_age_ms": 60000}},
//!     {"name": "inertia-drift",
//!      "drift": {"metric": "stream.kmeans.inertia", "hold_ms": 500,
//!                "page_hinkley": {"delta": 0.05, "lambda": 20.0}}}
//!   ]
//! }
//! ```

use super::drift::{Cusum, Detector, PageHinkley};
use crate::json::{self, Json};

/// Default CUSUM warmup when the rule file does not set one.
const DEFAULT_CUSUM_WARMUP: u64 = 10;

/// What a rule watches and when it counts as breached.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// The windowed `q`-quantile of a histogram exceeds `max`
    /// (e.g. p99 of `serve.latency.score_ns`).
    QuantileAbove {
        /// Histogram name.
        metric: String,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Breach threshold (same unit as the histogram's samples).
        max: f64,
    },
    /// The windowed ratio `Δnumerator / Σ Δdenominators` exceeds `max`
    /// (e.g. shed rate, truncation rate). Counter and event names both
    /// work. A zero denominator means "no traffic in the window" and
    /// never breaches.
    RatioAbove {
        /// Counter or event name on top.
        numerator: String,
        /// Counter or event names summed underneath.
        denominators: Vec<String>,
        /// Breach threshold as a plain ratio.
        max: f64,
    },
    /// The counter (or event) has not changed for more than
    /// `max_age_ms` (e.g. `serve.artifact.refreshed` staleness).
    StaleFor {
        /// Counter or event name.
        metric: String,
        /// Breach threshold in milliseconds.
        max_age_ms: u64,
    },
    /// The gauge's latest value exceeds `max`.
    GaugeAbove {
        /// Gauge name.
        metric: String,
        /// Breach threshold.
        max: f64,
    },
    /// A drift detector over the gauge's observation series raised.
    /// Each new write ordinal feeds the detector once; a detection
    /// latches the rule as breached for `hold_ms` so the state machine
    /// can walk `Pending → Firing` across subsequent ticks.
    Drift {
        /// Gauge name whose observation series is monitored.
        metric: String,
        /// Which detector, with its parameters.
        detector: DetectorSpec,
        /// How long one detection keeps the rule breached (`None`:
        /// `for_ms + 2000`).
        hold_ms: Option<u64>,
    },
}

/// Drift-detector family and parameters (see [`super::drift`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorSpec {
    /// Page–Hinkley mean-shift test.
    PageHinkley {
        /// Noise tolerance δ.
        delta: f64,
        /// Detection threshold λ.
        lambda: f64,
    },
    /// One-sided upward CUSUM chart.
    Cusum {
        /// Allowance k.
        k: f64,
        /// Decision threshold h.
        h: f64,
        /// In-control samples used to estimate the baseline level.
        warmup: u64,
    },
}

impl DetectorSpec {
    /// Instantiates a fresh running detector.
    pub fn build(&self) -> Detector {
        match *self {
            DetectorSpec::PageHinkley { delta, lambda } => {
                Detector::PageHinkley(PageHinkley::new(delta, lambda))
            }
            DetectorSpec::Cusum { k, h, warmup } => Detector::Cusum(Cusum::new(k, h, warmup)),
        }
    }
}

/// Coarse classification of a rule, carried on transitions so
/// reactions (degrade vs refresh) can discriminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// A service-level objective on live traffic.
    Slo,
    /// A concept-drift detection on a model-state series.
    Drift,
}

impl RuleKind {
    /// Lowercase label (`"slo"` / `"drift"`).
    pub fn label(self) -> &'static str {
        match self {
            RuleKind::Slo => "slo",
            RuleKind::Drift => "drift",
        }
    }
}

/// One named rule: a condition plus the state-machine durations.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name (also the metric-name segment for `watch.alert.<name>.*`).
    pub name: String,
    /// Breach condition.
    pub condition: Condition,
    /// How long the condition must hold before `Pending` becomes
    /// `Firing` (0: the tick after the breach started).
    pub for_ms: u64,
    /// How long the condition must stay clear before `Firing` becomes
    /// `Resolved` (0: the first clean tick resolves).
    pub clear_for_ms: u64,
}

impl SloRule {
    /// A rule that fires on the tick after its first breach and
    /// resolves on its first clean tick.
    pub fn new(name: impl Into<String>, condition: Condition) -> Self {
        Self {
            name: name.into(),
            condition,
            for_ms: 0,
            clear_for_ms: 0,
        }
    }

    /// Requires the breach to hold `ms` before firing.
    pub fn for_ms(mut self, ms: u64) -> Self {
        self.for_ms = ms;
        self
    }

    /// Requires `ms` of clean ticks before a firing alert resolves.
    pub fn clear_for_ms(mut self, ms: u64) -> Self {
        self.clear_for_ms = ms;
        self
    }

    /// Whether this is an SLO or a drift rule.
    pub fn kind(&self) -> RuleKind {
        match self.condition {
            Condition::Drift { .. } => RuleKind::Drift,
            _ => RuleKind::Slo,
        }
    }

    /// How long one drift detection keeps this rule breached.
    pub(crate) fn drift_hold_ms(&self) -> u64 {
        match self.condition {
            Condition::Drift { hold_ms, .. } => hold_ms.unwrap_or(self.for_ms + 2000),
            _ => 0,
        }
    }
}

/// An ordered set of rules (evaluation order = file order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// The rules, in declaration order.
    pub rules: Vec<SloRule>,
}

impl RuleSet {
    /// A set holding `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        Self { rules }
    }

    /// Parses a rule file (see the module docs for the schema).
    pub fn from_json(input: &str) -> Result<RuleSet, String> {
        let doc = json::parse(input).map_err(|e| format!("rule file: {e}"))?;
        let rules = doc
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("rule file: missing top-level \"rules\" array")?;
        let mut out = Vec::with_capacity(rules.len());
        for (i, r) in rules.iter().enumerate() {
            out.push(parse_rule(r).map_err(|e| format!("rule #{}: {e}", i + 1))?);
        }
        Ok(RuleSet { rules: out })
    }
}

fn need_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric \"{key}\""))
}

fn need_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer \"{key}\""))
}

fn need_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string \"{key}\""))
}

fn parse_detector(obj: &Json) -> Result<DetectorSpec, String> {
    if let Some(ph) = obj.get("page_hinkley") {
        return Ok(DetectorSpec::PageHinkley {
            delta: need_f64(ph, "delta")?,
            lambda: need_f64(ph, "lambda")?,
        });
    }
    if let Some(cs) = obj.get("cusum") {
        return Ok(DetectorSpec::Cusum {
            k: need_f64(cs, "k")?,
            h: need_f64(cs, "h")?,
            warmup: cs
                .get("warmup")
                .and_then(Json::as_u64)
                .unwrap_or(DEFAULT_CUSUM_WARMUP),
        });
    }
    Err("drift needs a \"page_hinkley\" or \"cusum\" detector".into())
}

fn parse_rule(r: &Json) -> Result<SloRule, String> {
    let name = need_str(r, "name")?;
    if name.is_empty() {
        return Err("empty rule name".into());
    }
    let mut conditions = Vec::new();
    if let Some(c) = r.get("quantile_above") {
        let q = need_f64(c, "q")?;
        if !(0.0..=1.0).contains(&q) {
            return Err(format!("q {q} not in [0, 1]"));
        }
        conditions.push(Condition::QuantileAbove {
            metric: need_str(c, "metric")?,
            q,
            max: need_f64(c, "max")?,
        });
    }
    if let Some(c) = r.get("ratio_above") {
        let denominators = c
            .get("denominators")
            .and_then(Json::as_arr)
            .ok_or("ratio_above needs a \"denominators\" array")?
            .iter()
            .map(|d| d.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()
            .ok_or("denominators must be strings")?;
        if denominators.is_empty() {
            return Err("ratio_above needs at least one denominator".into());
        }
        conditions.push(Condition::RatioAbove {
            numerator: need_str(c, "numerator")?,
            denominators,
            max: need_f64(c, "max")?,
        });
    }
    if let Some(c) = r.get("stale_for") {
        conditions.push(Condition::StaleFor {
            metric: need_str(c, "metric")?,
            max_age_ms: need_u64(c, "max_age_ms")?,
        });
    }
    if let Some(c) = r.get("gauge_above") {
        conditions.push(Condition::GaugeAbove {
            metric: need_str(c, "metric")?,
            max: need_f64(c, "max")?,
        });
    }
    if let Some(c) = r.get("drift") {
        conditions.push(Condition::Drift {
            metric: need_str(c, "metric")?,
            detector: parse_detector(c)?,
            hold_ms: c.get("hold_ms").and_then(Json::as_u64),
        });
    }
    if conditions.len() > 1 {
        return Err(format!(
            "{} conditions; exactly one allowed",
            conditions.len()
        ));
    }
    let condition = conditions.pop().ok_or_else(|| {
        "no condition (quantile_above / ratio_above / stale_for / gauge_above / drift)".to_owned()
    })?;
    Ok(SloRule {
        name,
        condition,
        for_ms: r.get("for_ms").and_then(Json::as_u64).unwrap_or(0),
        clear_for_ms: r.get("clear_for_ms").and_then(Json::as_u64).unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_condition_kind() {
        let set = RuleSet::from_json(
            r#"{
              "rules": [
                {"name": "p99", "for_ms": 200, "clear_for_ms": 400,
                 "quantile_above": {"metric": "serve.latency.score_ns", "q": 0.99, "max": 5e7}},
                {"name": "shed",
                 "ratio_above": {"numerator": "serve.queue.shed",
                                 "denominators": ["serve.queue.admitted", "serve.queue.shed"],
                                 "max": 0.05}},
                {"name": "stale", "stale_for": {"metric": "serve.artifact.refreshed", "max_age_ms": 60000}},
                {"name": "depth", "gauge_above": {"metric": "serve.queue.depth", "max": 10.0}},
                {"name": "ph", "drift": {"metric": "stream.kmeans.inertia",
                                          "page_hinkley": {"delta": 0.05, "lambda": 20.0}}},
                {"name": "cs", "drift": {"metric": "stream.kmeans.inertia", "hold_ms": 500,
                                          "cusum": {"k": 0.1, "h": 4.0, "warmup": 5}}}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(set.rules.len(), 6);
        assert_eq!(set.rules[0].for_ms, 200);
        assert_eq!(set.rules[0].clear_for_ms, 400);
        assert_eq!(set.rules[0].kind(), RuleKind::Slo);
        assert_eq!(set.rules[4].kind(), RuleKind::Drift);
        assert_eq!(set.rules[4].drift_hold_ms(), 2000);
        assert_eq!(set.rules[5].drift_hold_ms(), 500);
        match &set.rules[1].condition {
            Condition::RatioAbove { denominators, .. } => assert_eq!(denominators.len(), 2),
            c => panic!("wrong condition {c:?}"),
        }
    }

    #[test]
    fn rejects_malformed_rules() {
        for (bad, why) in [
            (r#"{}"#, "no rules array"),
            (r#"{"rules": [{"name": "x"}]}"#, "no condition"),
            (
                r#"{"rules": [{"name": "x",
                   "gauge_above": {"metric": "g", "max": 1.0},
                   "stale_for": {"metric": "c", "max_age_ms": 5}}]}"#,
                "two conditions",
            ),
            (
                r#"{"rules": [{"name": "", "gauge_above": {"metric": "g", "max": 1.0}}]}"#,
                "empty name",
            ),
            (
                r#"{"rules": [{"name": "x", "quantile_above": {"metric": "m", "q": 1.5, "max": 1.0}}]}"#,
                "q out of range",
            ),
            (
                r#"{"rules": [{"name": "x", "ratio_above": {"numerator": "n", "denominators": [], "max": 0.1}}]}"#,
                "empty denominators",
            ),
            (
                r#"{"rules": [{"name": "x", "drift": {"metric": "g"}}]}"#,
                "no detector",
            ),
        ] {
            assert!(RuleSet::from_json(bad).is_err(), "accepted {why}: {bad}");
        }
    }

    #[test]
    fn builder_defaults_fire_fast() {
        let r = SloRule::new(
            "depth",
            Condition::GaugeAbove {
                metric: "serve.queue.depth".into(),
                max: 4.0,
            },
        );
        assert_eq!((r.for_ms, r.clear_for_ms), (0, 0));
        let r = r.for_ms(100).clear_for_ms(300);
        assert_eq!((r.for_ms, r.clear_for_ms), (100, 300));
    }
}
