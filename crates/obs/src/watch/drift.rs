//! Concept-drift detectors over gauge series.
//!
//! Both detectors watch a univariate stream (the per-flush
//! `stream.kmeans.inertia` gauge, a shard-imbalance ratio, ...) and
//! raise when its level shifts from the history they have absorbed.
//! They are plain sequential state machines — no RNG, no clock — so
//! feeding the same sample sequence always produces the same detection
//! ticks, which is what lets E17 gate drift counts at 0% tolerance.

/// Page–Hinkley test for an upward mean shift.
///
/// Maintains the cumulative deviation `m_t = Σ (x_i − x̄_i − δ)` and its
/// running minimum; drift is declared when `m_t − min(m)` exceeds
/// `lambda`. `delta` absorbs magnitude noise, `lambda` trades detection
/// delay against false alarms. The detector resets itself after each
/// detection so repeated shifts re-arm it.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    n: u64,
    mean: f64,
    cum: f64,
    cum_min: f64,
}

impl PageHinkley {
    /// A detector with noise tolerance `delta` and threshold `lambda`.
    pub fn new(delta: f64, lambda: f64) -> Self {
        Self {
            delta,
            lambda,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            cum_min: 0.0,
        }
    }

    /// Absorbs one sample; `true` when this sample crossed the drift
    /// threshold (the detector resets itself on detection).
    pub fn update(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cum += x - self.mean - self.delta;
        self.cum_min = self.cum_min.min(self.cum);
        if self.cum - self.cum_min > self.lambda {
            self.reset();
            true
        } else {
            false
        }
    }

    /// The current test statistic `m_t − min(m)` (0 right after reset).
    pub fn statistic(&self) -> f64 {
        self.cum - self.cum_min
    }

    /// Forgets all absorbed history.
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.cum_min = 0.0;
    }
}

/// One-sided (upward) CUSUM chart.
///
/// The in-control level is estimated as the mean of the first `warmup`
/// samples; afterwards `g⁺ = max(0, g⁺ + x − mean − k)` accumulates
/// excursions above the level plus the allowance `k`, and drift is
/// declared when `g⁺ > h`. Resets (statistic and warmup) on detection.
#[derive(Debug, Clone)]
pub struct Cusum {
    k: f64,
    h: f64,
    warmup: u64,
    n: u64,
    mean: f64,
    g: f64,
}

impl Cusum {
    /// A chart with allowance `k`, threshold `h`, and an in-control
    /// level estimated from the first `warmup` samples (min 1).
    pub fn new(k: f64, h: f64, warmup: u64) -> Self {
        Self {
            k,
            h,
            warmup: warmup.max(1),
            n: 0,
            mean: 0.0,
            g: 0.0,
        }
    }

    /// Absorbs one sample; `true` when this sample crossed the drift
    /// threshold (the chart resets itself on detection).
    pub fn update(&mut self, x: f64) -> bool {
        self.n += 1;
        if self.n <= self.warmup {
            self.mean += (x - self.mean) / self.n as f64;
            return false;
        }
        self.g = (self.g + x - self.mean - self.k).max(0.0);
        if self.g > self.h {
            self.reset();
            true
        } else {
            false
        }
    }

    /// The current `g⁺` statistic (0 during warmup and after reset).
    pub fn statistic(&self) -> f64 {
        self.g
    }

    /// Forgets all absorbed history (re-enters warmup).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.g = 0.0;
    }
}

/// A running detector instance of either family.
#[derive(Debug, Clone)]
pub enum Detector {
    /// Page–Hinkley mean-shift test.
    PageHinkley(PageHinkley),
    /// One-sided CUSUM chart.
    Cusum(Cusum),
}

impl Detector {
    /// Absorbs one sample; `true` on a detection edge.
    pub fn update(&mut self, x: f64) -> bool {
        match self {
            Detector::PageHinkley(d) => d.update(x),
            Detector::Cusum(d) => d.update(x),
        }
    }

    /// The current test statistic.
    pub fn statistic(&self) -> f64 {
        match self {
            Detector::PageHinkley(d) => d.statistic(),
            Detector::Cusum(d) => d.statistic(),
        }
    }

    /// Forgets all absorbed history.
    pub fn reset(&mut self) {
        match self {
            Detector::PageHinkley(d) => d.reset(),
            Detector::Cusum(d) => d.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat series, then a level shift.
    fn shifted(flat: usize, shift: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut v = vec![lo; flat];
        v.resize(flat + shift, hi);
        v
    }

    #[test]
    fn page_hinkley_flags_level_shift_not_noise() {
        let mut ph = PageHinkley::new(0.05, 5.0);
        let mut detections = Vec::new();
        for (i, &x) in shifted(60, 40, 1.0, 3.0).iter().enumerate() {
            if ph.update(x) {
                detections.push(i);
            }
        }
        assert!(!detections.is_empty(), "shift never detected");
        assert!(
            detections[0] >= 60,
            "detected at {} inside the flat phase",
            detections[0]
        );
    }

    #[test]
    fn cusum_flags_level_shift_not_noise() {
        let mut cs = Cusum::new(0.2, 3.0, 20);
        let mut detections = Vec::new();
        for (i, &x) in shifted(60, 40, 1.0, 2.0).iter().enumerate() {
            if cs.update(x) {
                detections.push(i);
            }
        }
        assert!(!detections.is_empty(), "shift never detected");
        assert!(
            detections[0] >= 60,
            "detected at {} inside the flat phase",
            detections[0]
        );
    }

    #[test]
    fn detectors_rearm_after_detection() {
        // Two shifts, each from a fresh baseline the detector relearns.
        let mut series = shifted(60, 40, 1.0, 4.0);
        series.extend(shifted(60, 40, 4.0, 9.0));
        let mut ph = PageHinkley::new(0.05, 5.0);
        let hits = series.iter().filter(|&&x| ph.update(x)).count();
        assert!(hits >= 2, "only {hits} detections across two shifts");
    }

    #[test]
    fn deterministic_across_runs() {
        let series = shifted(50, 50, 2.0, 5.0);
        let run = |mut d: Detector| -> (Vec<usize>, f64) {
            let hits = series
                .iter()
                .enumerate()
                .filter(|(_, &x)| d.update(x))
                .map(|(i, _)| i)
                .collect();
            (hits, d.statistic())
        };
        let a = run(Detector::PageHinkley(PageHinkley::new(0.01, 8.0)));
        let b = run(Detector::PageHinkley(PageHinkley::new(0.01, 8.0)));
        assert_eq!(a, b);
        let a = run(Detector::Cusum(Cusum::new(0.1, 4.0, 10)));
        let b = run(Detector::Cusum(Cusum::new(0.1, 4.0, 10)));
        assert_eq!(a, b);
    }
}
