//! The run ledger: persisted, comparable metric records for whole
//! experiment invocations.
//!
//! PR 3–4 made every miner's internals observable *in process*; this
//! module makes whole runs observable *across processes and commits*.
//! A [`RunRecord`] captures one `experiments` invocation — git
//! revision, run configuration, and per-experiment [`MetricDoc`]s
//! (counters, gauge high-waters, histogram summaries, span-tree
//! rollups, wall-clock) — as deterministic sorted-key JSON suitable
//! for committing to `ledger/` and diffing in review.
//!
//! On top of records sit two engines:
//!
//! * [`diff`] — a structured per-metric delta report between two
//!   records (absolute + relative for counters and gauges, histogram
//!   quantile drift in power-of-two buckets, span-tree rollups aligned
//!   by path), rendered as a human table ([`RecordDiff::render_table`])
//!   or machine JSON ([`RecordDiff::render_json`]).
//! * [`check`] — the CI regression gate. Metrics are split into two
//!   classes by name ([`MetricClass`]): **exact** metrics (work
//!   counters, memory high-waters, objective gauges, span/event
//!   counts) are deterministic by the workspace's seeded-determinism
//!   and seq≡par equivalence guarantees and gate at **zero
//!   tolerance**; **noisy** metrics (wall-clock, `*_ns` sums,
//!   duration-histogram quantiles) gate only with wide bands
//!   ([`CheckPolicy::noisy_band`]) above an absolute floor, so the
//!   gate stays trustworthy on slow or shared CI hardware.
//!
//! The threshold policy and the record schema are documented in
//! `DESIGN.md` ("Run ledger"); the `dm ledger` binary (crate
//! `dm-bench`) is the command-line surface.

use crate::hist::{bucket_index, bucket_max};
use crate::json::{parse, Json, JsonError};
use crate::{Histogram, Snapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Version of the ledger record schema (the `"ledger_schema"` key).
/// Bump it whenever a key is added, removed or changes meaning, and
/// record the change in `DESIGN.md` ("Run ledger").
pub const LEDGER_SCHEMA: u32 = 1;

/// Errors reading a ledger record.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document parsed but is not a valid record (missing or
    /// ill-typed field; the string names it).
    Shape(String),
    /// The record's `ledger_schema` is newer than this build supports.
    SchemaTooNew(u64),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "invalid JSON: {e}"),
            Self::Shape(what) => write!(f, "not a ledger record: {what}"),
            Self::SchemaTooNew(v) => write!(
                f,
                "record has ledger_schema {v}, this build reads <= {LEDGER_SCHEMA}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Aggregate of all span-tree nodes sharing one root-to-node name path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanRollup {
    /// Number of tree nodes on this path.
    pub count: u64,
    /// Total nanoseconds across them (open/leaked spans count 0).
    pub total_ns: u64,
}

/// The ledger's view of one experiment's [`Snapshot`]: everything
/// deterministic or aggregate, nothing per-occurrence.
///
/// Relative to the raw snapshot: events collapse to a count per name
/// (their payload strings and ordering stay in `--metrics` output),
/// the span tree collapses to per-path [`SpanRollup`]s (raw node
/// timestamps are wall-clock noise), the flat `spans` map is dropped
/// (it is derived from `histograms`), and non-finite gauges are
/// skipped (they cannot round-trip through JSON).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricDoc {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (finite values only).
    pub gauges: BTreeMap<String, f64>,
    /// Event counts by event name.
    pub events: BTreeMap<String, u64>,
    /// Duration/value histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span-tree rollups keyed by `/`-joined name path from the root.
    pub tree: BTreeMap<String, SpanRollup>,
}

impl MetricDoc {
    /// Collapses a snapshot into its ledger view.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let mut events: BTreeMap<String, u64> = BTreeMap::new();
        for e in &snap.events {
            *events.entry(e.name.clone()).or_insert(0) += 1;
        }
        let mut tree: BTreeMap<String, SpanRollup> = BTreeMap::new();
        // Nodes are stored in open order with `parent < id`, so one
        // forward pass can resolve every node's full path.
        let mut paths: BTreeMap<u64, String> = BTreeMap::new();
        for node in &snap.tree {
            let path = match paths.get(&node.parent) {
                Some(parent_path) => format!("{parent_path}/{}", node.name),
                None => node.name.clone(),
            };
            let rollup = tree.entry(path.clone()).or_default();
            rollup.count += 1;
            rollup.total_ns = rollup.total_ns.saturating_add(node.dur_ns.unwrap_or(0));
            paths.insert(node.id, path);
        }
        Self {
            counters: snap.counters.clone(),
            gauges: snap
                .gauges
                .iter()
                .filter(|(_, v)| v.is_finite())
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            events,
            histograms: snap.histograms.clone(),
            tree,
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.events.is_empty()
            && self.histograms.is_empty()
            && self.tree.is_empty()
    }
}

/// One experiment's entry in a [`RunRecord`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentRun {
    /// Wall-clock duration of the experiment, milliseconds.
    pub wall_ms: f64,
    /// `None` for a complete run; `Some(reason)` when the guard
    /// truncated it (or the run errored; the reason says which).
    pub truncated: Option<String>,
    /// The recorded metrics, in ledger form.
    pub metrics: MetricDoc,
}

/// One persisted run of the `experiments` binary: provenance plus one
/// [`ExperimentRun`] per experiment id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Milliseconds since the Unix epoch when the run started.
    pub created_unix_ms: u64,
    /// `git rev-parse HEAD` of the working tree (or `"unknown"`).
    pub git_rev: String,
    /// Free-form run label (the experiment ids requested, by default).
    pub label: String,
    /// Run configuration: everything that must match for two records
    /// to be comparable (parallelism, deadline, dataset scale, ...).
    pub config: BTreeMap<String, String>,
    /// Per-experiment results, keyed by experiment id.
    pub experiments: BTreeMap<String, ExperimentRun>,
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Escapes `s` as a JSON string literal (quotes included).
fn jstr(s: &str) -> String {
    crate::json_string(s)
}

/// Formats a finite `f64` exactly as [`Snapshot::to_json`] does.
fn jf64(v: f64) -> String {
    crate::json_f64(v)
}

fn write_map<K: AsRef<str>, V, F: Fn(&V) -> String>(
    out: &mut String,
    indent: &str,
    map: &BTreeMap<K, V>,
    render: F,
) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n{indent}  {}: {}", jstr(k.as_ref()), render(v));
    }
    let _ = write!(out, "\n{indent}}}");
}

fn render_histogram(h: &Histogram) -> String {
    let mut s = format!(
        "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
        h.count, h.sum
    );
    for (j, (bucket, count)) in h.nonzero_buckets().into_iter().enumerate() {
        let sep = if j == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}[{bucket}, {count}]");
    }
    s.push_str("]}");
    s
}

impl MetricDoc {
    fn write_json(&self, out: &mut String, indent: &str) {
        let deeper = format!("{indent}  ");
        out.push('{');
        let _ = write!(out, "\n{deeper}\"counters\": ");
        write_map(out, &deeper, &self.counters, u64::to_string);
        let _ = write!(out, ",\n{deeper}\"events\": ");
        write_map(out, &deeper, &self.events, u64::to_string);
        let _ = write!(out, ",\n{deeper}\"gauges\": ");
        write_map(out, &deeper, &self.gauges, |v| jf64(*v));
        let _ = write!(out, ",\n{deeper}\"histograms\": ");
        write_map(out, &deeper, &self.histograms, render_histogram);
        let _ = write!(out, ",\n{deeper}\"tree\": ");
        write_map(out, &deeper, &self.tree, |r: &SpanRollup| {
            format!("{{\"count\": {}, \"total_ns\": {}}}", r.count, r.total_ns)
        });
        let _ = write!(out, "\n{indent}}}");
    }
}

impl RunRecord {
    /// Serializes the record as deterministic sorted-key JSON: same
    /// record, same bytes — the property the golden tests and git
    /// diffs of `ledger/` rely on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(out, "{{\n  \"ledger_schema\": {LEDGER_SCHEMA},");
        let _ = write!(out, "\n  \"created_unix_ms\": {},", self.created_unix_ms);
        let _ = write!(out, "\n  \"git_rev\": {},", jstr(&self.git_rev));
        let _ = write!(out, "\n  \"label\": {},", jstr(&self.label));
        out.push_str("\n  \"config\": ");
        write_map(&mut out, "  ", &self.config, |v: &String| jstr(v));
        out.push_str(",\n  \"experiments\": ");
        if self.experiments.is_empty() {
            out.push_str("{}");
        } else {
            out.push('{');
            for (i, (id, run)) in self.experiments.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\n    {}: {{", jstr(id));
                let _ = write!(out, "\n      \"wall_ms\": {},", jf64(run.wall_ms));
                let truncated = match &run.truncated {
                    Some(r) => jstr(r),
                    None => "null".into(),
                };
                let _ = write!(out, "\n      \"truncated\": {truncated},");
                out.push_str("\n      \"metrics\": ");
                run.metrics.write_json(&mut out, "      ");
                out.push_str("\n    }");
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a record previously written by [`RunRecord::to_json`].
    pub fn from_json(input: &str) -> Result<Self, LedgerError> {
        let doc = parse(input).map_err(LedgerError::Json)?;
        let schema = req_u64(&doc, "ledger_schema")?;
        if schema > LEDGER_SCHEMA as u64 {
            return Err(LedgerError::SchemaTooNew(schema));
        }
        let mut record = RunRecord {
            created_unix_ms: req_u64(&doc, "created_unix_ms")?,
            git_rev: req_str(&doc, "git_rev")?,
            label: req_str(&doc, "label")?,
            ..Default::default()
        };
        for (k, v) in req_obj(&doc, "config")? {
            let s = v
                .as_str()
                .ok_or_else(|| shape(&format!("config.{k} is not a string")))?;
            record.config.insert(k.clone(), s.to_owned());
        }
        for (id, run) in req_obj(&doc, "experiments")? {
            record.experiments.insert(id.clone(), parse_run(id, run)?);
        }
        Ok(record)
    }
}

fn shape(what: &str) -> LedgerError {
    LedgerError::Shape(what.to_owned())
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, LedgerError> {
    doc.get(key)
        .ok_or_else(|| shape(&format!("missing `{key}`")))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, LedgerError> {
    req(doc, key)?
        .as_u64()
        .ok_or_else(|| shape(&format!("`{key}` is not a u64")))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, LedgerError> {
    req(doc, key)?
        .as_f64()
        .ok_or_else(|| shape(&format!("`{key}` is not a number")))
}

fn req_str(doc: &Json, key: &str) -> Result<String, LedgerError> {
    Ok(req(doc, key)?
        .as_str()
        .ok_or_else(|| shape(&format!("`{key}` is not a string")))?
        .to_owned())
}

fn req_obj<'a>(doc: &'a Json, key: &str) -> Result<&'a BTreeMap<String, Json>, LedgerError> {
    req(doc, key)?
        .as_obj()
        .ok_or_else(|| shape(&format!("`{key}` is not an object")))
}

fn parse_u64_map(doc: &Json, key: &str, ctx: &str) -> Result<BTreeMap<String, u64>, LedgerError> {
    let mut out = BTreeMap::new();
    for (k, v) in req_obj(doc, key)? {
        let n = v
            .as_u64()
            .ok_or_else(|| shape(&format!("{ctx}.{key}.{k} is not a u64")))?;
        out.insert(k.clone(), n);
    }
    Ok(out)
}

fn parse_run(id: &str, doc: &Json) -> Result<ExperimentRun, LedgerError> {
    let truncated = match req(doc, "truncated")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return Err(shape(&format!("{id}.truncated is not null or a string"))),
    };
    let metrics_doc = req(doc, "metrics")?;
    let mut metrics = MetricDoc {
        counters: parse_u64_map(metrics_doc, "counters", id)?,
        events: parse_u64_map(metrics_doc, "events", id)?,
        ..Default::default()
    };
    for (k, v) in req_obj(metrics_doc, "gauges")? {
        let n = v
            .as_f64()
            .ok_or_else(|| shape(&format!("{id}.gauges.{k} is not a number")))?;
        metrics.gauges.insert(k.clone(), n);
    }
    for (k, v) in req_obj(metrics_doc, "histograms")? {
        let mut h = Histogram {
            count: req_u64(v, "count")?,
            sum: req_u64(v, "sum")?,
            ..Default::default()
        };
        let buckets = req(v, "buckets")?
            .as_arr()
            .ok_or_else(|| shape(&format!("{id}.histograms.{k}.buckets is not an array")))?;
        for pair in buckets {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| shape(&format!("{id}.histograms.{k}: bad bucket pair")))?;
            let (idx, count) = (pair[0].as_u64(), pair[1].as_u64());
            match (idx, count) {
                (Some(i), Some(c)) if (i as usize) < h.buckets.len() => {
                    h.buckets[i as usize] = c;
                }
                _ => return Err(shape(&format!("{id}.histograms.{k}: bad bucket pair"))),
            }
        }
        metrics.histograms.insert(k.clone(), h);
    }
    for (k, v) in req_obj(metrics_doc, "tree")? {
        metrics.tree.insert(
            k.clone(),
            SpanRollup {
                count: req_u64(v, "count")?,
                total_ns: req_u64(v, "total_ns")?,
            },
        );
    }
    Ok(ExperimentRun {
        wall_ms: req_f64(doc, "wall_ms")?,
        truncated,
        metrics,
    })
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// The regression-gate class of a metric, decided by name.
///
/// The split encodes the workspace's determinism story: everything an
/// algorithm *counts* (candidates, nodes, shard items, iterations),
/// every capacity-based memory high-water, and every objective value
/// is reproducible bit-for-bit under fixed seeds (PR-1's seq≡par
/// equivalence, PR-2's unlimited≡ungoverned identity), so any drift is
/// a real behavior change. Everything derived from a clock is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic: gates at zero tolerance.
    Exact,
    /// Clock-derived: gates only with a wide band above a floor.
    Noisy,
}

impl MetricClass {
    fn as_str(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Noisy => "noisy",
        }
    }
}

/// Class of a counter: everything is exact except elapsed-time counters
/// (`par.shard<w>.busy_ns` and anything else ending in `_ns`).
pub fn counter_class(name: &str) -> MetricClass {
    if name.ends_with("_ns") {
        MetricClass::Noisy
    } else {
        MetricClass::Exact
    }
}

/// Class of a histogram's `sum`: duration histograms (span timings)
/// are noisy; value histograms (work sizes — `.items`, and any future
/// `_bytes`/`.queries` family) are exact. The histogram `count` is
/// always exact: how many spans ran is work, not time.
pub fn hist_sum_class(name: &str) -> MetricClass {
    if name.ends_with(".items") || name.ends_with("_bytes") || name.ends_with(".queries") {
        MetricClass::Exact
    } else {
        MetricClass::Noisy
    }
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// What a [`DiffEntry`] compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// A counter value.
    Counter,
    /// A gauge value.
    Gauge,
    /// An event count.
    EventCount,
    /// A histogram's sample count.
    HistCount,
    /// A histogram's sum.
    HistSum,
    /// A histogram's p50, as a power-of-two bucket upper bound.
    HistP50,
    /// A histogram's p99, as a power-of-two bucket upper bound.
    HistP99,
    /// A span-tree path's node count.
    TreeCount,
    /// A span-tree path's total nanoseconds.
    TreeNs,
    /// The experiment's wall-clock milliseconds.
    WallMs,
    /// The experiment's truncation marker.
    Truncated,
    /// A whole experiment present on only one side.
    Experiment,
}

impl DiffKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::EventCount => "event_count",
            Self::HistCount => "hist_count",
            Self::HistSum => "hist_sum",
            Self::HistP50 => "hist_p50",
            Self::HistP99 => "hist_p99",
            Self::TreeCount => "tree_count",
            Self::TreeNs => "tree_ns",
            Self::WallMs => "wall_ms",
            Self::Truncated => "truncated",
            Self::Experiment => "experiment",
        }
    }
}

/// One side of a compared metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An exact integer (counters, counts, bucket bounds).
    U64(u64),
    /// A float (gauges, wall-clock).
    F64(f64),
    /// A string (truncation markers, experiment presence).
    Text(String),
}

impl MetricValue {
    fn render(&self) -> String {
        match self {
            Self::U64(v) => v.to_string(),
            Self::F64(v) => format!("{v:?}"),
            Self::Text(s) => s.clone(),
        }
    }

    fn render_json(&self) -> String {
        match self {
            Self::U64(v) => v.to_string(),
            Self::F64(v) => jf64(*v),
            Self::Text(s) => jstr(s),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Self::U64(v) => Some(*v as f64),
            Self::F64(v) => Some(*v),
            Self::Text(_) => None,
        }
    }
}

/// One differing metric between two records.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Experiment id the metric belongs to.
    pub experiment: String,
    /// What is being compared.
    pub kind: DiffKind,
    /// Metric name (or tree path / event name; empty for whole-
    /// experiment entries).
    pub name: String,
    /// Gate class of this metric.
    pub class: MetricClass,
    /// Value in the first record (`None` = absent there).
    pub base: Option<MetricValue>,
    /// Value in the second record (`None` = absent there).
    pub current: Option<MetricValue>,
}

impl DiffEntry {
    /// Signed `current - base` when both sides are numeric.
    pub fn delta(&self) -> Option<f64> {
        match (&self.base, &self.current) {
            (Some(a), Some(b)) => Some(b.as_f64()? - a.as_f64()?),
            _ => None,
        }
    }

    /// Relative change `delta / base` when defined and finite.
    pub fn relative(&self) -> Option<f64> {
        let base = self.base.as_ref()?.as_f64()?;
        let delta = self.delta()?;
        (base != 0.0).then(|| delta / base)
    }

    /// `current / base` when both are positive.
    pub fn ratio(&self) -> Option<f64> {
        let base = self.base.as_ref()?.as_f64()?;
        let current = self.current.as_ref()?.as_f64()?;
        (base > 0.0 && current > 0.0).then(|| current / base)
    }
}

/// The structured result of [`diff`]: every metric that differs
/// between two records, in a deterministic order (experiment, kind,
/// name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordDiff {
    /// All differing metrics.
    pub entries: Vec<DiffEntry>,
    /// Total metrics compared (differing or not), for context.
    pub compared: usize,
}

impl RecordDiff {
    /// Whether the two records agreed on every compared metric.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The differing entries of one gate class.
    pub fn entries_of(&self, class: MetricClass) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// Renders the diff as a fixed-width table (one line per differing
    /// metric) with a trailing summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("# ledger diff\n");
        if self.is_empty() {
            let _ = writeln!(out, "no differences ({} metrics compared)", self.compared);
            return out;
        }
        let header = [
            "experiment",
            "kind",
            "class",
            "metric",
            "base",
            "current",
            "delta",
            "rel",
        ];
        let mut rows: Vec<[String; 8]> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let fmt_side = |side: &Option<MetricValue>| {
                side.as_ref()
                    .map_or_else(|| "-".to_owned(), MetricValue::render)
            };
            let delta = e
                .delta()
                .map_or_else(|| "-".to_owned(), |d| format!("{d:+.6}"));
            let rel = e
                .relative()
                .map_or_else(|| "-".to_owned(), |r| format!("{:+.2}%", r * 100.0));
            rows.push([
                e.experiment.clone(),
                e.kind.as_str().to_owned(),
                e.class.as_str().to_owned(),
                e.name.clone(),
                fmt_side(&e.base),
                fmt_side(&e.current),
                delta,
                rel,
            ]);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
            }
            line.truncate(line.trim_end().len());
            line.push('\n');
            line
        };
        let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        out.push_str(&fmt_row(&header));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row));
        }
        let exact = self.entries_of(MetricClass::Exact).count();
        let _ = writeln!(
            out,
            "{} differing ({} exact, {} noisy) of {} compared",
            self.entries.len(),
            exact,
            self.entries.len() - exact,
            self.compared
        );
        out
    }

    /// Renders the diff as deterministic JSON (an object with a
    /// `differences` array in table order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"compared\": {},\n  \"differences\": [",
            self.compared
        );
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let side = |v: &Option<MetricValue>| {
                v.as_ref()
                    .map_or_else(|| "null".to_owned(), MetricValue::render_json)
            };
            let delta = e.delta().map_or_else(|| "null".to_owned(), jf64);
            let rel = e.relative().map_or_else(|| "null".to_owned(), jf64);
            let _ = write!(
                out,
                "{sep}\n    {{\"experiment\": {}, \"kind\": {}, \"class\": {}, \"name\": {}, \
                 \"base\": {}, \"current\": {}, \"delta\": {delta}, \"relative\": {rel}}}",
                jstr(&e.experiment),
                jstr(e.kind.as_str()),
                jstr(e.class.as_str()),
                jstr(&e.name),
                side(&e.base),
                side(&e.current),
            );
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Accumulates [`DiffEntry`]s for one experiment while counting every
/// compared metric.
struct DiffSink<'a> {
    entries: &'a mut Vec<DiffEntry>,
    compared: &'a mut usize,
    experiment: &'a str,
}

impl DiffSink<'_> {
    /// Compares two keyed maps; `None` marks a side where the name is
    /// absent. Counts every aligned name toward `compared` and emits
    /// an entry only when the sides differ under `eq_key`.
    fn diff_map<V, E: PartialEq>(
        &mut self,
        kind: DiffKind,
        a: &BTreeMap<String, V>,
        b: &BTreeMap<String, V>,
        class_of: impl Fn(&str) -> MetricClass,
        eq_key: impl Fn(&V) -> E,
        to_value: impl Fn(&V) -> MetricValue,
    ) {
        let names: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
        for name in names {
            *self.compared += 1;
            let (av, bv) = (a.get(name.as_str()), b.get(name.as_str()));
            let differs = match (av, bv) {
                (Some(x), Some(y)) => eq_key(x) != eq_key(y),
                _ => true,
            };
            if differs {
                self.entries.push(DiffEntry {
                    experiment: self.experiment.to_owned(),
                    kind,
                    name: name.to_string(),
                    class: class_of(name),
                    base: av.map(&to_value),
                    current: bv.map(&to_value),
                });
            }
        }
    }
}

/// Two gauges are "equal" within a relative epsilon of 1e-9: gauges
/// are deterministic, but this absorbs harmless last-bit formatting
/// drift without opening a real tolerance.
fn gauge_key(v: &f64) -> u64 {
    // Quantize onto a grid ~1e-9 relative: exponent plus the top ~30
    // mantissa bits.
    let bits = v.to_bits();
    bits >> 22
}

/// Computes the structured diff between two records. Only differing
/// metrics produce entries, so `diff(a, a)` is empty; numeric deltas
/// are `current - base`, so swapping the arguments negates them.
pub fn diff(base: &RunRecord, current: &RunRecord) -> RecordDiff {
    let mut entries = Vec::new();
    let mut compared = 0usize;
    let ids: std::collections::BTreeSet<&String> = base
        .experiments
        .keys()
        .chain(current.experiments.keys())
        .collect();
    for id in ids {
        let (a, b) = (
            base.experiments.get(id.as_str()),
            current.experiments.get(id.as_str()),
        );
        compared += 1;
        let (a, b) = match (a, b) {
            (Some(a), Some(b)) => (a, b),
            (a, b) => {
                let presence =
                    |run: Option<&ExperimentRun>| run.map(|_| MetricValue::Text("present".into()));
                entries.push(DiffEntry {
                    experiment: id.to_string(),
                    kind: DiffKind::Experiment,
                    name: String::new(),
                    class: MetricClass::Exact,
                    base: presence(a),
                    current: presence(b),
                });
                continue;
            }
        };
        // Truncation marker.
        compared += 1;
        if a.truncated != b.truncated {
            let side = |t: &Option<String>| {
                Some(MetricValue::Text(
                    t.clone().unwrap_or_else(|| "complete".into()),
                ))
            };
            entries.push(DiffEntry {
                experiment: id.to_string(),
                kind: DiffKind::Truncated,
                name: String::new(),
                class: MetricClass::Exact,
                base: side(&a.truncated),
                current: side(&b.truncated),
            });
        }
        // Wall clock (always noisy; only reported when it moved by
        // more than 1% so `diff(a, b)` on re-serialized identical
        // records stays quiet).
        compared += 1;
        let wall_moved = {
            let (wa, wb) = (a.wall_ms, b.wall_ms);
            (wa - wb).abs() > 0.01 * wa.abs().max(wb.abs())
        };
        if wall_moved {
            entries.push(DiffEntry {
                experiment: id.to_string(),
                kind: DiffKind::WallMs,
                name: String::new(),
                class: MetricClass::Noisy,
                base: Some(MetricValue::F64(a.wall_ms)),
                current: Some(MetricValue::F64(b.wall_ms)),
            });
        }
        let (ma, mb) = (&a.metrics, &b.metrics);
        let mut sink = DiffSink {
            entries: &mut entries,
            compared: &mut compared,
            experiment: id,
        };
        sink.diff_map(
            DiffKind::Counter,
            &ma.counters,
            &mb.counters,
            counter_class,
            |v| *v,
            |v| MetricValue::U64(*v),
        );
        sink.diff_map(
            DiffKind::Gauge,
            &ma.gauges,
            &mb.gauges,
            |_| MetricClass::Exact,
            gauge_key,
            |v| MetricValue::F64(*v),
        );
        sink.diff_map(
            DiffKind::EventCount,
            &ma.events,
            &mb.events,
            |_| MetricClass::Exact,
            |v| *v,
            |v| MetricValue::U64(*v),
        );
        // Histograms split into four views with independent classes.
        sink.diff_map(
            DiffKind::HistCount,
            &ma.histograms,
            &mb.histograms,
            |_| MetricClass::Exact,
            |h| h.count,
            |h| MetricValue::U64(h.count),
        );
        sink.diff_map(
            DiffKind::HistSum,
            &ma.histograms,
            &mb.histograms,
            hist_sum_class,
            |h| h.sum,
            |h| MetricValue::U64(h.sum),
        );
        for (kind, q) in [(DiffKind::HistP50, 0.5), (DiffKind::HistP99, 0.99)] {
            sink.diff_map(
                kind,
                &ma.histograms,
                &mb.histograms,
                hist_sum_class,
                |h| h.quantile(q),
                |h| MetricValue::U64(h.quantile(q).unwrap_or(0)),
            );
        }
        sink.diff_map(
            DiffKind::TreeCount,
            &ma.tree,
            &mb.tree,
            |_| MetricClass::Exact,
            |r| r.count,
            |r| MetricValue::U64(r.count),
        );
        sink.diff_map(
            DiffKind::TreeNs,
            &ma.tree,
            &mb.tree,
            |_| MetricClass::Noisy,
            |r| r.total_ns,
            |r| MetricValue::U64(r.total_ns),
        );
    }
    // Deterministic report order: experiment, then kind, then name.
    entries.sort_by(|x, y| {
        (x.experiment.as_str(), x.kind.as_str(), x.name.as_str()).cmp(&(
            y.experiment.as_str(),
            y.kind.as_str(),
            y.name.as_str(),
        ))
    });
    RecordDiff { entries, compared }
}

// ---------------------------------------------------------------------------
// Check (the regression gate)
// ---------------------------------------------------------------------------

/// Thresholds for [`check`]. Exact-class metrics always gate at zero
/// tolerance; the knobs here only shape the noisy class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckPolicy {
    /// Maximum allowed ratio (either direction) for noisy metrics —
    /// wall-clock, `*_ns` sums, duration quantiles. The default, 16×,
    /// is deliberately wide: it tolerates any plausible hardware gap
    /// between the capture host and CI while still catching
    /// complexity-class regressions.
    pub noisy_band: f64,
    /// Noisy nanosecond drift is ignored while both sides are under
    /// this floor (absolute jitter on sub-millisecond spans is
    /// meaningless).
    pub noisy_floor_ns: u64,
    /// Wall-clock drift is ignored while both sides are under this
    /// floor, in milliseconds.
    pub wall_floor_ms: f64,
    /// Allowed p50/p99 drift in power-of-two buckets (3 ≈ 8×).
    pub quantile_band_buckets: u32,
    /// When false, noisy metrics never fail the gate (they still show
    /// up in the diff report).
    pub gate_noisy: bool,
    /// When false, experiments missing from the current record are
    /// tolerated (subset check, e.g. `experiments e1 --ledger` against
    /// the full baseline).
    pub require_all: bool,
}

impl Default for CheckPolicy {
    fn default() -> Self {
        Self {
            noisy_band: 16.0,
            noisy_floor_ns: 20_000_000, // 20 ms
            wall_floor_ms: 50.0,
            quantile_band_buckets: 3,
            gate_noisy: true,
            require_all: true,
        }
    }
}

/// One gate failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The differing metric that tripped the gate.
    pub entry: DiffEntry,
    /// Why it tripped.
    pub reason: String,
}

/// The result of [`check`]: violations fail the gate, warnings are
/// informational (noisy drift inside the band, config mismatches).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Gate failures.
    pub violations: Vec<Violation>,
    /// Non-fatal observations.
    pub warnings: Vec<String>,
    /// Metrics compared.
    pub compared: usize,
}

impl CheckReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report for humans (one block per violation, then
    /// warnings, then the verdict line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let side = |s: &Option<MetricValue>| {
                s.as_ref()
                    .map_or_else(|| "-".to_owned(), MetricValue::render)
            };
            let _ = writeln!(
                out,
                "VIOLATION [{}] {} {} `{}`: baseline {} -> current {} ({})",
                v.entry.class.as_str(),
                v.entry.experiment,
                v.entry.kind.as_str(),
                v.entry.name,
                side(&v.entry.base),
                side(&v.entry.current),
                v.reason
            );
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        let _ = writeln!(
            out,
            "{}: {} violation(s), {} warning(s), {} metrics compared",
            if self.passed() { "PASS" } else { "FAIL" },
            self.violations.len(),
            self.warnings.len(),
            self.compared
        );
        out
    }
}

/// Gates `current` against `baseline` under `policy`.
///
/// Exact-class drift (work counters, gauges, span/event counts, tree
/// shapes, truncation markers, experiment presence) is always a
/// violation. Noisy-class drift is a violation only beyond
/// [`CheckPolicy::noisy_band`] above the relevant floor — and not at
/// all when [`CheckPolicy::gate_noisy`] is off. Config mismatches are
/// warnings: they usually explain, rather than constitute, a
/// regression.
pub fn check(baseline: &RunRecord, current: &RunRecord, policy: &CheckPolicy) -> CheckReport {
    let d = diff(baseline, current);
    let mut report = CheckReport {
        compared: d.compared,
        ..Default::default()
    };
    for (k, base_v) in &baseline.config {
        match current.config.get(k) {
            Some(v) if v == base_v => {}
            Some(v) => report.warnings.push(format!(
                "config `{k}` differs: baseline `{base_v}` vs current `{v}`"
            )),
            None => report
                .warnings
                .push(format!("config `{k}` missing from current record")),
        }
    }
    for entry in d.entries {
        match entry.class {
            MetricClass::Exact => {
                if entry.kind == DiffKind::Experiment
                    && !policy.require_all
                    && entry.current.is_none()
                {
                    report.warnings.push(format!(
                        "experiment `{}` not in current record (subset check)",
                        entry.experiment
                    ));
                    continue;
                }
                let reason = match (&entry.base, &entry.current) {
                    (Some(_), None) => "present in baseline only".to_owned(),
                    (None, Some(_)) => "present in current only".to_owned(),
                    _ => "exact metrics gate at zero tolerance".to_owned(),
                };
                report.violations.push(Violation { entry, reason });
            }
            MetricClass::Noisy => {
                if !policy.gate_noisy {
                    continue;
                }
                let below_floor = {
                    let floor = match entry.kind {
                        DiffKind::WallMs => policy.wall_floor_ms,
                        _ => policy.noisy_floor_ns as f64,
                    };
                    let under = |v: &Option<MetricValue>| {
                        v.as_ref()
                            .and_then(MetricValue::as_f64)
                            .is_none_or(|x| x < floor)
                    };
                    under(&entry.base) && under(&entry.current)
                };
                if below_floor {
                    continue;
                }
                let quantile = matches!(entry.kind, DiffKind::HistP50 | DiffKind::HistP99);
                let violated = if quantile {
                    let bucket = |v: &Option<MetricValue>| {
                        v.as_ref()
                            .and_then(MetricValue::as_f64)
                            .map(|x| bucket_index(x as u64) as i64)
                    };
                    match (bucket(&entry.base), bucket(&entry.current)) {
                        (Some(a), Some(b)) => {
                            (a - b).unsigned_abs() > policy.quantile_band_buckets as u64
                        }
                        _ => true,
                    }
                } else {
                    match entry.ratio() {
                        Some(r) => r > policy.noisy_band || r < 1.0 / policy.noisy_band,
                        // One side absent or zero: only the absent case is
                        // suspicious for a noisy metric.
                        None => entry.base.is_none() || entry.current.is_none(),
                    }
                };
                if violated {
                    let reason = if quantile {
                        format!(
                            "quantile drift beyond ±{} power-of-two buckets",
                            policy.quantile_band_buckets
                        )
                    } else {
                        format!("outside the {}x noise band", policy.noisy_band)
                    };
                    report.violations.push(Violation { entry, reason });
                } else if entry.ratio().is_some_and(|r| !(0.5..=2.0).contains(&r)) {
                    report.warnings.push(format!(
                        "noisy drift (within band): {} {} `{}` ratio {:.2}",
                        entry.experiment,
                        entry.kind.as_str(),
                        entry.name,
                        entry.ratio().unwrap_or(f64::NAN)
                    ));
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Snapshot tagging (the `--metrics` truncation marker)
// ---------------------------------------------------------------------------

/// Serializes a snapshot like [`Snapshot::to_json`], additionally
/// tagging it with a `"truncated": "<reason>"` key right after
/// `"schema"` when `truncated` is `Some`. The tag is an *optional*
/// addition documented with schema 2: complete runs serialize
/// byte-identically to [`Snapshot::to_json`], so existing consumers
/// are unaffected, and truncated partial snapshots are no longer
/// silently indistinguishable (or worse, dropped).
pub fn snapshot_json_tagged(snap: &Snapshot, truncated: Option<&str>) -> String {
    let json = snap.to_json();
    match truncated {
        None => json,
        Some(reason) => {
            let schema_prefix = format!("{{\n  \"schema\": {},", crate::SNAPSHOT_SCHEMA);
            let tagged_prefix = format!("{schema_prefix}\n  \"truncated\": {},", jstr(reason));
            json.replacen(&schema_prefix, &tagged_prefix, 1)
        }
    }
}

/// The inclusive upper bound of the power-of-two bucket holding `v` —
/// re-exported for reports that want to print quantile bounds the way
/// the histogram stores them.
pub fn quantile_bucket_bound(v: u64) -> u64 {
    bucket_max(bucket_index(v))
}

/// Crash-safe file write for ledger records and baselines: the
/// contents go to a sibling temp file (`<name>.tmp.<pid>`) which is
/// fsynced and atomically renamed over `path`, so an interrupted run
/// can never leave a truncated or half-written `ledger/baseline.json`
/// behind — readers see either the old bytes or the new bytes, never
/// a mix.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    let tmp = path.with_file_name(format!("{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original error is what matters.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Obs};

    fn sample_record() -> RunRecord {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        {
            let _e = obs.span("experiment.e1");
            {
                let _p = obs.span("assoc.apriori.pass1");
                obs.counter("assoc.apriori.pass1.candidates", 44);
                obs.counter("assoc.apriori.pass1.frequent", 12);
                obs.value("par.shard.items", 1000);
            }
            obs.gauge_max("assoc.mem.ck_bytes", 417_792.0);
            obs.event("guard.trip", "work-unit budget exhausted");
        }
        let mut record = RunRecord {
            created_unix_ms: 1_700_000_000_000,
            git_rev: "deadbeef".into(),
            label: "e1".into(),
            ..Default::default()
        };
        record
            .config
            .insert("parallelism".into(), "sequential".into());
        record.experiments.insert(
            "e1".into(),
            ExperimentRun {
                wall_ms: 12.5,
                truncated: None,
                metrics: MetricDoc::from_snapshot(&rec.snapshot()),
            },
        );
        record
    }

    #[test]
    fn metric_doc_rolls_up_tree_and_events() {
        let record = sample_record();
        let doc = &record.experiments["e1"].metrics;
        assert_eq!(doc.events["guard.trip"], 1);
        assert_eq!(doc.tree["experiment.e1"].count, 1);
        let pass = &doc.tree["experiment.e1/assoc.apriori.pass1"];
        assert_eq!(pass.count, 1);
        assert_eq!(doc.counters["assoc.apriori.pass1.candidates"], 44);
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = sample_record();
        let json = record.to_json();
        let parsed = RunRecord::from_json(&json).expect("parses");
        assert_eq!(parsed, record);
        // Deterministic: same record, same bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(matches!(
            RunRecord::from_json("not json"),
            Err(LedgerError::Json(_))
        ));
        assert!(matches!(
            RunRecord::from_json("{}"),
            Err(LedgerError::Shape(_))
        ));
        let future =
            sample_record()
                .to_json()
                .replacen("\"ledger_schema\": 1", "\"ledger_schema\": 99", 1);
        assert!(matches!(
            RunRecord::from_json(&future),
            Err(LedgerError::SchemaTooNew(99))
        ));
    }

    #[test]
    fn diff_of_identical_records_is_empty() {
        let record = sample_record();
        let d = diff(&record, &record);
        assert!(d.is_empty(), "{:?}", d.entries);
        assert!(d.compared > 5);
        assert!(d.render_table().contains("no differences"));
    }

    #[test]
    fn diff_reports_counter_and_gauge_drift_with_classes() {
        let base = sample_record();
        let mut current = base.clone();
        {
            let run = current.experiments.get_mut("e1").unwrap();
            *run.metrics
                .counters
                .get_mut("assoc.apriori.pass1.candidates")
                .unwrap() = 88;
            run.metrics
                .gauges
                .insert("assoc.mem.ck_bytes".into(), 500_000.0);
            run.metrics
                .counters
                .insert("assoc.apriori.pass2.candidates".into(), 7);
        }
        let d = diff(&base, &current);
        let by_name = |n: &str| d.entries.iter().find(|e| e.name == n).unwrap();
        let c = by_name("assoc.apriori.pass1.candidates");
        assert_eq!(c.class, MetricClass::Exact);
        assert_eq!(c.delta(), Some(44.0));
        assert_eq!(c.relative(), Some(1.0));
        let added = by_name("assoc.apriori.pass2.candidates");
        assert!(added.base.is_none());
        let g = by_name("assoc.mem.ck_bytes");
        assert_eq!(g.kind, DiffKind::Gauge);
        // Render paths stay in sync with the entries.
        let table = d.render_table();
        assert!(table.contains("assoc.apriori.pass1.candidates"));
        let json = d.render_json();
        assert!(json.contains("\"assoc.apriori.pass1.candidates\""));
        assert!(crate::json::parse(&json).is_ok(), "diff JSON is valid JSON");
    }

    #[test]
    fn busy_ns_counters_are_noisy_class() {
        assert_eq!(counter_class("par.shard0.busy_ns"), MetricClass::Noisy);
        assert_eq!(
            counter_class("assoc.apriori.pass1.candidates"),
            MetricClass::Exact
        );
        assert_eq!(hist_sum_class("par.shard.items"), MetricClass::Exact);
        assert_eq!(hist_sum_class("assoc.apriori.pass1"), MetricClass::Noisy);
    }

    #[test]
    fn check_passes_identical_and_fails_exact_drift() {
        let base = sample_record();
        let policy = CheckPolicy::default();
        assert!(check(&base, &base, &policy).passed());

        let mut regressed = base.clone();
        *regressed
            .experiments
            .get_mut("e1")
            .unwrap()
            .metrics
            .counters
            .get_mut("assoc.apriori.pass1.candidates")
            .unwrap() += 1;
        let report = check(&base, &regressed, &policy);
        assert!(!report.passed());
        assert_eq!(report.violations.len(), 1);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn check_tolerates_noisy_drift_inside_band_but_not_beyond() {
        let base = sample_record();
        let policy = CheckPolicy::default();
        // 4x wall-clock drift above the floor: inside the 16x band.
        let mut slow = base.clone();
        slow.experiments.get_mut("e1").unwrap().wall_ms = 400.0;
        let mut base_walled = base.clone();
        base_walled.experiments.get_mut("e1").unwrap().wall_ms = 100.0;
        assert!(check(&base_walled, &slow, &policy).passed());
        // 100x: beyond the band.
        slow.experiments.get_mut("e1").unwrap().wall_ms = 10_000.0;
        let report = check(&base_walled, &slow, &policy);
        assert!(!report.passed());
        assert_eq!(report.violations[0].entry.kind, DiffKind::WallMs);
        // Sub-floor wall drift is ignored entirely.
        slow.experiments.get_mut("e1").unwrap().wall_ms = 49.0;
        base_walled.experiments.get_mut("e1").unwrap().wall_ms = 1.0;
        assert!(check(&base_walled, &slow, &policy).passed());
    }

    #[test]
    fn check_flags_missing_and_extra_experiments() {
        let base = sample_record();
        let mut extra = base.clone();
        extra
            .experiments
            .insert("e2".into(), ExperimentRun::default());
        let report = check(&base, &extra, &CheckPolicy::default());
        assert!(!report.passed(), "new experiment requires baseline update");

        let empty = RunRecord::default();
        let report = check(&base, &empty, &CheckPolicy::default());
        assert!(!report.passed());
        let subset_policy = CheckPolicy {
            require_all: false,
            ..CheckPolicy::default()
        };
        assert!(check(&base, &empty, &subset_policy).passed());
    }

    #[test]
    fn check_flags_truncation_change() {
        let base = sample_record();
        let mut truncated = base.clone();
        truncated.experiments.get_mut("e1").unwrap().truncated =
            Some("wall-clock deadline exceeded".into());
        let report = check(&base, &truncated, &CheckPolicy::default());
        assert!(!report.passed());
        assert_eq!(report.violations[0].entry.kind, DiffKind::Truncated);
    }

    #[test]
    fn config_mismatch_warns_but_does_not_fail() {
        let base = sample_record();
        let mut other = base.clone();
        other
            .config
            .insert("parallelism".into(), "threads:4".into());
        let report = check(&base, &other, &CheckPolicy::default());
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1);
    }

    #[test]
    fn snapshot_tagging_marks_truncated_runs_only() {
        let rec = InMemoryRecorder::new();
        let obs = Obs::new(&rec);
        obs.counter("a.b.c", 1);
        let snap = rec.snapshot();
        assert_eq!(snapshot_json_tagged(&snap, None), snap.to_json());
        let tagged = snapshot_json_tagged(&snap, Some("wall-clock deadline exceeded"));
        let parsed = crate::json::parse(&tagged).expect("tagged snapshot is valid JSON");
        assert_eq!(
            parsed.get("truncated").and_then(Json::as_str),
            Some("wall-clock deadline exceeded")
        );
        assert_eq!(parsed.get("schema").and_then(Json::as_u64), Some(4));
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("a.b.c"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
