//! Recorder composition: fan-out to several sinks and live progress
//! streaming.
//!
//! [`TeeRecorder`] lets one governed run feed two recorders at once —
//! the `experiments` binary uses it when both `--metrics` and a tracing
//! export are requested. [`ProgressRecorder`] is a forwarding decorator
//! that additionally narrates selected emissions to a [`ProgressSink`]
//! (stderr by default) as they happen, which is what `--progress`
//! rides.

use crate::{Recorder, SpanId, TraceId};
use std::sync::Arc;
use std::time::Instant;

/// A line-oriented sink for live progress output.
pub trait ProgressSink: Send + Sync {
    /// Emits one line (without trailing newline).
    fn line(&self, line: &str);
}

/// A [`ProgressSink`] that writes to standard error.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl ProgressSink for StderrSink {
    fn line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// Forwards everything to an inner recorder and narrates pass-level
/// activity (span completions, iteration gauges, memory high-water
/// marks, events) to a [`ProgressSink`] as it happens. Per-shard
/// telemetry (`par.*`) is forwarded but not narrated — at one line per
/// shard per pass it would drown the signal.
pub struct ProgressRecorder {
    inner: Arc<dyn Recorder>,
    sink: Box<dyn ProgressSink>,
    epoch: Instant,
}

impl std::fmt::Debug for ProgressRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressRecorder").finish_non_exhaustive()
    }
}

impl ProgressRecorder {
    /// Wraps `inner`, narrating to `sink`.
    pub fn new(inner: Arc<dyn Recorder>, sink: Box<dyn ProgressSink>) -> Self {
        Self {
            inner,
            sink,
            epoch: Instant::now(),
        }
    }

    /// Wraps `inner`, narrating to stderr.
    pub fn stderr(inner: Arc<dyn Recorder>) -> Self {
        Self::new(inner, Box::new(StderrSink))
    }

    fn stamp(&self) -> String {
        format!("[{:9.3}s]", self.epoch.elapsed().as_secs_f64())
    }

    fn narrate_span(&self, name: &str) -> bool {
        // Pass/iteration/experiment granularity only; shard spans are
        // too chatty for a terminal.
        !name.starts_with("par.")
    }

    fn narrate_gauge(&self, name: &str) -> bool {
        name.ends_with("mem_bytes")
            || name.contains(".mem.")
            || name.contains(".iter")
            || name.contains(".pass")
    }
}

impl Recorder for ProgressRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        if self.narrate_gauge(name) {
            self.sink
                .line(&format!("{} gauge {name} = {value}", self.stamp()));
        }
        self.inner.gauge(name, value);
    }

    fn gauge_max(&self, name: &str, value: f64) {
        if self.narrate_gauge(name) {
            self.sink
                .line(&format!("{} gauge {name} >= {value}", self.stamp()));
        }
        self.inner.gauge_max(name, value);
    }

    fn value(&self, name: &str, v: u64) {
        self.inner.value(name, v);
    }

    fn value_traced(&self, name: &str, v: u64, trace: TraceId) {
        self.inner.value_traced(name, v, trace);
    }

    fn span_ns(&self, name: &str, elapsed_ns: u64) {
        if self.narrate_span(name) {
            self.sink.line(&format!(
                "{} span  {name} {:.3}ms",
                self.stamp(),
                elapsed_ns as f64 / 1e6
            ));
        }
        self.inner.span_ns(name, elapsed_ns);
    }

    fn event(&self, name: &str, detail: &str) {
        self.sink
            .line(&format!("{} event {name}: {detail}", self.stamp()));
        self.inner.event(name, detail);
    }

    fn span_begin(&self, name: &str, parent: SpanId) -> SpanId {
        self.inner.span_begin(name, parent)
    }

    fn span_end(&self, id: SpanId, name: &str, elapsed_ns: u64) {
        if self.narrate_span(name) {
            self.sink.line(&format!(
                "{} span  {name} {:.3}ms",
                self.stamp(),
                elapsed_ns as f64 / 1e6
            ));
        }
        self.inner.span_end(id, name, elapsed_ns);
    }
}

/// Duplicates every emission to two recorders.
///
/// Span-tree ids belong to the *primary*: `span_begin` only consults
/// it, and on `span_end` the secondary receives the duration through
/// its flat [`Recorder::span_ns`] path. This keeps id spaces from
/// colliding while both recorders still see every duration, counter,
/// gauge, value and event.
pub struct TeeRecorder {
    primary: Arc<dyn Recorder>,
    secondary: Arc<dyn Recorder>,
}

impl std::fmt::Debug for TeeRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeRecorder").finish_non_exhaustive()
    }
}

impl TeeRecorder {
    /// Tees `primary` (owns the span tree) and `secondary`.
    pub fn new(primary: Arc<dyn Recorder>, secondary: Arc<dyn Recorder>) -> Self {
        Self { primary, secondary }
    }
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        self.primary.enabled() || self.secondary.enabled()
    }

    fn counter(&self, name: &str, delta: u64) {
        self.primary.counter(name, delta);
        self.secondary.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.primary.gauge(name, value);
        self.secondary.gauge(name, value);
    }

    fn gauge_max(&self, name: &str, value: f64) {
        self.primary.gauge_max(name, value);
        self.secondary.gauge_max(name, value);
    }

    fn value(&self, name: &str, v: u64) {
        self.primary.value(name, v);
        self.secondary.value(name, v);
    }

    fn value_traced(&self, name: &str, v: u64, trace: TraceId) {
        self.primary.value_traced(name, v, trace);
        self.secondary.value_traced(name, v, trace);
    }

    fn span_ns(&self, name: &str, elapsed_ns: u64) {
        self.primary.span_ns(name, elapsed_ns);
        self.secondary.span_ns(name, elapsed_ns);
    }

    fn event(&self, name: &str, detail: &str) {
        self.primary.event(name, detail);
        self.secondary.event(name, detail);
    }

    fn span_begin(&self, name: &str, parent: SpanId) -> SpanId {
        self.primary.span_begin(name, parent)
    }

    fn span_end(&self, id: SpanId, name: &str, elapsed_ns: u64) {
        self.primary.span_end(id, name, elapsed_ns);
        self.secondary.span_ns(name, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Obs};
    use std::sync::Mutex;

    #[derive(Default, Clone)]
    struct VecSink(Arc<Mutex<Vec<String>>>);

    impl VecSink {
        fn lines(&self) -> Vec<String> {
            match self.0.lock() {
                Ok(v) => v.clone(),
                Err(p) => p.into_inner().clone(),
            }
        }
    }

    impl ProgressSink for VecSink {
        fn line(&self, line: &str) {
            match self.0.lock() {
                Ok(mut v) => v.push(line.to_owned()),
                Err(p) => p.into_inner().push(line.to_owned()),
            }
        }
    }

    #[test]
    fn tee_duplicates_flat_metrics_and_keeps_tree_on_primary() {
        let a = Arc::new(InMemoryRecorder::new());
        let b = Arc::new(InMemoryRecorder::new());
        let tee = TeeRecorder::new(a.clone(), b.clone());
        let obs = Obs::new(&tee);
        obs.counter("c", 3);
        obs.gauge_max("g", 7.0);
        {
            let outer = obs.span("outer");
            assert!(outer.id().is_some(), "primary assigns tree ids");
            let _inner = obs.span("inner");
        }
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.counter("c"), Some(3));
        assert_eq!(sb.counter("c"), Some(3));
        assert_eq!(sa.gauge("g"), Some(7.0));
        assert_eq!(sb.gauge("g"), Some(7.0));
        // Both recorders aggregated both durations...
        assert_eq!(sa.spans["outer"].count, 1);
        assert_eq!(sb.spans["outer"].count, 1);
        assert_eq!(sb.spans["inner"].count, 1);
        // ...but only the primary holds the tree, correctly nested.
        assert_eq!(sa.tree.len(), 2);
        assert!(sb.tree.is_empty());
        let outer = sa.tree.iter().find(|n| n.name == "outer").unwrap();
        let inner = sa.tree.iter().find(|n| n.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id);
    }

    #[test]
    fn progress_narrates_passes_but_not_shards() {
        let sink = VecSink::default();
        let inner = Arc::new(InMemoryRecorder::new());
        let rec = ProgressRecorder::new(inner.clone(), Box::new(sink.clone()));
        let obs = Obs::new(&rec);
        {
            let _pass = obs.span("assoc.apriori.pass2");
        }
        obs.span_ns("par.shard0.busy", 10);
        obs.gauge_max("assoc.mem.ck_bytes", 4096.0);
        obs.gauge("cluster.kmeans.iter.inertia", 2.5);
        obs.gauge("assoc.apriori.minsup_count", 20.0); // not narrated
        obs.counter("assoc.apriori.pass2.candidates", 148_240); // not narrated
        obs.event("guard.trip", "deadline");
        let lines = sink.lines();
        assert_eq!(lines.len(), 4, "pass span, 2 gauges, 1 event: {lines:?}");
        assert!(lines[0].contains("assoc.apriori.pass2"));
        assert!(lines[1].contains("assoc.mem.ck_bytes >= 4096"));
        assert!(lines[2].contains("cluster.kmeans.iter.inertia = 2.5"));
        assert!(lines[3].contains("guard.trip: deadline"));
        // Everything still reached the inner recorder.
        let snap = inner.snapshot();
        assert_eq!(
            snap.counter("assoc.apriori.pass2.candidates"),
            Some(148_240)
        );
        assert_eq!(snap.spans["par.shard0.busy"].count, 1);
        assert_eq!(snap.tree.len(), 1);
        assert_eq!(snap.events.len(), 1);
    }
}
