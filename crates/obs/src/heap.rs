//! Heap-size estimation for memory accounting.
//!
//! The evaluations this repo reconstructs make *memory-shaped* claims —
//! AprioriTid's pass-2 collapse is explained by `C̄_k` outgrowing the
//! raw database, BIRCH is defined by a fixed memory budget. To record
//! those claims as metrics, the big intermediate structures implement
//! [`HeapSize`]: a cheap, allocation-free estimate of the bytes a value
//! holds on the heap (capacity-based for containers, so it reflects
//! what the allocator actually handed out, not just what is in use).
//!
//! The estimate deliberately excludes the `size_of::<Self>()` of the
//! top-level value itself — the convention that makes
//! `vec.heap_bytes()` compose: a `Vec<Vec<u32>>` counts its spine
//! (`capacity * size_of::<Vec<u32>>()`) plus each inner buffer.

/// Estimated heap bytes held by a value (excluding the value's own
/// inline `size_of`). Implementations must be O(structure), cheap, and
/// must not allocate.
pub trait HeapSize {
    /// Estimated bytes on the heap reachable from `self`.
    fn heap_bytes(&self) -> usize;
}

macro_rules! zero_heap {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

zero_heap!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for [T] {
    fn heap_bytes(&self) -> usize {
        // A borrowed slice owns no buffer; only the elements' own heap
        // payloads count.
        self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize + ?Sized> HeapSize for &T {
    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
}

impl<T: HeapSize + ?Sized> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val::<T>(self) + (**self).heap_bytes()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_hold_nothing() {
        assert_eq!(0u64.heap_bytes(), 0);
        assert_eq!(1.5f64.heap_bytes(), 0);
    }

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u32> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(v.heap_bytes(), 400);
    }

    #[test]
    fn nested_vecs_compose() {
        let v: Vec<Vec<u32>> = vec![Vec::with_capacity(4), Vec::with_capacity(6)];
        let spine = v.capacity() * std::mem::size_of::<Vec<u32>>();
        assert_eq!(v.heap_bytes(), spine + 4 * 4 + 6 * 4);
    }

    #[test]
    fn tuples_and_options() {
        let pair = (vec![0u8; 8], 3u64);
        assert_eq!(pair.heap_bytes(), 8);
        let some: Option<Vec<u8>> = Some(vec![0u8; 5]);
        assert_eq!(some.heap_bytes(), 5);
        assert_eq!(None::<Vec<u8>>.heap_bytes(), 0);
    }
}
