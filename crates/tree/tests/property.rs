//! Property tests for decision-tree invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_dataset::{Column, Dataset, Labels};
use dm_tree::{DecisionTreeLearner, Pruning, SplitCriterion};
use proptest::prelude::*;

/// Strategy: a random mixed-schema dataset with 4–40 rows (one numeric,
/// one categorical column) and random binary labels.
fn labelled_data() -> impl Strategy<Value = (Dataset, Labels)> {
    (4usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0f64..100.0, n..=n),
            prop::collection::vec(0u8..4, n..=n),
            prop::collection::vec(0u8..2, n..=n),
        )
            .prop_map(|(nums, cats, labels)| {
                let ds = Dataset::from_columns(
                    "prop",
                    vec![
                        ("x".into(), Column::from_numeric(nums)),
                        (
                            "c".into(),
                            Column::from_strings(
                                cats.iter().map(|c| format!("c{c}")).collect::<Vec<_>>(),
                            ),
                        ),
                    ],
                )
                .expect("consistent schema");
                let labels =
                    Labels::from_strs(labels.iter().map(|l| format!("l{l}")).collect::<Vec<_>>());
                (ds, labels)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictions_are_valid_class_codes((data, labels) in labelled_data()) {
        for crit in [SplitCriterion::InfoGain, SplitCriterion::GainRatio, SplitCriterion::Gini] {
            let tree = DecisionTreeLearner::new().with_criterion(crit).fit(&data, &labels).unwrap();
            for p in tree.predict(&data) {
                prop_assert!((p as usize) < labels.n_classes());
            }
        }
    }

    #[test]
    fn max_depth_is_respected((data, labels) in labelled_data(), depth in 1usize..5) {
        let tree = DecisionTreeLearner::new()
            .with_max_depth(depth)
            .fit(&data, &labels)
            .unwrap();
        prop_assert!(tree.depth() <= depth);
    }

    #[test]
    fn pruned_tree_never_larger((data, labels) in labelled_data()) {
        let unpruned = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit(&data, &labels)
            .unwrap();
        prop_assert!(pruned.n_nodes() <= unpruned.n_nodes());
    }

    #[test]
    fn training_is_deterministic((data, labels) in labelled_data()) {
        let a = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let b = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        prop_assert_eq!(a.predict(&data), b.predict(&data));
        prop_assert_eq!(a.n_nodes(), b.n_nodes());
    }

    #[test]
    fn unpruned_training_accuracy_at_least_majority((data, labels) in labelled_data()) {
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let correct = tree
            .predict(&data)
            .iter()
            .zip(labels.codes())
            .filter(|(p, t)| p == t)
            .count();
        let majority = labels
            .class_counts()
            .into_iter()
            .max()
            .unwrap_or(0);
        prop_assert!(correct >= majority, "tree ({correct}) worse than majority ({majority})");
    }

    #[test]
    fn leaves_and_nodes_are_consistent((data, labels) in labelled_data()) {
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        prop_assert!(tree.n_leaves() >= 1);
        prop_assert!(tree.n_leaves() <= tree.n_nodes());
        prop_assert!(tree.depth() >= 1);
        // A tree over n rows never needs more than 2n - 1 nodes... but
        // multiway splits can add an interior node per category; the
        // loose structural bound still holds:
        prop_assert!(tree.n_leaves() <= data.n_rows().max(1) * 4);
    }
}
