//! Bootstrap-aggregated ("bagged") decision trees (Breiman, *Machine
//! Learning* 1996) — the variance-reduction ensemble of the era.
//!
//! Each tree trains on a bootstrap resample of the training rows;
//! prediction is a majority vote. Unpruned trees are the conventional
//! base learner (bagging thrives on low-bias/high-variance members).

use crate::tree::{DecisionTree, DecisionTreeLearner};
use dm_dataset::split::bootstrap_sample;
use dm_dataset::{DataError, Dataset, Labels};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bagged-tree learner.
#[derive(Debug, Clone)]
pub struct BaggedTrees {
    n_trees: usize,
    base: DecisionTreeLearner,
    seed: u64,
}

impl BaggedTrees {
    /// Creates a bagger of `n_trees` unpruned gain-ratio trees.
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            base: DecisionTreeLearner::new(),
            seed: 0,
        }
    }

    /// Overrides the base learner configuration.
    pub fn with_base(mut self, base: DecisionTreeLearner) -> Self {
        self.base = base;
        self
    }

    /// Sets the bootstrap seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains the ensemble.
    pub fn fit(&self, data: &Dataset, labels: &Labels) -> Result<BaggedTreesModel, DataError> {
        if self.n_trees == 0 {
            return Err(DataError::InvalidParameter("n_trees must be >= 1".into()));
        }
        if labels.len() != data.n_rows() {
            return Err(DataError::LabelLengthMismatch {
                labels: labels.len(),
                rows: data.n_rows(),
            });
        }
        if data.n_rows() == 0 {
            return Err(DataError::Empty("training set"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trees = Vec::with_capacity(self.n_trees);
        for _ in 0..self.n_trees {
            let sample = bootstrap_sample(data.n_rows(), &mut rng);
            let boot_data = data.select_rows(&sample);
            let boot_labels = labels.select(&sample);
            trees.push(self.base.fit(&boot_data, &boot_labels)?);
        }
        Ok(BaggedTreesModel {
            trees,
            n_classes: labels.n_classes(),
        })
    }
}

/// A trained bagged-tree ensemble.
#[derive(Debug, Clone)]
pub struct BaggedTreesModel {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl BaggedTreesModel {
    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Majority-vote prediction for row `i` (ties to the smaller code).
    pub fn predict_row(&self, data: &Dataset, i: usize) -> u32 {
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict_row(data, i) as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(c, _)| c as u32)
            .unwrap_or(0)
    }

    /// Predicts every row.
    pub fn predict(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{flip_labels, AgrawalFunction, AgrawalGenerator};

    #[test]
    fn bagging_beats_single_tree_under_noise() {
        let (train, labels) = AgrawalGenerator::new(AgrawalFunction::F5, 800)
            .unwrap()
            .generate(31);
        let noisy = flip_labels(&labels, 0.15, 4).unwrap();
        let (test, test_labels) = AgrawalGenerator::new(AgrawalFunction::F5, 600)
            .unwrap()
            .generate(32);
        let acc = |pred: Vec<u32>| {
            pred.iter()
                .zip(test_labels.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / 600.0
        };
        let single = DecisionTreeLearner::new().fit(&train, &noisy).unwrap();
        let bagged = BaggedTrees::new(15)
            .with_seed(2)
            .fit(&train, &noisy)
            .unwrap();
        let single_acc = acc(single.predict(&test));
        let bagged_acc = acc(bagged.predict(&test));
        assert!(
            bagged_acc > single_acc + 0.02,
            "bagged {bagged_acc} vs single {single_acc}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 300)
            .unwrap()
            .generate(8);
        let a = BaggedTrees::new(5)
            .with_seed(3)
            .fit(&data, &labels)
            .unwrap();
        let b = BaggedTrees::new(5)
            .with_seed(3)
            .fit(&data, &labels)
            .unwrap();
        assert_eq!(a.predict(&data), b.predict(&data));
        assert_eq!(a.n_trees(), 5);
    }

    #[test]
    fn validates_inputs() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 50)
            .unwrap()
            .generate(9);
        assert!(BaggedTrees::new(0).fit(&data, &labels).is_err());
        let short = dm_dataset::Labels::from_strs(["x"]);
        assert!(BaggedTrees::new(3).fit(&data, &short).is_err());
    }

    #[test]
    fn single_tree_bag_close_to_base_learner() {
        // One bootstrap tree behaves like a tree trained on ~63% of the
        // data: same ballpark accuracy, no crash.
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 500)
            .unwrap()
            .generate(10);
        let bag = BaggedTrees::new(1)
            .with_seed(0)
            .fit(&data, &labels)
            .unwrap();
        let acc = bag
            .predict(&data)
            .iter()
            .zip(labels.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 500.0;
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
