//! Rule extraction from decision trees, after C4.5rules (Quinlan 1993):
//! every root-to-leaf path becomes an IF-THEN classification rule, each
//! rule is greedily generalized by dropping conditions that do not
//! increase its pessimistic error estimate, and the resulting list is
//! ordered by estimated accuracy with a majority-class default.
//!
//! Rules are the interpretable artifact the decision-tree literature
//! sells: `credit_scoring`-style applications read them directly.

use crate::tree::{DecisionTree, Node};
use crate::SplitKind;
use dm_dataset::{DataError, Dataset, Labels, Value};
use std::fmt;

/// One atomic test over a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Numeric `attr <= threshold`.
    NumLe {
        /// Attribute index.
        attr: usize,
        /// Inclusive upper bound.
        threshold: f64,
    },
    /// Numeric `attr > threshold`.
    NumGt {
        /// Attribute index.
        attr: usize,
        /// Exclusive lower bound.
        threshold: f64,
    },
    /// Categorical `attr == category`.
    CatEq {
        /// Attribute index.
        attr: usize,
        /// Required category code.
        category: u32,
    },
    /// Categorical `attr != category`.
    CatNe {
        /// Attribute index.
        attr: usize,
        /// Excluded category code.
        category: u32,
    },
}

impl Condition {
    /// Whether row `i` of `data` satisfies the condition. Missing values
    /// satisfy nothing (the conservative reading).
    pub fn matches(&self, data: &Dataset, i: usize) -> bool {
        match (self, data.value(i, self.attr())) {
            (Condition::NumLe { threshold, .. }, Value::Num(x)) => x <= *threshold,
            (Condition::NumGt { threshold, .. }, Value::Num(x)) => x > *threshold,
            (Condition::CatEq { category, .. }, Value::Cat(c)) => c == *category,
            (Condition::CatNe { category, .. }, Value::Cat(c)) => c != *category,
            _ => false,
        }
    }

    /// The tested attribute.
    pub fn attr(&self) -> usize {
        match self {
            Condition::NumLe { attr, .. }
            | Condition::NumGt { attr, .. }
            | Condition::CatEq { attr, .. }
            | Condition::CatNe { attr, .. } => *attr,
        }
    }
}

/// An IF-THEN classification rule with its training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationRule {
    /// Conjunctive conditions (empty = always fires).
    pub conditions: Vec<Condition>,
    /// Predicted class code.
    pub class: u32,
    /// Training rows matching the conditions.
    pub coverage: usize,
    /// Matching rows whose label equals `class`.
    pub correct: usize,
}

impl ClassificationRule {
    /// Training accuracy of the rule (1.0 when it covers nothing).
    pub fn accuracy(&self) -> f64 {
        if self.coverage == 0 {
            1.0
        } else {
            self.correct as f64 / self.coverage as f64
        }
    }

    /// Whether row `i` satisfies all conditions.
    pub fn matches(&self, data: &Dataset, i: usize) -> bool {
        self.conditions.iter().all(|c| c.matches(data, i))
    }
}

impl fmt::Display for ClassificationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            write!(f, "IF true")?;
        } else {
            write!(f, "IF ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                match c {
                    Condition::NumLe { attr, threshold } => write!(f, "a{attr} <= {threshold:.4}")?,
                    Condition::NumGt { attr, threshold } => write!(f, "a{attr} > {threshold:.4}")?,
                    Condition::CatEq { attr, category } => write!(f, "a{attr} == #{category}")?,
                    Condition::CatNe { attr, category } => write!(f, "a{attr} != #{category}")?,
                }
            }
        }
        write!(
            f,
            " THEN class {} ({}/{} correct)",
            self.class, self.correct, self.coverage
        )
    }
}

/// An ordered rule list with a default class.
#[derive(Debug, Clone)]
pub struct RuleSet {
    /// Rules tried in order; the first match predicts.
    pub rules: Vec<ClassificationRule>,
    /// Fallback class when no rule fires.
    pub default_class: u32,
}

impl RuleSet {
    /// Predicts row `i`.
    pub fn predict_row(&self, data: &Dataset, i: usize) -> u32 {
        for rule in &self.rules {
            if rule.matches(data, i) {
                return rule.class;
            }
        }
        self.default_class
    }

    /// Predicts every row.
    pub fn predict(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data, i))
            .collect()
    }
}

/// Extracts the raw path rules of a tree (no simplification).
pub fn extract_rules(tree: &DecisionTree) -> Vec<ClassificationRule> {
    let mut out = Vec::new();
    let mut path: Vec<Condition> = Vec::new();
    walk(tree, tree.root_id(), &mut path, &mut out);
    out
}

fn walk(
    tree: &DecisionTree,
    id: usize,
    path: &mut Vec<Condition>,
    out: &mut Vec<ClassificationRule>,
) {
    match tree.node(id) {
        Node::Leaf { class, counts } => {
            let coverage: usize = counts.iter().sum();
            out.push(ClassificationRule {
                conditions: path.clone(),
                class: *class,
                coverage,
                correct: counts.get(*class as usize).copied().unwrap_or(0),
            });
        }
        Node::Split {
            attr,
            spec,
            children,
            ..
        } => match spec {
            SplitKind::NumericThreshold { threshold } => {
                path.push(Condition::NumLe {
                    attr: *attr,
                    threshold: *threshold,
                });
                walk(tree, children[0], path, out);
                path.pop();
                path.push(Condition::NumGt {
                    attr: *attr,
                    threshold: *threshold,
                });
                walk(tree, children[1], path, out);
                path.pop();
            }
            SplitKind::CategoricalMultiway { categories } => {
                for (ci, &cat) in categories.iter().enumerate() {
                    path.push(Condition::CatEq {
                        attr: *attr,
                        category: cat,
                    });
                    walk(tree, children[ci], path, out);
                    path.pop();
                }
            }
            SplitKind::CategoricalEquals { category } => {
                path.push(Condition::CatEq {
                    attr: *attr,
                    category: *category,
                });
                walk(tree, children[0], path, out);
                path.pop();
                path.push(Condition::CatNe {
                    attr: *attr,
                    category: *category,
                });
                walk(tree, children[1], path, out);
                path.pop();
            }
        },
    }
}

/// Builds a simplified, ordered [`RuleSet`] from a tree and its training
/// data: per rule, conditions whose removal does not reduce training
/// accuracy on the rows the rule covers are dropped greedily (the
/// C4.5rules generalization step, using raw accuracy rather than the
/// pessimistic bound for transparency); rules are then ordered by
/// (accuracy, coverage) descending.
pub fn rules_from_tree(
    tree: &DecisionTree,
    data: &Dataset,
    labels: &Labels,
) -> Result<RuleSet, DataError> {
    if labels.len() != data.n_rows() {
        return Err(DataError::LabelLengthMismatch {
            labels: labels.len(),
            rows: data.n_rows(),
        });
    }
    let codes = labels.codes();
    let score = |conditions: &[Condition], class: u32| -> (usize, usize) {
        let mut coverage = 0usize;
        let mut correct = 0usize;
        for (i, &code) in codes.iter().enumerate() {
            if conditions.iter().all(|c| c.matches(data, i)) {
                coverage += 1;
                if code == class {
                    correct += 1;
                }
            }
        }
        (coverage, correct)
    };

    let mut rules = extract_rules(tree);
    for rule in &mut rules {
        let (cov, cor) = score(&rule.conditions, rule.class);
        rule.coverage = cov;
        rule.correct = cor;
        // Greedy condition dropping.
        let mut improved = true;
        while improved && !rule.conditions.is_empty() {
            improved = false;
            for skip in 0..rule.conditions.len() {
                let mut trial = rule.conditions.clone();
                trial.remove(skip);
                let (cov, cor) = score(&trial, rule.class);
                let trial_acc = if cov == 0 {
                    0.0
                } else {
                    cor as f64 / cov as f64
                };
                if trial_acc >= rule.accuracy() - 1e-12 {
                    rule.conditions = trial;
                    rule.coverage = cov;
                    rule.correct = cor;
                    improved = true;
                    break;
                }
            }
        }
    }
    // Deduplicate identical rules produced by the simplification.
    rules.sort_by(|a, b| {
        b.accuracy()
            .total_cmp(&a.accuracy())
            .then(b.coverage.cmp(&a.coverage))
    });
    rules.dedup_by(|a, b| a.conditions == b.conditions && a.class == b.class);

    Ok(RuleSet {
        rules,
        default_class: labels.majority().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionTreeLearner;
    use dm_dataset::Column;
    use dm_synth::{AgrawalFunction, AgrawalGenerator};

    fn simple() -> (Dataset, Labels) {
        let ds = Dataset::from_columns(
            "t",
            vec![(
                "x".into(),
                Column::from_numeric(vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0]),
            )],
        )
        .unwrap();
        (ds, Labels::from_strs(["a", "a", "a", "b", "b", "b"]))
    }

    #[test]
    fn one_rule_per_leaf() {
        let (data, labels) = simple();
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let rules = extract_rules(&tree);
        assert_eq!(rules.len(), tree.n_leaves());
        // Both rules are pure on the training data.
        for r in &rules {
            assert_eq!(r.correct, r.coverage);
        }
    }

    #[test]
    fn ruleset_predicts_like_the_tree() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 600)
            .unwrap()
            .generate(7);
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let rules = rules_from_tree(&tree, &data, &labels).unwrap();
        let rule_pred = rules.predict(&data);
        let tree_pred = tree.predict(&data);
        let agree = rule_pred
            .iter()
            .zip(&tree_pred)
            .filter(|(a, b)| a == b)
            .count() as f64
            / 600.0;
        // Simplification may change a few boundary predictions but the
        // rule list must stay essentially equivalent on training data.
        assert!(agree > 0.95, "agreement {agree}");
        let acc = rule_pred
            .iter()
            .zip(labels.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 600.0;
        assert!(acc > 0.9, "rule accuracy {acc}");
    }

    #[test]
    fn simplification_drops_redundant_conditions() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 800)
            .unwrap()
            .generate(9);
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let raw: usize = extract_rules(&tree)
            .iter()
            .map(|r| r.conditions.len())
            .sum();
        let simplified: usize = rules_from_tree(&tree, &data, &labels)
            .unwrap()
            .rules
            .iter()
            .map(|r| r.conditions.len())
            .sum();
        assert!(
            simplified < raw,
            "no conditions dropped: {simplified} vs {raw}"
        );
    }

    #[test]
    fn default_class_handles_uncovered_rows() {
        let (data, labels) = simple();
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let rules = rules_from_tree(&tree, &data, &labels).unwrap();
        // A row with a missing value satisfies no condition.
        let test = Dataset::from_columns(
            "t",
            vec![("x".into(), Column::from_numeric(vec![f64::NAN]))],
        )
        .unwrap();
        let p = rules.predict(&test);
        assert_eq!(p[0], rules.default_class);
    }

    #[test]
    fn display_is_readable() {
        let (data, labels) = simple();
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let rules = rules_from_tree(&tree, &data, &labels).unwrap();
        let text = rules.rules[0].to_string();
        assert!(text.starts_with("IF "));
        assert!(text.contains("THEN class"));
    }

    #[test]
    fn validates_label_length() {
        let (data, labels) = simple();
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let short = Labels::from_strs(["a"]);
        assert!(rules_from_tree(&tree, &data, &short).is_err());
    }
}
