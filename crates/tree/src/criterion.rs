//! Split-quality criteria: entropy, information gain, gain ratio, Gini.

/// The node-splitting criterion, selecting which classic tree the
/// learner grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Information gain (ID3).
    InfoGain,
    /// Information gain ratio (C4.5) — gain normalized by the split's
    /// own entropy, correcting ID3's bias toward high-arity attributes.
    GainRatio,
    /// Gini impurity decrease (CART).
    Gini,
}

/// Shannon entropy (base 2) of a class-count vector.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Gini impurity of a class-count vector: `1 − Σ p²`.
pub fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

impl SplitCriterion {
    /// Parent impurity under this criterion.
    pub fn impurity(self, counts: &[usize]) -> f64 {
        match self {
            SplitCriterion::InfoGain | SplitCriterion::GainRatio => entropy(counts),
            SplitCriterion::Gini => gini(counts),
        }
    }

    /// Scores a split of `parent_counts` into `children` count vectors.
    /// Higher is better; a score ≤ 0 means the split is useless.
    pub fn score(self, parent_counts: &[usize], children: &[Vec<usize>]) -> f64 {
        let parent_total: usize = parent_counts.iter().sum();
        if parent_total == 0 {
            return 0.0;
        }
        let n = parent_total as f64;
        let weighted_child_impurity: f64 = children
            .iter()
            .map(|c| {
                let ct: usize = c.iter().sum();
                (ct as f64 / n) * self.impurity(c)
            })
            .sum();
        let gain = self.impurity(parent_counts) - weighted_child_impurity;
        match self {
            SplitCriterion::InfoGain | SplitCriterion::Gini => gain,
            SplitCriterion::GainRatio => {
                // Split information: entropy of the partition sizes.
                let split_info: f64 = children
                    .iter()
                    .map(|c| c.iter().sum::<usize>())
                    .filter(|&ct| ct > 0)
                    .map(|ct| {
                        let p = ct as f64 / n;
                        -p * p.log2()
                    })
                    .sum();
                if split_info <= 1e-12 || gain <= 1e-12 {
                    0.0
                } else {
                    gain / split_info
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_values() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[10]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // 9+/5- from Quinlan's tennis example: 0.940286...
        assert!((entropy(&[9, 5]) - 0.9402859586706309).abs() < 1e-12);
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn info_gain_tennis_outlook() {
        // Quinlan's weather data: splitting 9+/5- on Outlook gives
        // children (2+,3-), (4+,0-), (3+,2-) -> gain ≈ 0.2467.
        let gain = SplitCriterion::InfoGain.score(&[9, 5], &[vec![2, 3], vec![4, 0], vec![3, 2]]);
        assert!((gain - 0.24674981977443933).abs() < 1e-9, "gain {gain}");
    }

    #[test]
    fn gain_ratio_penalizes_high_arity() {
        // A 14-way split on a unique id attribute has maximal gain but
        // huge split info; gain ratio must rank it below Outlook.
        let parent = [9usize, 5];
        let id_children: Vec<Vec<usize>> = (0..14)
            .map(|i| if i < 9 { vec![1, 0] } else { vec![0, 1] })
            .collect();
        let outlook = vec![vec![2, 3], vec![4, 0], vec![3, 2]];
        let ig_id = SplitCriterion::InfoGain.score(&parent, &id_children);
        let ig_outlook = SplitCriterion::InfoGain.score(&parent, &outlook);
        assert!(ig_id > ig_outlook, "plain gain prefers the id attribute");
        let gr_id = SplitCriterion::GainRatio.score(&parent, &id_children);
        let gr_outlook = SplitCriterion::GainRatio.score(&parent, &outlook);
        // Quinlan's fix: ratio for the id split (0.940/3.807 ≈ 0.247)
        // stays modest while a clean low-arity split would approach 1.
        assert!(gr_id < 0.3, "gain ratio for id split is {gr_id}");
        assert!(gr_outlook > 0.15, "outlook ratio {gr_outlook}");
    }

    #[test]
    fn gini_gain_for_perfect_split() {
        let g = SplitCriterion::Gini.score(&[5, 5], &[vec![5, 0], vec![0, 5]]);
        assert!((g - 0.5).abs() < 1e-12);
    }

    #[test]
    fn useless_split_scores_zero() {
        for crit in [
            SplitCriterion::InfoGain,
            SplitCriterion::GainRatio,
            SplitCriterion::Gini,
        ] {
            let s = crit.score(&[4, 4], &[vec![2, 2], vec![2, 2]]);
            assert!(s.abs() < 1e-9, "{crit:?} scored {s}");
        }
    }

    #[test]
    fn empty_children_do_not_panic() {
        let s = SplitCriterion::GainRatio.score(&[3, 3], &[vec![3, 3], vec![0, 0]]);
        assert!(s.abs() < 1e-9);
        assert_eq!(SplitCriterion::InfoGain.score(&[], &[]), 0.0);
    }
}
