//! Holte's 1R: the one-attribute rule baseline.
//!
//! 1R (Holte, *Machine Learning* 1993) builds, for every attribute, a
//! rule mapping each attribute value to the majority class among rows
//! with that value, then keeps the single attribute whose rule makes the
//! fewest training errors. Numeric attributes are discretized with
//! equal-frequency binning before rule construction. Famously "very
//! simple classification rules perform well on most commonly used
//! datasets" — the floor the tree experiments compare against.

use dm_dataset::{
    Column, DataError, Dataset, Discretizer, EqualFrequency, FittedDiscretizer, Labels,
    MISSING_CODE,
};

/// 1R learner.
#[derive(Debug, Clone)]
pub struct OneR {
    bins: usize,
}

impl Default for OneR {
    fn default() -> Self {
        Self::new()
    }
}

impl OneR {
    /// A 1R learner discretizing numeric attributes into 6 bins (a
    /// typical setting in Holte's study).
    pub fn new() -> Self {
        Self { bins: 6 }
    }

    /// Overrides the numeric discretization bin count.
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Trains the rule.
    pub fn fit(&self, data: &Dataset, labels: &Labels) -> Result<OneRModel, DataError> {
        if labels.len() != data.n_rows() {
            return Err(DataError::LabelLengthMismatch {
                labels: labels.len(),
                rows: data.n_rows(),
            });
        }
        if data.n_rows() == 0 {
            return Err(DataError::Empty("training set"));
        }
        let n_classes = labels.n_classes();
        let codes = labels.codes();
        let overall_majority = labels.majority().unwrap_or(0);

        let mut best: Option<OneRModel> = None;
        let mut best_errors = usize::MAX;
        for attr in 0..data.n_cols() {
            // Reduce the column to per-row bucket codes.
            let (buckets, discretizer, n_buckets) = match data.column(attr) {
                Column::Numeric(values) => {
                    let Ok(fitted) = EqualFrequency { bins: self.bins }.fit(values) else {
                        continue; // all-missing column
                    };
                    let buckets: Vec<u32> = values
                        .iter()
                        .map(|&v| fitted.bin(v).unwrap_or(MISSING_CODE))
                        .collect();
                    let n = fitted.n_bins();
                    (buckets, Some(fitted), n)
                }
                Column::Categorical { codes, dict } => (codes.clone(), None, dict.len()),
            };
            if n_buckets == 0 {
                continue;
            }
            // Majority class per bucket.
            let mut counts = vec![vec![0usize; n_classes]; n_buckets];
            for (i, &b) in buckets.iter().enumerate() {
                if b != MISSING_CODE {
                    counts[b as usize][codes[i] as usize] += 1;
                }
            }
            let rule: Vec<u32> = counts
                .iter()
                .map(|c| {
                    c.iter()
                        .enumerate()
                        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
                        .map(|(i, _)| i as u32)
                        .unwrap_or(overall_majority)
                })
                .collect();
            // Training errors (missing rows predicted by overall majority).
            let errors = buckets
                .iter()
                .enumerate()
                .filter(|&(i, &b)| {
                    let pred = if b == MISSING_CODE {
                        overall_majority
                    } else {
                        rule[b as usize]
                    };
                    pred != codes[i]
                })
                .count();
            if errors < best_errors {
                best_errors = errors;
                best = Some(OneRModel {
                    attr,
                    attr_name: data.attr(attr).name().to_owned(),
                    discretizer,
                    rule,
                    default: overall_majority,
                    training_errors: errors,
                });
            }
        }
        best.ok_or(DataError::Empty("usable attribute"))
    }
}

/// A trained 1R rule: one attribute, a value→class table, a default.
#[derive(Debug, Clone)]
pub struct OneRModel {
    attr: usize,
    attr_name: String,
    /// Present when the chosen attribute is numeric.
    discretizer: Option<FittedDiscretizer>,
    /// Bucket (or category code) → class.
    rule: Vec<u32>,
    /// Fallback class for missing/unseen values.
    default: u32,
    /// Errors the rule makes on its own training data.
    training_errors: usize,
}

impl OneRModel {
    /// The chosen attribute's column index.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// The chosen attribute's name.
    pub fn attr_name(&self) -> &str {
        &self.attr_name
    }

    /// Training errors of the winning rule.
    pub fn training_errors(&self) -> usize {
        self.training_errors
    }

    /// Predicts row `i` of `data`.
    pub fn predict_row(&self, data: &Dataset, i: usize) -> u32 {
        let bucket = match (data.value(i, self.attr), &self.discretizer) {
            (dm_dataset::Value::Num(x), Some(d)) => d.bin(x),
            (dm_dataset::Value::Cat(c), None) => Some(c),
            _ => None,
        };
        match bucket {
            Some(b) if (b as usize) < self.rule.len() => self.rule[b as usize],
            _ => self.default,
        }
    }

    /// Predicts every row of `data`.
    pub fn predict(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::{AgrawalFunction, AgrawalGenerator};

    #[test]
    fn picks_the_single_informative_attribute() {
        let data = Dataset::from_columns(
            "t",
            vec![
                ("noise".into(), Column::from_strings(["p", "q", "p", "q"])),
                ("signal".into(), Column::from_strings(["a", "a", "b", "b"])),
            ],
        )
        .unwrap();
        let labels = Labels::from_strs(["x", "x", "y", "y"]);
        let model = OneR::new().fit(&data, &labels).unwrap();
        assert_eq!(model.attr_name(), "signal");
        assert_eq!(model.training_errors(), 0);
        assert_eq!(model.predict(&data), labels.codes());
    }

    #[test]
    fn discretizes_numeric_attributes() {
        // F1 depends only on age; 1R with enough bins should capture the
        // two cut points approximately.
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 1500)
            .unwrap()
            .generate(5);
        let model = OneR::new().with_bins(12).fit(&data, &labels).unwrap();
        assert_eq!(model.attr_name(), "age");
        let acc = model
            .predict(&data)
            .iter()
            .zip(labels.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 1500.0;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn weaker_than_trees_on_conjunctive_functions() {
        use crate::{DecisionTreeLearner, SplitCriterion};
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 1200)
            .unwrap()
            .generate(6);
        let (test, test_l) = AgrawalGenerator::new(AgrawalFunction::F2, 600)
            .unwrap()
            .generate(7);
        let oner = OneR::new().fit(&data, &labels).unwrap();
        let tree = DecisionTreeLearner::new()
            .with_criterion(SplitCriterion::GainRatio)
            .fit(&data, &labels)
            .unwrap();
        let acc = |pred: &[u32]| {
            pred.iter()
                .zip(test_l.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / 600.0
        };
        let a1 = acc(&oner.predict(&test));
        let a2 = acc(&tree.predict(&test));
        assert!(a2 > a1 + 0.05, "tree {a2} vs 1R {a1}");
    }

    #[test]
    fn unseen_and_missing_fall_back_to_default() {
        let data = Dataset::from_columns(
            "t",
            vec![("c".into(), Column::from_strings(["a", "a", "b"]))],
        )
        .unwrap();
        let labels = Labels::from_strs(["x", "x", "y"]);
        let model = OneR::new().fit(&data, &labels).unwrap();
        let test = Dataset::from_columns(
            "t",
            vec![("c".into(), Column::from_strings_opt([Some("zzz"), None]))],
        )
        .unwrap();
        let p = model.predict(&test);
        assert_eq!(p, vec![0, 0]); // overall majority is "x"
    }

    #[test]
    fn validates_inputs() {
        let data = Dataset::from_columns("t", vec![("x".into(), Column::from_numeric(vec![1.0]))])
            .unwrap();
        let short = Labels::from_strs(["a", "b"]);
        assert!(OneR::new().fit(&data, &short).is_err());
    }
}
