//! The decision-tree model and its top-down inducer.

use crate::criterion::SplitCriterion;
use crate::prune::{self, Pruning};
use crate::split::{best_split_par, partition, SplitSpec};
use dm_dataset::{DataError, Dataset, Labels};
use dm_guard::{Guard, Outcome};
use dm_par::Parallelism;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Re-export of the split specification used inside nodes.
pub use crate::split::SplitSpec as SplitKind;

/// One tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A terminal node predicting `class`.
    Leaf {
        /// Predicted class code.
        class: u32,
        /// Training class counts that reached this leaf.
        counts: Vec<usize>,
    },
    /// An internal test node.
    Split {
        /// Tested attribute (column index).
        attr: usize,
        /// The attribute test.
        spec: SplitSpec,
        /// Child node ids, parallel to the spec's arity.
        children: Vec<usize>,
        /// Child receiving missing values / unseen categories.
        default_child: usize,
        /// Majority class at this node (used when pruning).
        majority: u32,
        /// Training class counts at this node.
        counts: Vec<usize>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: usize,
    n_classes: usize,
    attr_names: Vec<String>,
}

impl DecisionTree {
    /// Rebuilds a tree from its stored parts (artifact reload). The
    /// structure is validated so a corrupt artifact cannot produce a
    /// tree that panics or loops during prediction: every referenced
    /// node id must exist, child lists must match the split arity,
    /// leaf classes must fit `n_classes`, split attributes must fit
    /// `attr_names`, and the graph reachable from `root` must be
    /// acyclic.
    pub fn from_parts(
        nodes: Vec<Node>,
        root: usize,
        n_classes: usize,
        attr_names: Vec<String>,
    ) -> Result<Self, DataError> {
        let bad = |msg: String| Err(DataError::InvalidParameter(msg));
        if n_classes == 0 {
            return bad("tree artifact: n_classes must be >= 1".into());
        }
        if root >= nodes.len() {
            return bad(format!(
                "tree artifact: root {root} out of range ({} nodes)",
                nodes.len()
            ));
        }
        for (id, node) in nodes.iter().enumerate() {
            match node {
                Node::Leaf { class, .. } => {
                    if *class as usize >= n_classes {
                        return bad(format!(
                            "tree artifact: node {id} predicts class {class} >= n_classes {n_classes}"
                        ));
                    }
                }
                Node::Split {
                    attr,
                    spec,
                    children,
                    default_child,
                    majority,
                    ..
                } => {
                    if *attr >= attr_names.len() {
                        return bad(format!(
                            "tree artifact: node {id} tests attr {attr} >= {} names",
                            attr_names.len()
                        ));
                    }
                    let arity = match spec {
                        SplitSpec::NumericThreshold { .. }
                        | SplitSpec::CategoricalEquals { .. } => 2,
                        SplitSpec::CategoricalMultiway { categories } => categories.len(),
                    };
                    if children.len() != arity {
                        return bad(format!(
                            "tree artifact: node {id} has {} children, split arity {arity}",
                            children.len()
                        ));
                    }
                    if *default_child >= children.len() {
                        return bad(format!(
                            "tree artifact: node {id} default_child {default_child} out of range"
                        ));
                    }
                    if *majority as usize >= n_classes {
                        return bad(format!(
                            "tree artifact: node {id} majority {majority} >= n_classes {n_classes}"
                        ));
                    }
                    for &c in children {
                        if c >= nodes.len() {
                            return bad(format!(
                                "tree artifact: node {id} references missing child {c}"
                            ));
                        }
                    }
                }
            }
        }
        // Acyclicity over the reachable subgraph: iterative DFS with an
        // on-stack mark; a back edge means prediction would loop.
        let mut state = vec![0u8; nodes.len()]; // 0 unseen, 1 on stack, 2 done
        let mut stack = vec![(root, 0usize)];
        state[root] = 1;
        while let Some(&mut (id, next)) = stack.last_mut() {
            let children: &[usize] = match &nodes[id] {
                Node::Leaf { .. } => &[],
                Node::Split { children, .. } => children,
            };
            if next < children.len() {
                if let Some(top) = stack.last_mut() {
                    top.1 = next + 1;
                }
                let c = children[next];
                match state[c] {
                    1 => return bad(format!("tree artifact: cycle through node {c}")),
                    0 => {
                        state[c] = 1;
                        stack.push((c, 0));
                    }
                    _ => {}
                }
            } else {
                state[id] = 2;
                stack.pop();
            }
        }
        Ok(Self {
            nodes,
            root,
            n_classes,
            attr_names,
        })
    }

    /// All nodes in id order (artifact serialization hook). Entries may
    /// include pruned-out nodes; reachability starts at
    /// [`DecisionTree::root_id`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Attribute names the split attribute indices refer to.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Root node id, for read-only traversals (rule extraction).
    pub fn root_id(&self) -> usize {
        self.root
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics when `id` is not a node of this tree.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total node count (after any pruning).
    pub fn n_nodes(&self) -> usize {
        self.count_reachable(self.root)
    }

    fn count_reachable(&self, id: usize) -> usize {
        match &self.nodes[id] {
            Node::Leaf { .. } => 1,
            Node::Split { children, .. } => {
                1 + children
                    .iter()
                    .map(|&c| self.count_reachable(c))
                    .sum::<usize>()
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.count_leaves(self.root)
    }

    fn count_leaves(&self, id: usize) -> usize {
        match &self.nodes[id] {
            Node::Leaf { .. } => 1,
            Node::Split { children, .. } => children.iter().map(|&c| self.count_leaves(c)).sum(),
        }
    }

    /// Maximum root-to-leaf depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        self.depth_of(self.root)
    }

    fn depth_of(&self, id: usize) -> usize {
        match &self.nodes[id] {
            Node::Leaf { .. } => 1,
            Node::Split { children, .. } => {
                1 + children
                    .iter()
                    .map(|&c| self.depth_of(c))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Predicts the class of row `i` of `data`.
    ///
    /// # Panics
    /// Panics when `data`'s schema is narrower than the training schema.
    pub fn predict_row(&self, data: &Dataset, i: usize) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    attr,
                    spec,
                    children,
                    default_child,
                    ..
                } => {
                    let value = data.value(i, *attr);
                    id = match spec.route(value) {
                        Some(child) => children[child],
                        None => children[*default_child],
                    };
                }
            }
        }
    }

    /// Predicts every row of `data`.
    pub fn predict(&self, data: &Dataset) -> Vec<u32> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data, i))
            .collect()
    }

    /// Renders the tree as indented text with attribute names.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, &mut out);
        out
    }

    fn render_node(&self, id: usize, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match &self.nodes[id] {
            Node::Leaf { class, counts } => {
                let _ = writeln!(out, "{pad}=> class {class} {counts:?}");
            }
            Node::Split {
                attr,
                spec,
                children,
                ..
            } => {
                let name = &self.attr_names[*attr];
                match spec {
                    SplitSpec::NumericThreshold { threshold } => {
                        let _ = writeln!(out, "{pad}{name} <= {threshold:.4}:");
                        self.render_node(children[0], indent + 1, out);
                        let _ = writeln!(out, "{pad}{name} > {threshold:.4}:");
                        self.render_node(children[1], indent + 1, out);
                    }
                    SplitSpec::CategoricalMultiway { categories } => {
                        for (ci, cat) in categories.iter().enumerate() {
                            let _ = writeln!(out, "{pad}{name} == #{cat}:");
                            self.render_node(children[ci], indent + 1, out);
                        }
                    }
                    SplitSpec::CategoricalEquals { category } => {
                        let _ = writeln!(out, "{pad}{name} == #{category}:");
                        self.render_node(children[0], indent + 1, out);
                        let _ = writeln!(out, "{pad}{name} != #{category}:");
                        self.render_node(children[1], indent + 1, out);
                    }
                }
            }
        }
    }
}

/// Top-down decision-tree inducer.
#[derive(Debug, Clone)]
pub struct DecisionTreeLearner {
    criterion: SplitCriterion,
    max_depth: Option<usize>,
    min_samples_split: usize,
    pruning: Pruning,
    parallelism: Parallelism,
}

impl Default for DecisionTreeLearner {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTreeLearner {
    /// A gain-ratio learner with no depth limit and no pruning.
    pub fn new() -> Self {
        Self {
            criterion: SplitCriterion::GainRatio,
            max_depth: None,
            min_samples_split: 2,
            pruning: Pruning::None,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Sets how candidate split attributes are evaluated across threads
    /// at each node. Candidates keep attribute order regardless of the
    /// thread count, so the grown tree is identical for every
    /// [`Parallelism`] setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the split criterion.
    pub fn with_criterion(mut self, criterion: SplitCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Caps tree depth (1 = a single leaf).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = Some(max_depth);
        self
    }

    /// Minimum rows a node needs to be considered for splitting.
    pub fn with_min_samples_split(mut self, min: usize) -> Self {
        self.min_samples_split = min.max(2);
        self
    }

    /// Sets the pruning strategy applied after growth.
    pub fn with_pruning(mut self, pruning: Pruning) -> Self {
        self.pruning = pruning;
        self
    }

    /// Trains a tree on `data` with `labels`.
    pub fn fit(&self, data: &Dataset, labels: &Labels) -> Result<DecisionTree, DataError> {
        Ok(self.fit_governed(data, labels, &Guard::unlimited())?.result)
    }

    /// Trains a tree under a resource [`Guard`].
    ///
    /// Every expanded node charges one work unit, so `max_work` acts as
    /// a node budget. When the guard trips, the subtree under expansion
    /// collapses to a majority-class leaf — the tree stays a complete
    /// classifier over the training schema, just shallower than an
    /// ungoverned run. Pruning still runs on the truncated tree.
    pub fn fit_governed(
        &self,
        data: &Dataset,
        labels: &Labels,
        guard: &Guard,
    ) -> Result<Outcome<DecisionTree>, DataError> {
        if labels.len() != data.n_rows() {
            return Err(DataError::LabelLengthMismatch {
                labels: labels.len(),
                rows: data.n_rows(),
            });
        }
        if data.n_rows() == 0 {
            return Err(DataError::Empty("training set"));
        }
        let n_classes = labels.n_classes();
        let codes = labels.codes();

        // Reduced-error pruning holds out part of the data.
        let all_rows: Vec<usize> = (0..data.n_rows()).collect();
        let (grow_rows, holdout_rows) = match self.pruning {
            Pruning::ReducedError { fraction, seed } => {
                if !(0.0..1.0).contains(&fraction) {
                    return Err(DataError::InvalidParameter(format!(
                        "holdout fraction {fraction} not in [0, 1)"
                    )));
                }
                let mut rows = all_rows.clone();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                rows.shuffle(&mut rng);
                let n_holdout = (rows.len() as f64 * fraction).round() as usize;
                let holdout = rows.split_off(rows.len() - n_holdout.min(rows.len() - 1));
                (rows, holdout)
            }
            _ => (all_rows, Vec::new()),
        };

        let mut nodes = Vec::new();
        let grow_span = guard.obs().span("tree.decision.grow");
        let root = self.grow(data, codes, &grow_rows, n_classes, 1, &mut nodes, guard);
        drop(grow_span);
        let mut tree = DecisionTree {
            nodes,
            root,
            n_classes,
            attr_names: data.attrs().iter().map(|a| a.name().to_owned()).collect(),
        };

        match self.pruning {
            Pruning::None => {}
            Pruning::ReducedError { .. } => {
                prune::reduced_error(&mut tree, data, codes, &holdout_rows);
            }
            Pruning::Pessimistic { cf } => {
                prune::pessimistic(&mut tree, cf);
            }
        }
        Ok(guard.outcome(tree))
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        data: &Dataset,
        codes: &[u32],
        rows: &[usize],
        n_classes: usize,
        depth: usize,
        nodes: &mut Vec<Node>,
        guard: &Guard,
    ) -> usize {
        let mut counts = vec![0usize; n_classes];
        for &i in rows {
            counts[codes[i] as usize] += 1;
        }
        let majority = counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        let depth_capped = self.max_depth.is_some_and(|m| depth >= m);
        let too_small = rows.len() < self.min_samples_split;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                class: majority,
                counts: counts.clone(),
            });
            nodes.len() - 1
        };

        if pure || depth_capped || too_small {
            return make_leaf(nodes);
        }
        // Node budget: expanding this node costs one work unit; on a trip
        // the subtree collapses to a majority leaf.
        if guard.try_work(1).is_err() {
            return make_leaf(nodes);
        }
        let obs = guard.obs();
        if obs.enabled() {
            // One split evaluation per attribute column scanned below.
            obs.counter("tree.decision.nodes_expanded", 1);
            obs.counter("tree.decision.split_evals", data.n_cols() as u64);
        }
        let Some(best) = best_split_par(
            data,
            codes,
            rows,
            n_classes,
            self.criterion,
            self.parallelism,
        ) else {
            return make_leaf(nodes);
        };
        let (child_rows, default_child) = partition(data, best.attr, &best.spec, rows);
        if child_rows.iter().any(Vec::is_empty) {
            // Degenerate partition (can happen when missing-value routing
            // drains a side); fall back to a leaf.
            return make_leaf(nodes);
        }
        let children: Vec<usize> = child_rows
            .iter()
            .map(|rows| self.grow(data, codes, rows, n_classes, depth + 1, nodes, guard))
            .collect();
        nodes.push(Node::Split {
            attr: best.attr,
            spec: best.spec,
            children,
            default_child,
            majority,
            counts,
        });
        nodes.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::Column;
    use dm_synth::{flip_labels, AgrawalFunction, AgrawalGenerator};

    fn xor_data() -> (Dataset, Labels) {
        // XOR over two categorical attributes: needs depth 3. One cell is
        // duplicated so single-attribute gains are strictly positive — a
        // perfectly balanced XOR has zero gain everywhere and greedy
        // induction (correctly) refuses to split it.
        let a = ["t", "t", "f", "f", "t", "t", "f", "f", "t"];
        let b = ["t", "f", "t", "f", "t", "f", "t", "f", "t"];
        let y = ["n", "y", "y", "n", "n", "y", "y", "n", "n"];
        let ds = Dataset::from_columns(
            "xor",
            vec![
                ("a".into(), Column::from_strings(a)),
                ("b".into(), Column::from_strings(b)),
            ],
        )
        .unwrap();
        (ds, Labels::from_strs(y))
    }

    #[test]
    fn learns_xor_exactly() {
        let (data, labels) = xor_data();
        for crit in [
            SplitCriterion::InfoGain,
            SplitCriterion::GainRatio,
            SplitCriterion::Gini,
        ] {
            let tree = DecisionTreeLearner::new()
                .with_criterion(crit)
                .fit(&data, &labels)
                .unwrap();
            assert_eq!(tree.predict(&data), labels.codes(), "{crit:?}");
        }
    }

    #[test]
    fn unpruned_tree_is_perfect_on_consistent_data() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 400)
            .unwrap()
            .generate(3);
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        assert_eq!(tree.predict(&data), labels.codes());
    }

    #[test]
    fn generalizes_on_agrawal_f1() {
        let (train, train_l) = AgrawalGenerator::new(AgrawalFunction::F1, 800)
            .unwrap()
            .generate(1);
        let (test, test_l) = AgrawalGenerator::new(AgrawalFunction::F1, 400)
            .unwrap()
            .generate(2);
        let tree = DecisionTreeLearner::new().fit(&train, &train_l).unwrap();
        let pred = tree.predict(&test);
        let acc = pred
            .iter()
            .zip(test_l.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 400.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn max_depth_one_is_a_leaf() {
        let (data, labels) = xor_data();
        let tree = DecisionTreeLearner::new()
            .with_max_depth(1)
            .fit(&data, &labels)
            .unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn min_samples_split_limits_growth() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 300)
            .unwrap()
            .generate(7);
        let full = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let stumped = DecisionTreeLearner::new()
            .with_min_samples_split(100)
            .fit(&data, &labels)
            .unwrap();
        assert!(stumped.n_nodes() < full.n_nodes());
    }

    #[test]
    fn pruned_never_larger_than_unpruned() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F5, 600)
            .unwrap()
            .generate(11);
        let noisy = flip_labels(&labels, 0.15, 5).unwrap();
        let unpruned = DecisionTreeLearner::new().fit(&data, &noisy).unwrap();
        for pruning in [
            Pruning::Pessimistic { cf: 0.25 },
            Pruning::ReducedError {
                fraction: 0.3,
                seed: 1,
            },
        ] {
            let pruned = DecisionTreeLearner::new()
                .with_pruning(pruning)
                .fit(&data, &noisy)
                .unwrap();
            assert!(
                pruned.n_nodes() < unpruned.n_nodes(),
                "{pruning:?}: {} !< {}",
                pruned.n_nodes(),
                unpruned.n_nodes()
            );
        }
    }

    #[test]
    fn pruning_helps_under_label_noise() {
        let (train, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 800)
            .unwrap()
            .generate(21);
        let noisy = flip_labels(&labels, 0.2, 9).unwrap();
        let (test, test_l) = AgrawalGenerator::new(AgrawalFunction::F2, 500)
            .unwrap()
            .generate(22);
        let acc = |tree: &DecisionTree| {
            tree.predict(&test)
                .iter()
                .zip(test_l.codes())
                .filter(|(p, t)| p == t)
                .count() as f64
                / 500.0
        };
        let unpruned = DecisionTreeLearner::new().fit(&train, &noisy).unwrap();
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit(&train, &noisy)
            .unwrap();
        assert!(
            acc(&pruned) >= acc(&unpruned) - 0.01,
            "pruned {} vs unpruned {}",
            acc(&pruned),
            acc(&unpruned)
        );
    }

    #[test]
    fn handles_missing_values_at_train_and_predict() {
        let data = Dataset::from_columns(
            "m",
            vec![(
                "x".into(),
                Column::from_numeric(vec![1.0, 2.0, f64::NAN, 10.0, 11.0, 12.0]),
            )],
        )
        .unwrap();
        let labels = Labels::from_strs(["a", "a", "a", "b", "b", "b"]);
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let test = Dataset::from_columns(
            "m",
            vec![("x".into(), Column::from_numeric(vec![f64::NAN]))],
        )
        .unwrap();
        let p = tree.predict(&test);
        assert!(p[0] < 2); // routed through the default child, no panic
    }

    #[test]
    fn validates_inputs() {
        let (data, labels) = xor_data();
        let short = Labels::from_strs(["a"]);
        assert!(DecisionTreeLearner::new().fit(&data, &short).is_err());
        let empty =
            Dataset::from_columns("e", vec![("x".into(), Column::from_numeric(vec![]))]).unwrap();
        let no_labels = Labels::from_strs(Vec::<&str>::new());
        assert!(DecisionTreeLearner::new().fit(&empty, &no_labels).is_err());
        assert!(DecisionTreeLearner::new()
            .with_pruning(Pruning::ReducedError {
                fraction: 1.5,
                seed: 0
            })
            .fit(&data, &labels)
            .is_err());
    }

    #[test]
    fn render_names_attributes() {
        let (data, labels) = xor_data();
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let txt = tree.render();
        assert!(txt.contains('a') || txt.contains('b'));
        assert!(txt.contains("class"));
    }

    #[test]
    fn deterministic() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F3, 300)
            .unwrap()
            .generate(4);
        let a = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        let b = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        assert_eq!(a.predict(&data), b.predict(&data));
        assert_eq!(a.n_nodes(), b.n_nodes());
    }

    #[test]
    fn node_budget_truncates_growth_gracefully() {
        use dm_guard::{Budget, CancelToken, TruncationReason};
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F2, 400)
            .unwrap()
            .generate(3);
        let full = DecisionTreeLearner::new().fit(&data, &labels).unwrap();

        // A tight node budget yields a smaller but complete classifier.
        let guard = Guard::new(Budget::unlimited().with_max_work(3));
        let out = DecisionTreeLearner::new()
            .fit_governed(&data, &labels, &guard)
            .unwrap();
        assert_eq!(out.truncation(), Some(TruncationReason::WorkLimitExceeded));
        assert!(guard.work_done() <= 3);
        assert!(out.result.n_nodes() < full.n_nodes());
        // Every row still gets a prediction in range.
        for p in out.result.predict(&data) {
            assert!((p as usize) < out.result.n_classes());
        }

        // A pre-cancelled token collapses the whole tree to one leaf.
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(Budget::unlimited(), token);
        let out = DecisionTreeLearner::new()
            .fit_governed(&data, &labels, &guard)
            .unwrap();
        assert_eq!(out.truncation(), Some(TruncationReason::Cancelled));
        assert_eq!(out.result.n_nodes(), 1);

        // An unlimited guard is bit-identical to the ungoverned fit.
        let out = DecisionTreeLearner::new()
            .fit_governed(&data, &labels, &Guard::unlimited())
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.result, full);
    }

    #[test]
    fn single_class_data_is_one_leaf() {
        let data = Dataset::from_columns(
            "s",
            vec![("x".into(), Column::from_numeric(vec![1.0, 2.0, 3.0]))],
        )
        .unwrap();
        let labels = Labels::from_strs(["only", "only", "only"]);
        let tree = DecisionTreeLearner::new().fit(&data, &labels).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&data), vec![0, 0, 0]);
    }
}
