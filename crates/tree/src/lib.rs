//! # dm-tree
//!
//! Decision-tree classification in the lineage the survey covers:
//!
//! * [`DecisionTreeLearner`] — a top-down inducer supporting the three
//!   classic split criteria ([`SplitCriterion::InfoGain`] as in ID3,
//!   [`SplitCriterion::GainRatio`] as in C4.5, [`SplitCriterion::Gini`]
//!   as in CART), numeric threshold splits, categorical splits
//!   (multiway for the entropy criteria, binary one-vs-rest for Gini),
//!   and missing-value routing to the majority child.
//! * [`Pruning`] — reduced-error pruning on a holdout, or C4.5-style
//!   pessimistic (error-based) pruning.
//! * [`OneR`] — Holte's 1R single-attribute baseline.
//! * [`BaggedTrees`] — Breiman's bootstrap-aggregated tree ensemble.
//!
//! ```
//! use dm_synth::{AgrawalFunction, AgrawalGenerator};
//! use dm_tree::{DecisionTreeLearner, SplitCriterion};
//!
//! let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 500)
//!     .unwrap()
//!     .generate(42);
//! let tree = DecisionTreeLearner::new()
//!     .with_criterion(SplitCriterion::GainRatio)
//!     .fit(&data, &labels)
//!     .unwrap();
//! let predictions = tree.predict(&data);
//! let correct = predictions
//!     .iter()
//!     .zip(labels.codes())
//!     .filter(|(p, t)| p == t)
//!     .count();
//! assert!(correct as f64 / 500.0 > 0.95);
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod criterion;
pub mod ensemble;
pub mod one_r;
pub mod prune;
pub mod rules;
pub mod split;
pub mod tree;

pub use criterion::SplitCriterion;
pub use ensemble::{BaggedTrees, BaggedTreesModel};
pub use one_r::{OneR, OneRModel};
pub use prune::Pruning;
pub use rules::{extract_rules, rules_from_tree, ClassificationRule, Condition, RuleSet};
pub use tree::{DecisionTree, DecisionTreeLearner, Node, SplitKind};
