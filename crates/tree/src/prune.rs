//! Post-growth pruning strategies.

use crate::tree::{DecisionTree, Node};
use dm_dataset::Dataset;

/// Pruning strategy applied after the tree is grown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pruning {
    /// Keep the full tree.
    None,
    /// Reduced-error pruning (Quinlan 1987): hold out `fraction` of the
    /// training rows; bottom-up, replace any subtree whose majority leaf
    /// would make no more holdout errors than the subtree does.
    ReducedError {
        /// Fraction of rows held out for pruning, in `[0, 1)`.
        fraction: f64,
        /// Shuffle seed for the holdout selection.
        seed: u64,
    },
    /// Pessimistic (error-based) pruning as in C4.5: compare the
    /// subtree's summed upper-bound error estimate against the estimate
    /// of the node collapsed to a leaf. The bound is the exact binomial
    /// upper confidence limit at confidence factor `cf` (C4.5's default
    /// is 0.25); smaller `cf` prunes more aggressively.
    Pessimistic {
        /// Confidence factor in `(0, 1)`; C4.5 default 0.25.
        cf: f64,
    },
}

/// Exact binomial upper confidence limit, as used by C4.5: the largest
/// error probability `p` such that observing `errors` or fewer errors in
/// `n` cases still has probability ≥ `cf`. Solved by bisection on the
/// binomial CDF. Returns the *expected error count* `n · p`.
fn ucb_errors(errors: usize, n: usize, cf: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if errors >= n {
        return n as f64;
    }
    // CDF P(X <= errors; n, p), computed with incremental log terms.
    let cdf = |p: f64| -> f64 {
        if p <= 0.0 {
            return 1.0;
        }
        if p >= 1.0 {
            return if errors == n { 1.0 } else { 0.0 };
        }
        let (lp, lq) = (p.ln(), (1.0 - p).ln());
        // log C(n, 0) = 0.
        let mut log_binom = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..=errors {
            if i > 0 {
                log_binom += ((n - i + 1) as f64).ln() - (i as f64).ln();
            }
            total += (log_binom + i as f64 * lp + (n - i) as f64 * lq).exp();
        }
        total.min(1.0)
    };
    // p is in [errors/n, 1]; CDF is decreasing in p.
    let (mut lo, mut hi) = (errors as f64 / n as f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) > cf {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    n as f64 * 0.5 * (lo + hi)
}

/// Applies pessimistic pruning in place.
pub fn pessimistic(tree: &mut DecisionTree, cf: f64) {
    prune_pessimistic(tree, tree.root, cf);
}

/// Returns the subtree's estimated error count after (possible) pruning.
fn prune_pessimistic(tree: &mut DecisionTree, id: usize, cf: f64) -> f64 {
    let (children, majority, counts) = match &tree.nodes[id] {
        Node::Leaf { counts, .. } => {
            let n: usize = counts.iter().sum();
            let errors = n - counts.iter().max().copied().unwrap_or(0);
            return ucb_errors(errors, n, cf);
        }
        Node::Split {
            children,
            majority,
            counts,
            ..
        } => (children.clone(), *majority, counts.clone()),
    };
    let subtree_est: f64 = children
        .iter()
        .map(|&c| prune_pessimistic(tree, c, cf))
        .sum();
    let n: usize = counts.iter().sum();
    let errors = n - counts.iter().max().copied().unwrap_or(0);
    let leaf_est = ucb_errors(errors, n, cf);
    if leaf_est <= subtree_est {
        tree.nodes[id] = Node::Leaf {
            class: majority,
            counts,
        };
        leaf_est
    } else {
        subtree_est
    }
}

/// Applies reduced-error pruning in place using the holdout rows.
pub fn reduced_error(tree: &mut DecisionTree, data: &Dataset, codes: &[u32], holdout: &[usize]) {
    prune_reduced(tree, tree.root, data, codes, holdout);
}

/// Returns the subtree's holdout error count after (possible) pruning.
fn prune_reduced(
    tree: &mut DecisionTree,
    id: usize,
    data: &Dataset,
    codes: &[u32],
    rows: &[usize],
) -> usize {
    let (attr, spec, children, default_child, majority, counts) = match &tree.nodes[id] {
        Node::Leaf { class, .. } => {
            return rows.iter().filter(|&&i| codes[i] != *class).count();
        }
        Node::Split {
            attr,
            spec,
            children,
            default_child,
            majority,
            counts,
        } => (
            *attr,
            spec.clone(),
            children.clone(),
            *default_child,
            *majority,
            counts.clone(),
        ),
    };
    // Route the holdout rows down the split.
    let mut child_rows: Vec<Vec<usize>> = vec![Vec::new(); spec.arity()];
    let col = data.column(attr);
    for &i in rows {
        let child = col
            .get(i)
            .and_then(|v| spec.route(v))
            .unwrap_or(default_child);
        child_rows[child].push(i);
    }
    let subtree_errors: usize = children
        .iter()
        .zip(&child_rows)
        .map(|(&c, rows)| prune_reduced(tree, c, data, codes, rows))
        .sum();
    let leaf_errors = rows.iter().filter(|&&i| codes[i] != majority).count();
    if leaf_errors <= subtree_errors {
        tree.nodes[id] = Node::Leaf {
            class: majority,
            counts,
        };
        leaf_errors
    } else {
        subtree_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeLearner;
    use dm_synth::{flip_labels, AgrawalFunction, AgrawalGenerator};

    #[test]
    fn ucb_is_pessimistic_and_shrinks_with_n() {
        // Zero observed errors still estimate positive error mass.
        assert!(ucb_errors(0, 10, 0.25) > 0.0);
        // The bound exceeds the observed errors.
        assert!(ucb_errors(3, 10, 0.25) > 3.0);
        // Rate bound tightens as n grows (per-case estimate falls).
        let small = ucb_errors(1, 10, 0.25) / 10.0;
        let large = ucb_errors(10, 100, 0.25) / 100.0;
        assert!(large < small);
        // Degenerate cases.
        assert_eq!(ucb_errors(0, 0, 0.25), 0.0);
        assert_eq!(ucb_errors(5, 5, 0.25), 5.0);
    }

    #[test]
    fn ucb_matches_c45_closed_form_at_zero_errors() {
        // For e = 0 the exact bound solves (1-p)^n = cf, i.e.
        // p = 1 - cf^(1/n) — the closed form quoted by Quinlan.
        for n in [1usize, 3, 10, 50] {
            let expected = 1.0 - 0.25f64.powf(1.0 / n as f64);
            let got = ucb_errors(0, n, 0.25) / n as f64;
            assert!((got - expected).abs() < 1e-9, "n={n}: {got} vs {expected}");
        }
    }

    #[test]
    fn smaller_cf_prunes_more() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F5, 500)
            .unwrap()
            .generate(13);
        let noisy = flip_labels(&labels, 0.2, 3).unwrap();
        let gentle = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.9 })
            .fit(&data, &noisy)
            .unwrap();
        let aggressive = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.01 })
            .fit(&data, &noisy)
            .unwrap();
        assert!(aggressive.n_nodes() <= gentle.n_nodes());
    }

    #[test]
    fn reduced_error_prunes_noise_overfit() {
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 600)
            .unwrap()
            .generate(17);
        let noisy = flip_labels(&labels, 0.25, 8).unwrap();
        let unpruned = DecisionTreeLearner::new().fit(&data, &noisy).unwrap();
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::ReducedError {
                fraction: 0.33,
                seed: 2,
            })
            .fit(&data, &noisy)
            .unwrap();
        assert!(
            pruned.n_nodes() < unpruned.n_nodes() * 7 / 10,
            "pruned {} vs unpruned {}",
            pruned.n_nodes(),
            unpruned.n_nodes()
        );
    }

    #[test]
    fn pruning_keeps_a_clean_tree_intact() {
        // Noise-free, strongly learnable data: pessimistic pruning should
        // not collapse the tree to a stump.
        let (data, labels) = AgrawalGenerator::new(AgrawalFunction::F1, 500)
            .unwrap()
            .generate(19);
        let pruned = DecisionTreeLearner::new()
            .with_pruning(Pruning::Pessimistic { cf: 0.25 })
            .fit(&data, &labels)
            .unwrap();
        let acc = pruned
            .predict(&data)
            .iter()
            .zip(labels.codes())
            .filter(|(p, t)| p == t)
            .count() as f64
            / 500.0;
        assert!(acc > 0.95, "over-pruned: accuracy {acc}");
        assert!(pruned.n_nodes() > 1);
    }
}
