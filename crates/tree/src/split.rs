//! Split search: finding the best attribute test for a node.

use crate::criterion::SplitCriterion;
use dm_dataset::{Column, Dataset};
use dm_par::{par_range_map_reduce, Chunking, Parallelism};

/// A concrete attribute test, before it is wired into tree nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitSpec {
    /// `value <= threshold` goes left, `> threshold` right.
    NumericThreshold {
        /// The split threshold (a midpoint between observed values).
        threshold: f64,
    },
    /// One child per listed category code (the codes observed at this
    /// node, ascending).
    CategoricalMultiway {
        /// Category codes with a dedicated child, ascending.
        categories: Vec<u32>,
    },
    /// Binary test `value == category` (CART-style one-vs-rest).
    CategoricalEquals {
        /// The singled-out category code.
        category: u32,
    },
}

impl SplitSpec {
    /// Number of children this split produces.
    pub fn arity(&self) -> usize {
        match self {
            SplitSpec::NumericThreshold { .. } | SplitSpec::CategoricalEquals { .. } => 2,
            SplitSpec::CategoricalMultiway { categories } => categories.len(),
        }
    }

    /// Child index for a non-missing cell value, or `None` when the value
    /// has no dedicated child (unseen category).
    pub fn route(&self, value: dm_dataset::Value) -> Option<usize> {
        match (self, value) {
            (SplitSpec::NumericThreshold { threshold }, dm_dataset::Value::Num(x)) => {
                Some(usize::from(x > *threshold))
            }
            (SplitSpec::CategoricalMultiway { categories }, dm_dataset::Value::Cat(c)) => {
                categories.binary_search(&c).ok()
            }
            (SplitSpec::CategoricalEquals { category }, dm_dataset::Value::Cat(c)) => {
                Some(usize::from(c != *category))
            }
            _ => None,
        }
    }
}

/// The winning split for a node.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSplit {
    /// Attribute (column) index.
    pub attr: usize,
    /// The attribute test.
    pub spec: SplitSpec,
    /// Criterion score (higher is better, > 0).
    pub score: f64,
    /// Raw impurity decrease (information gain for the entropy criteria,
    /// Gini decrease for CART). Equals `score` except under
    /// [`SplitCriterion::GainRatio`].
    pub gain: f64,
}

/// Searches all attributes for the best split of `rows` under
/// `criterion`. Returns `None` when no split has positive score or every
/// candidate would leave an empty child.
///
/// Two C4.5 safeguards apply under [`SplitCriterion::GainRatio`]: the
/// threshold of a numeric attribute is chosen by raw information gain
/// (only the final cross-attribute comparison uses the ratio), and an
/// attribute competes only if its raw gain is at least the average
/// positive gain of all candidate attributes. Without these, gain ratio
/// famously degenerates into single-row-peeling splits (tiny gain over
/// even tinier split information).
pub fn best_split(
    data: &Dataset,
    labels: &[u32],
    rows: &[usize],
    n_classes: usize,
    criterion: SplitCriterion,
) -> Option<CandidateSplit> {
    best_split_par(
        data,
        labels,
        rows,
        n_classes,
        criterion,
        Parallelism::Sequential,
    )
}

/// [`best_split`] with the candidate attributes evaluated across
/// threads. Per-attribute candidate lists concatenate in attribute
/// order, so the candidate vector — and therefore tie-breaking between
/// equal scores — is identical for every [`Parallelism`] setting.
pub fn best_split_par(
    data: &Dataset,
    labels: &[u32],
    rows: &[usize],
    n_classes: usize,
    criterion: SplitCriterion,
    par: Parallelism,
) -> Option<CandidateSplit> {
    let mut candidates: Vec<CandidateSplit> = par_range_map_reduce(
        par,
        Chunking::Fixed(1), // one attribute per chunk: per-attr work dominates
        data.n_cols(),
        Vec::new,
        |attrs| {
            let mut local: Vec<CandidateSplit> = Vec::new();
            for attr in attrs {
                match data.column(attr) {
                    Column::Numeric(values) => {
                        if let Some(c) =
                            best_numeric_split(values, labels, rows, n_classes, criterion)
                        {
                            local.push(CandidateSplit { attr, ..c });
                        }
                    }
                    Column::Categorical { codes, .. } => {
                        for c in categorical_splits(codes, labels, rows, n_classes, criterion) {
                            local.push(CandidateSplit { attr, ..c });
                        }
                    }
                }
            }
            local
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    candidates.retain(|c| c.score > 1e-12 && c.gain > 1e-12);
    if candidates.is_empty() {
        return None;
    }
    if criterion == SplitCriterion::GainRatio {
        // "At least average gain" constraint.
        let mean_gain = candidates.iter().map(|c| c.gain).sum::<f64>() / candidates.len() as f64;
        let admissible: Vec<&CandidateSplit> = candidates
            .iter()
            .filter(|c| c.gain >= mean_gain - 1e-12)
            .collect();
        return admissible
            .into_iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .cloned();
    }
    candidates
        .into_iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
}

fn best_numeric_split(
    values: &[f64],
    labels: &[u32],
    rows: &[usize],
    n_classes: usize,
    criterion: SplitCriterion,
) -> Option<CandidateSplit> {
    // Collect non-missing (value, class) pairs and sort by value.
    let mut pairs: Vec<(f64, u32)> = rows
        .iter()
        .filter_map(|&i| {
            let v = values[i];
            if v.is_nan() {
                None
            } else {
                Some((v, labels[i]))
            }
        })
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut total = vec![0usize; n_classes];
    for &(_, c) in &pairs {
        total[c as usize] += 1;
    }
    // Under GainRatio the *threshold* is picked by raw gain (C4.5's
    // rule); the ratio only enters the cross-attribute comparison.
    let pick_by = match criterion {
        SplitCriterion::GainRatio => SplitCriterion::InfoGain,
        other => other,
    };
    let mut left = vec![0usize; n_classes];
    let mut best: Option<(f64, f64, Vec<usize>)> = None; // (threshold, pick score, left counts)
    for w in 0..pairs.len() - 1 {
        left[pairs[w].1 as usize] += 1;
        let (v, next) = (pairs[w].0, pairs[w + 1].0);
        if v == next {
            continue; // can only split between distinct values
        }
        let right: Vec<usize> = total.iter().zip(&left).map(|(&t, &l)| t - l).collect();
        let score = pick_by.score(&total, &[left.clone(), right]);
        if score > 1e-12 && best.as_ref().is_none_or(|&(_, s, _)| score > s) {
            best = Some((v + (next - v) / 2.0, score, left.clone()));
        }
    }
    best.map(|(threshold, pick_score, left)| {
        let right: Vec<usize> = total.iter().zip(&left).map(|(&t, &l)| t - l).collect();
        let children = [left, right];
        let (score, gain) = match criterion {
            SplitCriterion::GainRatio => (
                criterion.score(&total, &children),
                pick_score, // the raw information gain
            ),
            _ => (pick_score, pick_score),
        };
        CandidateSplit {
            attr: usize::MAX, // filled by caller
            spec: SplitSpec::NumericThreshold { threshold },
            score,
            gain,
        }
    })
}

fn categorical_splits(
    codes: &[u32],
    labels: &[u32],
    rows: &[usize],
    n_classes: usize,
    criterion: SplitCriterion,
) -> Vec<CandidateSplit> {
    use std::collections::BTreeMap;
    // Class counts per observed category (missing excluded).
    let mut per_cat: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut total = vec![0usize; n_classes];
    for &i in rows {
        let code = codes[i];
        if code == dm_dataset::MISSING_CODE {
            continue;
        }
        per_cat.entry(code).or_insert_with(|| vec![0; n_classes])[labels[i] as usize] += 1;
        total[labels[i] as usize] += 1;
    }
    if per_cat.len() < 2 {
        return Vec::new();
    }
    let categories: Vec<u32> = per_cat.keys().copied().collect();
    let children: Vec<Vec<usize>> = per_cat.values().cloned().collect();
    let mut out = Vec::new();
    match criterion {
        SplitCriterion::InfoGain | SplitCriterion::GainRatio => {
            let score = criterion.score(&total, &children);
            let gain = SplitCriterion::InfoGain.score(&total, &children);
            out.push(CandidateSplit {
                attr: usize::MAX,
                spec: SplitSpec::CategoricalMultiway { categories },
                score,
                gain,
            });
        }
        SplitCriterion::Gini => {
            // CART: best one-vs-rest binary partition.
            for (idx, &cat) in categories.iter().enumerate() {
                let inside = children[idx].clone();
                let outside: Vec<usize> = total.iter().zip(&inside).map(|(&t, &i)| t - i).collect();
                let score = criterion.score(&total, &[inside, outside]);
                out.push(CandidateSplit {
                    attr: usize::MAX,
                    spec: SplitSpec::CategoricalEquals { category: cat },
                    score,
                    gain: score,
                });
            }
        }
    }
    out
}

/// Partitions `rows` by `spec` on attribute `attr`. Missing values and
/// unseen categories go to the largest child (the "default child"),
/// whose index is returned alongside.
pub fn partition(
    data: &Dataset,
    attr: usize,
    spec: &SplitSpec,
    rows: &[usize],
) -> (Vec<Vec<usize>>, usize) {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spec.arity()];
    let mut unrouted: Vec<usize> = Vec::new();
    let col = data.column(attr);
    for &i in rows {
        match col.get(i).and_then(|v| spec.route(v)) {
            Some(child) => children[child].push(i),
            None => unrouted.push(i),
        }
    }
    let default_child = children
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.len())
        .map(|(i, _)| i)
        .unwrap_or(0);
    children[default_child].extend(unrouted);
    (children, default_child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_dataset::{Column, Dataset};

    fn ds(cols: Vec<(String, Column)>) -> Dataset {
        Dataset::from_columns("t", cols).unwrap()
    }

    #[test]
    fn numeric_split_finds_clean_threshold() {
        let data = ds(vec![(
            "x".into(),
            Column::from_numeric(vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0]),
        )]);
        let labels = [0u32, 0, 0, 1, 1, 1];
        let rows: Vec<usize> = (0..6).collect();
        let best = best_split(&data, &labels, &rows, 2, SplitCriterion::InfoGain).unwrap();
        assert_eq!(best.attr, 0);
        match best.spec {
            SplitSpec::NumericThreshold { threshold } => {
                assert!((threshold - 6.5).abs() < 1e-12)
            }
            ref other => panic!("unexpected split {other:?}"),
        }
        assert!((best.score - 1.0).abs() < 1e-12); // full bit of information
    }

    #[test]
    fn categorical_multiway_split() {
        let data = ds(vec![(
            "c".into(),
            Column::from_strings(["a", "a", "b", "b", "c", "c"]),
        )]);
        let labels = [0u32, 0, 1, 1, 0, 1];
        let rows: Vec<usize> = (0..6).collect();
        let best = best_split(&data, &labels, &rows, 2, SplitCriterion::InfoGain).unwrap();
        match &best.spec {
            SplitSpec::CategoricalMultiway { categories } => {
                assert_eq!(categories, &vec![0, 1, 2])
            }
            other => panic!("unexpected split {other:?}"),
        }
    }

    #[test]
    fn gini_uses_binary_categorical() {
        let data = ds(vec![(
            "c".into(),
            Column::from_strings(["a", "a", "b", "c"]),
        )]);
        let labels = [0u32, 0, 1, 1];
        let rows: Vec<usize> = (0..4).collect();
        let best = best_split(&data, &labels, &rows, 2, SplitCriterion::Gini).unwrap();
        match best.spec {
            SplitSpec::CategoricalEquals { category } => assert_eq!(category, 0),
            ref other => panic!("unexpected split {other:?}"),
        }
        assert!((best.score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_split_on_pure_or_constant_data() {
        let data = ds(vec![("x".into(), Column::from_numeric(vec![5.0; 4]))]);
        let labels = [0u32, 1, 0, 1];
        let rows: Vec<usize> = (0..4).collect();
        assert!(best_split(&data, &labels, &rows, 2, SplitCriterion::InfoGain).is_none());

        let data2 = ds(vec![(
            "x".into(),
            Column::from_numeric(vec![1.0, 2.0, 3.0]),
        )]);
        let pure = [1u32, 1, 1];
        let rows: Vec<usize> = (0..3).collect();
        assert!(best_split(&data2, &pure, &rows, 2, SplitCriterion::InfoGain).is_none());
    }

    #[test]
    fn missing_values_ignored_in_scoring_and_routed_to_default() {
        let data = ds(vec![(
            "x".into(),
            Column::from_numeric(vec![1.0, 2.0, f64::NAN, 10.0, 11.0]),
        )]);
        let labels = [0u32, 0, 0, 1, 1];
        let rows: Vec<usize> = (0..5).collect();
        let best = best_split(&data, &labels, &rows, 2, SplitCriterion::InfoGain).unwrap();
        let (children, default) = partition(&data, best.attr, &best.spec, &rows);
        assert_eq!(children.len(), 2);
        // Row 2 (missing) must be in the default child.
        assert!(children[default].contains(&2));
        assert_eq!(children.iter().map(Vec::len).sum::<usize>(), 5);
    }

    #[test]
    fn route_unseen_category_is_none() {
        let spec = SplitSpec::CategoricalMultiway {
            categories: vec![0, 2],
        };
        assert_eq!(spec.route(dm_dataset::Value::Cat(0)), Some(0));
        assert_eq!(spec.route(dm_dataset::Value::Cat(2)), Some(1));
        assert_eq!(spec.route(dm_dataset::Value::Cat(1)), None);
        assert_eq!(spec.route(dm_dataset::Value::Missing), None);
    }

    #[test]
    fn threshold_routing() {
        let spec = SplitSpec::NumericThreshold { threshold: 5.0 };
        assert_eq!(spec.route(dm_dataset::Value::Num(5.0)), Some(0));
        assert_eq!(spec.route(dm_dataset::Value::Num(5.1)), Some(1));
        assert_eq!(spec.route(dm_dataset::Value::Missing), None);
    }

    #[test]
    fn picks_the_informative_attribute() {
        let data = ds(vec![
            (
                "noise".into(),
                Column::from_numeric(vec![1.0, 2.0, 1.5, 2.5]),
            ),
            ("signal".into(), Column::from_strings(["a", "a", "b", "b"])),
        ]);
        let labels = [0u32, 0, 1, 1];
        let rows: Vec<usize> = (0..4).collect();
        let best = best_split(&data, &labels, &rows, 2, SplitCriterion::GainRatio).unwrap();
        assert_eq!(best.attr, 1);
    }

    #[test]
    fn ties_and_duplicates_do_not_split_within_equal_values() {
        let data = ds(vec![(
            "x".into(),
            Column::from_numeric(vec![1.0, 1.0, 1.0, 2.0]),
        )]);
        let labels = [0u32, 1, 0, 1];
        let rows: Vec<usize> = (0..4).collect();
        let best = best_split(&data, &labels, &rows, 2, SplitCriterion::InfoGain).unwrap();
        match best.spec {
            SplitSpec::NumericThreshold { threshold } => {
                assert!((threshold - 1.5).abs() < 1e-12)
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }
}
