//! Vertical (columnar) transaction layout for intersection-based mining.
//!
//! The horizontal [`TransactionDb`] stores one row per transaction; the
//! vertical layout stores one **tid column** per item: the set of
//! transaction ids containing that item. Support counting then becomes
//! set intersection — the substrate of Eclat-style miners and of
//! intersection-based pair counting inside Apriori's second pass.
//!
//! Each column adapts its representation to its density:
//!
//! * **Dense** items ([`TidSet::Bits`]) pack tids into `u64` words; an
//!   intersection is a word-wise `AND` + `popcount` sweep, and the word
//!   array doubles as a chunkable layout for `dm_par` range sharding
//!   (popcount sums are exactly associative, so sharded counts are
//!   bit-identical to sequential ones).
//! * **Sparse** items ([`TidSet::Tids`]) keep a sorted tid-list; two
//!   sparse columns intersect by galloping (exponential probe + binary
//!   search) from the smaller list into the larger, and a sparse column
//!   probes a dense one bit by bit.
//!
//! The cutover is per column: a set holding more than one tid per
//! [`DENSE_CUTOVER`] rows becomes a bitset (see [`TidSet::from_tids`]).
//! All operations are deterministic; materialized intersections re-apply
//! the cutover so derived sets stay in the cheaper representation.

use crate::transactions::TransactionDb;
use dm_obs::HeapSize;

/// A column is stored dense (word-packed bitset) when it holds more than
/// one tid per this many rows. At 16 rows per tid the bitset (1 bit/row)
/// is at most half the size of the 32-bit tid-list it replaces, so the
/// cutover only ever shrinks a column while buying O(64)-per-word
/// intersections.
pub const DENSE_CUTOVER: usize = 16;

/// The set of transaction ids containing one item, in the representation
/// its density earns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TidSet {
    /// Word-packed bitset over `0..n_rows` with its precomputed
    /// cardinality; tid `t` lives in bit `t % 64` of word `t / 64`.
    Bits {
        /// `ceil(n_rows / 64)` packed words.
        words: Vec<u64>,
        /// Number of set bits (the item's support count).
        count: usize,
    },
    /// Sorted, duplicate-free tid-list.
    Tids(Vec<u32>),
}

impl TidSet {
    /// Builds the representation `tids` earns under the density cutover.
    /// `tids` must be sorted and duplicate-free (as produced by a scan of
    /// a [`TransactionDb`] in tid order).
    pub fn from_tids(tids: Vec<u32>, n_rows: usize) -> Self {
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "tids sorted+deduped");
        if tids.len() * DENSE_CUTOVER > n_rows {
            let mut words = vec![0u64; n_rows.div_ceil(64)];
            for &t in &tids {
                words[t as usize / 64] |= 1u64 << (t % 64);
            }
            TidSet::Bits {
                words,
                count: tids.len(),
            }
        } else {
            TidSet::Tids(tids)
        }
    }

    /// An empty set (always sparse: zero tids never earn words).
    pub fn empty() -> Self {
        TidSet::Tids(Vec::new())
    }

    /// Number of tids in the set — the item(set)'s support count.
    pub fn support(&self) -> usize {
        match self {
            TidSet::Bits { count, .. } => *count,
            TidSet::Tids(tids) => tids.len(),
        }
    }

    /// Whether the set is stored as a word-packed bitset.
    pub fn is_dense(&self) -> bool {
        matches!(self, TidSet::Bits { .. })
    }

    /// The packed words of a dense set (`None` for sparse).
    pub fn as_words(&self) -> Option<&[u64]> {
        match self {
            TidSet::Bits { words, .. } => Some(words),
            TidSet::Tids(_) => None,
        }
    }

    /// The sorted tid-list of a sparse set (`None` for dense).
    pub fn as_tids(&self) -> Option<&[u32]> {
        match self {
            TidSet::Tids(tids) => Some(tids),
            TidSet::Bits { .. } => None,
        }
    }

    /// Whether `tid` is in the set.
    pub fn contains(&self, tid: u32) -> bool {
        match self {
            TidSet::Bits { words, .. } => words
                .get(tid as usize / 64)
                .is_some_and(|w| w & (1u64 << (tid % 64)) != 0),
            TidSet::Tids(tids) => tids.binary_search(&tid).is_ok(),
        }
    }

    /// The tids of the set in ascending order.
    pub fn iter_tids(&self) -> Vec<u32> {
        match self {
            TidSet::Tids(tids) => tids.clone(),
            TidSet::Bits { words, count } => {
                let mut out = Vec::with_capacity(*count);
                for (wi, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        out.push(wi as u32 * 64 + bit);
                        w &= w - 1;
                    }
                }
                out
            }
        }
    }

    /// `|self ∩ other|` without materializing the intersection:
    /// AND+popcount for dense/dense, galloping for sparse/sparse, bit
    /// probing for mixed pairs.
    pub fn intersect_count(&self, other: &TidSet) -> usize {
        match (self, other) {
            (TidSet::Bits { words: a, .. }, TidSet::Bits { words: b, .. }) => {
                count_and_words(a, b, 0..a.len().min(b.len()))
            }
            (TidSet::Tids(a), TidSet::Tids(b)) => galloping_intersect_count(a, b),
            (TidSet::Tids(tids), dense @ TidSet::Bits { .. })
            | (dense @ TidSet::Bits { .. }, TidSet::Tids(tids)) => {
                tids.iter().filter(|&&t| dense.contains(t)).count()
            }
        }
    }

    /// Materializes `self ∩ other`, re-applying the density cutover so
    /// the result lands in the representation its own cardinality earns.
    pub fn intersect(&self, other: &TidSet, n_rows: usize) -> TidSet {
        match (self, other) {
            (TidSet::Bits { words: a, .. }, TidSet::Bits { words: b, .. }) => {
                let n = a.len().min(b.len());
                let mut words: Vec<u64> = Vec::with_capacity(n);
                let mut count = 0usize;
                for i in 0..n {
                    let w = a[i] & b[i];
                    count += w.count_ones() as usize;
                    words.push(w);
                }
                if count * DENSE_CUTOVER > n_rows {
                    TidSet::Bits { words, count }
                } else {
                    TidSet::from_tids(TidSet::Bits { words, count }.iter_tids(), n_rows)
                }
            }
            (TidSet::Tids(a), TidSet::Tids(b)) => {
                TidSet::from_tids(galloping_intersect(a, b), n_rows)
            }
            (TidSet::Tids(tids), dense @ TidSet::Bits { .. })
            | (dense @ TidSet::Bits { .. }, TidSet::Tids(tids)) => TidSet::from_tids(
                tids.iter()
                    .copied()
                    .filter(|&t| dense.contains(t))
                    .collect(),
                n_rows,
            ),
        }
    }
}

impl HeapSize for TidSet {
    fn heap_bytes(&self) -> usize {
        match self {
            TidSet::Bits { words, .. } => words.heap_bytes(),
            TidSet::Tids(tids) => tids.heap_bytes(),
        }
    }
}

/// `popcount(a[i] & b[i])` summed over `range` — the chunkable kernel of
/// dense/dense intersection. Callers shard `range` across threads
/// (fixed-boundary chunks) and sum the partial counts; integer addition
/// is exactly associative, so any sharding yields the sequential count.
#[inline]
pub fn count_and_words(a: &[u64], b: &[u64], range: std::ops::Range<usize>) -> usize {
    a[range.clone()]
        .iter()
        .zip(&b[range])
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Galloping (exponential-probe) intersection count of two sorted lists.
/// Probes from the smaller list into the larger, so the cost is
/// `O(|small| · log(|big| / |small|))`.
pub fn galloping_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0usize;
    let mut lo = 0usize;
    for &s in small {
        match gallop_to(big, lo, s) {
            (pos, true) => {
                count += 1;
                lo = pos + 1;
            }
            (pos, false) => lo = pos,
        }
        if lo >= big.len() {
            break;
        }
    }
    count
}

/// Galloping intersection materializing the common tids (sorted).
pub fn galloping_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::new();
    let mut lo = 0usize;
    for &s in small {
        match gallop_to(big, lo, s) {
            (pos, true) => {
                out.push(s);
                lo = pos + 1;
            }
            (pos, false) => lo = pos,
        }
        if lo >= big.len() {
            break;
        }
    }
    out
}

/// Finds the insertion point of `target` in `sorted[lo..]` by doubling
/// probes then binary search over the last probed window. Returns
/// `(index, found)`.
fn gallop_to(sorted: &[u32], lo: usize, target: u32) -> (usize, bool) {
    let mut step = 1usize;
    let mut prev = lo;
    let mut hi = lo;
    // After the loop, `sorted[prev] < target` (or prev == lo) and
    // `sorted[hi] >= target` (or hi == len): target lives in [prev, hi].
    while hi < sorted.len() && sorted[hi] < target {
        prev = hi;
        hi = hi.saturating_add(step).min(sorted.len());
        step <<= 1;
    }
    let end = (hi + 1).min(sorted.len());
    match sorted[prev..end].binary_search(&target) {
        Ok(i) => (prev + i, true),
        Err(i) => (prev + i, false),
    }
}

/// The vertical layout of a whole database: one [`TidSet`] per item id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalDb {
    n_rows: usize,
    columns: Vec<TidSet>,
}

impl VerticalDb {
    /// Builds the layout in one scan of `db`, in tid order (columns come
    /// out sorted for free).
    pub fn from_db(db: &TransactionDb) -> Self {
        // `should_stop` never fires, so the build cannot return `None`.
        match Self::from_db_interruptible(db, usize::MAX, || false) {
            Some(v) => v,
            None => VerticalDb {
                n_rows: db.len(),
                columns: Vec::new(),
            },
        }
    }

    /// Builds the layout, polling `should_stop` every `poll_stride`
    /// transactions; returns `None` if a poll asked to stop. This is the
    /// governed entry point: miners pass a guard poll without this crate
    /// needing to know about guards.
    pub fn from_db_interruptible(
        db: &TransactionDb,
        poll_stride: usize,
        mut should_stop: impl FnMut() -> bool,
    ) -> Option<Self> {
        let n_rows = db.len();
        let mut tid_lists: Vec<Vec<u32>> = vec![Vec::new(); db.n_items() as usize];
        let stride = poll_stride.max(1);
        for (t, txn) in db.iter().enumerate() {
            if t % stride == 0 && should_stop() {
                return None;
            }
            for &item in txn {
                tid_lists[item as usize].push(t as u32);
            }
        }
        let columns = tid_lists
            .into_iter()
            .map(|tids| TidSet::from_tids(tids, n_rows))
            .collect();
        Some(VerticalDb { n_rows, columns })
    }

    /// Number of transactions (rows) in the source database.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of item columns.
    pub fn n_items(&self) -> usize {
        self.columns.len()
    }

    /// The tid column of `item`.
    pub fn column(&self, item: u32) -> &TidSet {
        &self.columns[item as usize]
    }

    /// Iterates `(item, column)` pairs in item order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &TidSet)> {
        self.columns.iter().enumerate().map(|(i, c)| (i as u32, c))
    }

    /// Support count of a single item straight from its column length.
    pub fn support(&self, item: u32) -> usize {
        self.columns.get(item as usize).map_or(0, TidSet::support)
    }
}

impl HeapSize for VerticalDb {
    fn heap_bytes(&self) -> usize {
        self.columns.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn columns_match_supports() {
        let v = VerticalDb::from_db(&db());
        assert_eq!(v.n_rows(), 4);
        assert_eq!(v.support(3), 3);
        assert_eq!(v.support(0), 0);
        assert_eq!(v.column(1).iter_tids(), vec![0, 2]);
        assert_eq!(v.column(5).iter_tids(), vec![1, 2, 3]);
    }

    #[test]
    fn density_cutover_picks_the_smaller_form() {
        // 4 rows: any column with >0 tids satisfies len*16 > 4 → dense.
        let v = VerticalDb::from_db(&db());
        assert!(v.column(3).is_dense());
        // 1000 rows, 10 tids: 10*16 <= 1000 → sparse.
        let sparse = TidSet::from_tids((0..10).map(|i| i * 97).collect(), 1000);
        assert!(!sparse.is_dense());
        // 1000 rows, 100 tids: 100*16 > 1000 → dense.
        let dense = TidSet::from_tids((0..100).map(|i| i * 9).collect(), 1000);
        assert!(dense.is_dense());
        assert_eq!(dense.support(), 100);
    }

    #[test]
    fn intersect_count_agrees_across_representations() {
        let n = 1024usize;
        let a_tids: Vec<u32> = (0..n as u32).filter(|t| t % 3 == 0).collect();
        let b_tids: Vec<u32> = (0..n as u32).filter(|t| t % 5 == 0).collect();
        let expected = (0..n as u32).filter(|t| t % 15 == 0).count();

        let a_sparse = TidSet::Tids(a_tids.clone());
        let b_sparse = TidSet::Tids(b_tids.clone());
        // Dense under the real cutover: ~341 and ~205 tids over 1024 rows.
        let a_dense = TidSet::from_tids(a_tids, n);
        let b_dense = TidSet::from_tids(b_tids, n);
        assert!(a_dense.is_dense() && b_dense.is_dense());

        for (x, y) in [
            (&a_sparse, &b_sparse),
            (&a_dense, &b_dense),
            (&a_sparse, &b_dense),
            (&a_dense, &b_sparse),
        ] {
            assert_eq!(x.intersect_count(y), expected);
            assert_eq!(x.intersect(y, n).support(), expected);
            assert_eq!(
                x.intersect(y, n).iter_tids(),
                (0..n as u32).filter(|t| t % 15 == 0).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn galloping_handles_skewed_sizes_and_empties() {
        let small: Vec<u32> = vec![5, 500, 999];
        let big: Vec<u32> = (0..1000).collect();
        assert_eq!(galloping_intersect_count(&small, &big), 3);
        assert_eq!(galloping_intersect(&small, &big), small);
        assert_eq!(galloping_intersect_count(&[], &big), 0);
        assert_eq!(galloping_intersect_count(&small, &[]), 0);
        let disjoint: Vec<u32> = vec![1000, 2000];
        assert_eq!(galloping_intersect_count(&disjoint, &big), 0);
    }

    #[test]
    fn ranged_word_counts_sum_to_the_whole() {
        let n = 4096usize;
        let a = TidSet::from_tids((0..n as u32).filter(|t| t % 2 == 0).collect(), n);
        let b = TidSet::from_tids((0..n as u32).filter(|t| t % 7 == 0).collect(), n);
        let (aw, bw) = (a.as_words().unwrap(), b.as_words().unwrap());
        let whole = count_and_words(aw, bw, 0..aw.len());
        let split: usize = (0..aw.len())
            .step_by(13)
            .map(|lo| count_and_words(aw, bw, lo..(lo + 13).min(aw.len())))
            .sum();
        assert_eq!(whole, split);
        assert_eq!(whole, a.intersect_count(&b));
    }

    #[test]
    fn interruptible_build_stops_on_poll() {
        let d = db();
        let mut polls = 0;
        let out = VerticalDb::from_db_interruptible(&d, 1, || {
            polls += 1;
            polls > 2
        });
        assert!(out.is_none());
        assert!(VerticalDb::from_db_interruptible(&d, 1, || false).is_some());
    }

    #[test]
    fn heap_bytes_are_nonzero_and_capacity_based() {
        let v = VerticalDb::from_db(&db());
        assert!(v.heap_bytes() > 0);
        let empty = TidSet::empty();
        assert_eq!(empty.heap_bytes(), 0);
        assert_eq!(empty.support(), 0);
        assert!(!empty.contains(0));
    }

    #[test]
    fn contains_probes_both_forms() {
        let sparse = TidSet::Tids(vec![2, 40, 77]);
        assert!(sparse.contains(40) && !sparse.contains(41));
        let dense = TidSet::from_tids((0..78).step_by(2).collect(), 78);
        assert!(dense.is_dense());
        assert!(dense.contains(76) && !dense.contains(77) && !dense.contains(10_000));
    }
}
