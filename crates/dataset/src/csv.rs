//! Minimal CSV reader/writer with type inference.
//!
//! The dialect: comma separator, `"`-quoted fields with `""` escapes, one
//! header line, `?` or the empty string as the missing marker. This covers
//! the classic UCI-style datasets the 1996-era tools consumed; it is not a
//! general RFC-4180 implementation (no embedded newlines inside quotes).

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::DataError;
use std::io::{BufRead, BufWriter, Write};

/// Splits one CSV line into fields, honouring quotes.
fn split_line(line: &str, lineno: usize) -> Result<Vec<String>, DataError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: lineno,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

fn is_missing(field: &str) -> bool {
    let t = field.trim();
    t.is_empty() || t == "?"
}

/// Reads a CSV document (header + rows) into a [`Dataset`], inferring each
/// column as numeric when every non-missing field parses as `f64`, and
/// categorical otherwise.
pub fn read_csv<R: BufRead>(name: &str, reader: R) -> Result<Dataset, DataError> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, l)) => split_line(&l?, 1)?,
        None => return Err(DataError::Empty("csv document")),
    };
    let n_cols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (i, line) in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line, i + 1)?;
        if fields.len() != n_cols {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!("expected {n_cols} fields, got {}", fields.len()),
            });
        }
        for (c, f) in cells.iter_mut().zip(fields) {
            c.push(f);
        }
    }

    let mut columns = Vec::with_capacity(n_cols);
    for (hname, col_cells) in header.into_iter().zip(cells) {
        // Parse the column as f64 up front; a single unparsable field
        // demotes it to categorical.
        let mut parsed: Vec<Option<f64>> = Vec::with_capacity(col_cells.len());
        let mut all_numeric = true;
        for f in &col_cells {
            if is_missing(f) {
                parsed.push(None);
                continue;
            }
            match f.trim().parse::<f64>() {
                Ok(v) => parsed.push(Some(v)),
                Err(_) => {
                    all_numeric = false;
                    break;
                }
            }
        }
        let has_values = col_cells.iter().any(|f| !is_missing(f));
        let col = if all_numeric && has_values {
            // `NaN`, `inf`, and overflowing literals like `1e999` parse
            // as f64 but have no place in a numeric column: NaN would be
            // silently conflated with the `?` missing marker and ±inf
            // poisons downstream arithmetic. Reject with a typed error.
            if let Some(row) = parsed
                .iter()
                .position(|v| v.is_some_and(|v| !v.is_finite()))
            {
                return Err(DataError::NonFinite {
                    location: format!("column `{hname}` row {row}"),
                    value: parsed[row].unwrap_or(f64::NAN).to_string(),
                });
            }
            Column::from_numeric_opt(parsed)
        } else {
            Column::from_strings_opt(col_cells.iter().map(|f| {
                if is_missing(f) {
                    None
                } else {
                    Some(f.trim())
                }
            }))
        };
        columns.push((hname, col));
    }
    Dataset::from_columns(name, columns)
}

/// Quotes a field when necessary.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Writes a [`Dataset`] as CSV (header + rows; missing cells become `?`).
pub fn write_csv<W: Write>(ds: &Dataset, writer: W) -> Result<(), DataError> {
    let mut out = BufWriter::new(writer);
    let header: Vec<String> = ds.attrs().iter().map(|a| quote(a.name())).collect();
    writeln!(out, "{}", header.join(","))?;
    for i in 0..ds.n_rows() {
        let mut fields = Vec::with_capacity(ds.n_cols());
        for j in 0..ds.n_cols() {
            let field = match ds.value(i, j) {
                crate::Value::Num(x) => x.to_string(),
                // `Cat` values always come from categorical columns with
                // in-range codes; fall back to the missing marker rather
                // than panicking if that invariant ever breaks.
                crate::Value::Cat(c) => match ds.column(j).as_categorical() {
                    Some((_, dict)) => match dict.name(c) {
                        Some(s) => quote(s),
                        None => "?".to_owned(),
                    },
                    None => "?".to_owned(),
                },
                crate::Value::Missing => "?".to_owned(),
            };
            fields.push(field);
        }
        writeln!(out, "{}", fields.join(","))?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn infers_types_and_missing() {
        let doc = "age,city\n30,ny\n?,sf\n45,?\n";
        let ds = read_csv("t", doc.as_bytes()).unwrap();
        assert_eq!(ds.n_rows(), 3);
        assert!(ds.attr(0).is_numeric());
        assert!(ds.attr(1).is_categorical());
        assert_eq!(ds.value(0, 0), Value::Num(30.0));
        assert_eq!(ds.value(1, 0), Value::Missing);
        assert_eq!(ds.value(2, 1), Value::Missing);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let doc = "name,score\n\"Smith, John\",1\n\"say \"\"hi\"\"\",2\n";
        let ds = read_csv("t", doc.as_bytes()).unwrap();
        let (_, dict) = ds.column(0).as_categorical().unwrap();
        assert_eq!(dict.name(0), Some("Smith, John"));
        assert_eq!(dict.name(1), Some("say \"hi\""));
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let doc = "a,b\n1,2\n3\n";
        let err = read_csv("t", doc.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 3, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let doc = "a\n\"oops\n";
        assert!(read_csv("t", doc.as_bytes()).is_err());
    }

    #[test]
    fn empty_document_rejected() {
        assert!(read_csv("t", "".as_bytes()).is_err());
    }

    #[test]
    fn all_missing_column_is_categorical() {
        let doc = "a,b\n1,?\n2,?\n";
        let ds = read_csv("t", doc.as_bytes()).unwrap();
        assert!(ds.attr(1).is_categorical());
        assert_eq!(ds.column(1).n_missing(), 2);
    }

    #[test]
    fn non_finite_numeric_fields_are_typed_errors() {
        for bad in ["NaN", "nan", "inf", "-inf", "1e999"] {
            let doc = format!("a\n1\n{bad}\n");
            let err = read_csv("t", doc.as_bytes()).unwrap_err();
            assert!(matches!(err, DataError::NonFinite { .. }), "{bad}: {err:?}");
        }
        // In a categorical column the same tokens are ordinary strings.
        let doc = "a\nhello\nNaN\n";
        let ds = read_csv("t", doc.as_bytes()).unwrap();
        assert!(ds.attr(0).is_categorical());
        assert_eq!(ds.n_rows(), 2);
    }

    #[test]
    fn roundtrip() {
        let doc = "age,city\n30,ny\n?,\"sf, ca\"\n45,?\n";
        let ds = read_csv("t", doc.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv("t", &buf[..]).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn blank_lines_skipped() {
        let doc = "a\n1\n\n2\n";
        let ds = read_csv("t", doc.as_bytes()).unwrap();
        assert_eq!(ds.n_rows(), 2);
    }
}
