//! Feature scaling for numeric matrices.
//!
//! Distance-based algorithms (k-means, k-NN) are sensitive to feature
//! scale, so min-max and z-score scalers are part of the substrate. Both
//! follow a fit/transform protocol: statistics are learned on training
//! data and applied unchanged to held-out data.

use crate::error::DataError;
use crate::matrix::Matrix;

/// A scaling scheme that learns per-column statistics.
pub trait Scaler {
    /// Learns statistics from the columns of `m`.
    fn fit(&self, m: &Matrix) -> Result<FittedScaler, DataError>;
}

/// Per-column affine transform `x -> (x - shift) / scale` learned by a
/// [`Scaler`].
#[derive(Debug, Clone, PartialEq)]
pub struct FittedScaler {
    shift: Vec<f64>,
    scale: Vec<f64>,
}

impl FittedScaler {
    /// Applies the transform, returning a new matrix.
    ///
    /// Fails when the column count differs from the fitted one.
    pub fn transform(&self, m: &Matrix) -> Result<Matrix, DataError> {
        if m.cols() != self.shift.len() {
            return Err(DataError::InvalidParameter(format!(
                "scaler fitted on {} columns applied to {}",
                self.shift.len(),
                m.cols()
            )));
        }
        let mut out = m.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                *x = (*x - self.shift[j]) / self.scale[j];
            }
        }
        Ok(out)
    }

    /// Inverts the transform (`x -> x * scale + shift`).
    pub fn inverse_transform(&self, m: &Matrix) -> Result<Matrix, DataError> {
        if m.cols() != self.shift.len() {
            return Err(DataError::InvalidParameter(format!(
                "scaler fitted on {} columns applied to {}",
                self.shift.len(),
                m.cols()
            )));
        }
        let mut out = m.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                *x = *x * self.scale[j] + self.shift[j];
            }
        }
        Ok(out)
    }
}

/// Scales each column to `[0, 1]` over the training range. Constant
/// columns map to 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMaxScaler;

impl Scaler for MinMaxScaler {
    fn fit(&self, m: &Matrix) -> Result<FittedScaler, DataError> {
        if m.rows() == 0 {
            return Err(DataError::Empty("matrix"));
        }
        let cols = m.cols();
        let mut lo = vec![f64::INFINITY; cols];
        let mut hi = vec![f64::NEG_INFINITY; cols];
        for r in m.iter_rows() {
            for j in 0..cols {
                lo[j] = lo[j].min(r[j]);
                hi[j] = hi[j].max(r[j]);
            }
        }
        let scale = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { h - l } else { 1.0 })
            .collect();
        Ok(FittedScaler { shift: lo, scale })
    }
}

/// Standardizes each column to zero mean and unit (population) standard
/// deviation. Constant columns map to 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardScaler;

impl Scaler for StandardScaler {
    fn fit(&self, m: &Matrix) -> Result<FittedScaler, DataError> {
        if m.rows() == 0 {
            return Err(DataError::Empty("matrix"));
        }
        let cols = m.cols();
        let means = m.col_means();
        let mut var = vec![0.0f64; cols];
        for r in m.iter_rows() {
            for j in 0..cols {
                let d = r[j] - means[j];
                var[j] += d * d;
            }
        }
        let n = m.rows() as f64;
        let scale = var
            .iter()
            .map(|&v| {
                let sd = (v / n).sqrt();
                if sd > 0.0 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Ok(FittedScaler {
            shift: means,
            scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 10.0], vec![5.0, 10.0], vec![10.0, 10.0]]).unwrap()
    }

    #[test]
    fn min_max_scales_to_unit_interval() {
        let f = MinMaxScaler.fit(&m()).unwrap();
        let t = f.transform(&m()).unwrap();
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[0.5, 0.0]);
        assert_eq!(t.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let f = StandardScaler.fit(&m()).unwrap();
        let t = f.transform(&m()).unwrap();
        let mean0: f64 = (0..3).map(|i| t.get(i, 0)).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        let var0: f64 = (0..3).map(|i| t.get(i, 0).powi(2)).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-12);
        // Constant column untouched (maps to zero, scale 1).
        assert_eq!(t.get(0, 1), 0.0);
    }

    #[test]
    fn transform_validates_width() {
        let f = MinMaxScaler.fit(&m()).unwrap();
        let narrow = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(f.transform(&narrow).is_err());
        assert!(f.inverse_transform(&narrow).is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let f = StandardScaler.fit(&m()).unwrap();
        let t = f.transform(&m()).unwrap();
        let back = f.inverse_transform(&t).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert!((back.get(i, j) - m().get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        let e = Matrix::from_rows(&[]).unwrap();
        assert!(MinMaxScaler.fit(&e).is_err());
        assert!(StandardScaler.fit(&e).is_err());
    }

    #[test]
    fn heldout_data_uses_training_stats() {
        let f = MinMaxScaler.fit(&m()).unwrap();
        let test = Matrix::from_rows(&[vec![20.0, 10.0]]).unwrap();
        let t = f.transform(&test).unwrap();
        assert_eq!(t.row(0), &[2.0, 0.0]); // extrapolates beyond [0,1]
    }
}
