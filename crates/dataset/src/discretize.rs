//! Discretization of numeric columns into categorical bins.
//!
//! Discretization was a core preprocessing step for the 1996-era miners
//! (ID3-style trees and Apriori over quantitative attributes both need
//! it). Two classic unsupervised schemes are provided: equal-width and
//! equal-frequency binning.

use crate::column::Column;
use crate::dict::Dict;
use crate::error::DataError;
use crate::MISSING_CODE;

/// A discretization scheme that learns cut points from data.
pub trait Discretizer {
    /// Learns cut points from the non-missing values of `values`.
    fn fit(&self, values: &[f64]) -> Result<FittedDiscretizer, DataError>;
}

/// Cut points learned by a [`Discretizer`]; maps values to bin codes.
///
/// A value `x` falls in bin `i` where `i` is the number of cut points
/// `<= x` (so cuts are right-exclusive: bin 0 is `(-inf, c0)`, bin 1 is
/// `[c0, c1)`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct FittedDiscretizer {
    cuts: Vec<f64>,
    n_bins: usize,
}

impl FittedDiscretizer {
    /// Builds directly from strictly increasing cut points.
    pub fn from_cuts(cuts: Vec<f64>) -> Result<Self, DataError> {
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DataError::InvalidParameter(
                "cut points must be strictly increasing".into(),
            ));
        }
        let n_bins = cuts.len() + 1;
        Ok(Self { cuts, n_bins })
    }

    /// The learned cut points.
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Number of bins (`cuts.len() + 1`).
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Maps one value to its bin code (`None` for NaN).
    pub fn bin(&self, x: f64) -> Option<u32> {
        if x.is_nan() {
            return None;
        }
        Some(self.cuts.partition_point(|&c| c <= x) as u32)
    }

    /// Discretizes a numeric column into a categorical one with bin-name
    /// categories `bin0..binK` (missing stays missing).
    pub fn transform_column(&self, values: &[f64]) -> Column {
        let mut dict = Dict::new();
        for b in 0..self.n_bins {
            dict.intern(&self.bin_name(b));
        }
        let codes = values
            .iter()
            .map(|&x| self.bin(x).unwrap_or(MISSING_CODE))
            .collect();
        Column::from_codes(codes, dict)
    }

    /// Human-readable interval label for bin `b`.
    pub fn bin_name(&self, b: usize) -> String {
        let lo = if b == 0 {
            "-inf".to_owned()
        } else {
            format!("{:.4}", self.cuts[b - 1])
        };
        let hi = if b == self.cuts.len() {
            "+inf".to_owned()
        } else {
            format!("{:.4}", self.cuts[b])
        };
        format!("[{lo}, {hi})")
    }
}

/// Equal-width binning: the observed `[min, max]` range is divided into
/// `bins` intervals of equal length.
#[derive(Debug, Clone, Copy)]
pub struct EqualWidth {
    /// Number of bins; must be ≥ 1.
    pub bins: usize,
}

impl Discretizer for EqualWidth {
    fn fit(&self, values: &[f64]) -> Result<FittedDiscretizer, DataError> {
        if self.bins == 0 {
            return Err(DataError::InvalidParameter("bins must be >= 1".into()));
        }
        let mut it = values.iter().copied().filter(|x| !x.is_nan());
        let first = it.next().ok_or(DataError::Empty("numeric column"))?;
        let (mut lo, mut hi) = (first, first);
        for x in it {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo == hi || self.bins == 1 {
            // Degenerate range: a single bin.
            return FittedDiscretizer::from_cuts(Vec::new());
        }
        let width = (hi - lo) / self.bins as f64;
        let cuts = (1..self.bins).map(|i| lo + width * i as f64).collect();
        FittedDiscretizer::from_cuts(cuts)
    }
}

/// Equal-frequency binning: cut points are placed at sample quantiles so
/// each bin receives roughly the same number of training values.
#[derive(Debug, Clone, Copy)]
pub struct EqualFrequency {
    /// Number of bins; must be ≥ 1.
    pub bins: usize,
}

impl Discretizer for EqualFrequency {
    fn fit(&self, values: &[f64]) -> Result<FittedDiscretizer, DataError> {
        if self.bins == 0 {
            return Err(DataError::InvalidParameter("bins must be >= 1".into()));
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
        if sorted.is_empty() {
            return Err(DataError::Empty("numeric column"));
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut cuts = Vec::new();
        for b in 1..self.bins {
            let pos = (b * n) / self.bins;
            if pos == 0 || pos >= n {
                continue;
            }
            let c = sorted[pos];
            // Skip duplicate cut points produced by heavy ties.
            if cuts.last().is_none_or(|&last| c > last) && c > sorted[0] {
                cuts.push(c);
            }
        }
        FittedDiscretizer::from_cuts(cuts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_cuts() {
        let f = EqualWidth { bins: 4 }.fit(&[0.0, 10.0]).unwrap();
        assert_eq!(f.cuts(), &[2.5, 5.0, 7.5]);
        assert_eq!(f.n_bins(), 4);
        assert_eq!(f.bin(0.0), Some(0));
        assert_eq!(f.bin(2.5), Some(1)); // right-exclusive
        assert_eq!(f.bin(9.9), Some(3));
        assert_eq!(f.bin(10.0), Some(3));
        assert_eq!(f.bin(-5.0), Some(0)); // out-of-range clamps naturally
        assert_eq!(f.bin(99.0), Some(3));
        assert_eq!(f.bin(f64::NAN), None);
    }

    #[test]
    fn equal_width_constant_column_single_bin() {
        let f = EqualWidth { bins: 5 }.fit(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(f.n_bins(), 1);
        assert_eq!(f.bin(3.0), Some(0));
    }

    #[test]
    fn equal_width_rejects_zero_bins_and_empty() {
        assert!(EqualWidth { bins: 0 }.fit(&[1.0]).is_err());
        assert!(EqualWidth { bins: 3 }.fit(&[f64::NAN]).is_err());
    }

    #[test]
    fn equal_frequency_balances_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let f = EqualFrequency { bins: 4 }.fit(&values).unwrap();
        let mut counts = vec![0usize; f.n_bins()];
        for &v in &values {
            counts[f.bin(v).unwrap() as usize] += 1;
        }
        assert_eq!(counts, vec![25, 25, 25, 25]);
    }

    #[test]
    fn equal_frequency_handles_ties() {
        // Heavy ties: only one meaningful cut survives.
        let values = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let f = EqualFrequency { bins: 4 }.fit(&values).unwrap();
        assert!(f.n_bins() <= 2);
        assert!(f.bin(1.0).unwrap() < f.bin(2.0).unwrap() || f.n_bins() == 1);
    }

    #[test]
    fn transform_column_maps_missing() {
        let f = EqualWidth { bins: 2 }.fit(&[0.0, 10.0]).unwrap();
        let col = f.transform_column(&[1.0, f64::NAN, 9.0]);
        assert!(col.is_categorical());
        assert_eq!(col.n_missing(), 1);
        let (codes, dict) = col.as_categorical().unwrap();
        assert_eq!(codes[0], 0);
        assert_eq!(codes[2], 1);
        assert_eq!(dict.len(), 2);
        assert!(dict.name(0).unwrap().starts_with("[-inf"));
    }

    #[test]
    fn from_cuts_rejects_non_increasing() {
        assert!(FittedDiscretizer::from_cuts(vec![1.0, 1.0]).is_err());
        assert!(FittedDiscretizer::from_cuts(vec![2.0, 1.0]).is_err());
    }

    #[test]
    fn monotonic_binning_property() {
        let f = EqualWidth { bins: 7 }.fit(&[-3.0, 12.0]).unwrap();
        let xs: Vec<f64> = (-30..=120).map(|i| i as f64 / 10.0).collect();
        let bins: Vec<u32> = xs.iter().map(|&x| f.bin(x).unwrap()).collect();
        assert!(bins.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bins.last().unwrap() as usize, f.n_bins() - 1);
    }
}
