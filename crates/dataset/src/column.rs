//! Column storage: typed vectors with first-class missing values.

use crate::dict::Dict;
use crate::value::Value;
use crate::MISSING_CODE;

/// A single typed column of a [`crate::Dataset`].
///
/// * Numeric columns store `f64`, with `NaN` encoding a missing cell.
/// * Categorical columns store interned `u32` codes (resolvable through
///   the embedded [`Dict`]), with [`MISSING_CODE`] encoding a missing cell.
#[derive(Debug, Clone)]
pub enum Column {
    /// Continuous values; `NaN` means missing.
    Numeric(Vec<f64>),
    /// Interned categories; [`MISSING_CODE`] means missing.
    Categorical {
        /// Per-row category codes.
        codes: Vec<u32>,
        /// Code ↔ name dictionary.
        dict: Dict,
    },
}

impl PartialEq for Column {
    /// Equality with missing-aware semantics: two missing numeric cells
    /// (`NaN`) compare equal, unlike raw `f64` comparison.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Column::Numeric(a), Column::Numeric(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| x == y || (x.is_nan() && y.is_nan()))
            }
            (
                Column::Categorical {
                    codes: ca,
                    dict: da,
                },
                Column::Categorical {
                    codes: cb,
                    dict: db,
                },
            ) => ca == cb && da == db,
            _ => false,
        }
    }
}

impl Column {
    /// Builds a numeric column from raw values (`NaN` allowed for missing).
    pub fn from_numeric(values: Vec<f64>) -> Self {
        Column::Numeric(values)
    }

    /// Builds a numeric column where `None` marks missing cells.
    pub fn from_numeric_opt(values: impl IntoIterator<Item = Option<f64>>) -> Self {
        Column::Numeric(values.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect())
    }

    /// Builds a categorical column by interning string values.
    pub fn from_strings<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict = Dict::new();
        let codes = values
            .into_iter()
            .map(|s| dict.intern(s.as_ref()))
            .collect();
        Column::Categorical { codes, dict }
    }

    /// Builds a categorical column by interning string values, with `None`
    /// marking missing cells.
    pub fn from_strings_opt<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        let mut dict = Dict::new();
        let codes = values
            .into_iter()
            .map(|s| match s {
                Some(s) => dict.intern(s.as_ref()),
                None => MISSING_CODE,
            })
            .collect();
        Column::Categorical { codes, dict }
    }

    /// Builds a categorical column directly from codes and a dictionary.
    ///
    /// Callers must ensure every non-missing code is in range for `dict`.
    pub fn from_codes(codes: Vec<u32>, dict: Dict) -> Self {
        debug_assert!(codes
            .iter()
            .all(|&c| c == MISSING_CODE || (c as usize) < dict.len()));
        Column::Categorical { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`, or `None` if out of range.
    pub fn get(&self, row: usize) -> Option<Value> {
        match self {
            Column::Numeric(v) => v.get(row).map(|&x| {
                if x.is_nan() {
                    Value::Missing
                } else {
                    Value::Num(x)
                }
            }),
            Column::Categorical { codes, .. } => codes.get(row).map(|&c| {
                if c == MISSING_CODE {
                    Value::Missing
                } else {
                    Value::Cat(c)
                }
            }),
        }
    }

    /// Whether this is a numeric column.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Column::Numeric(_))
    }

    /// Whether this is a categorical column.
    pub fn is_categorical(&self) -> bool {
        matches!(self, Column::Categorical { .. })
    }

    /// The raw numeric slice, if numeric.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            _ => None,
        }
    }

    /// The raw codes and dictionary, if categorical.
    pub fn as_categorical(&self) -> Option<(&[u32], &Dict)> {
        match self {
            Column::Categorical { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Number of distinct categories (0 for numeric columns).
    pub fn n_categories(&self) -> usize {
        match self {
            Column::Numeric(_) => 0,
            Column::Categorical { dict, .. } => dict.len(),
        }
    }

    /// Count of missing cells.
    pub fn n_missing(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Categorical { codes, .. } => {
                codes.iter().filter(|&&c| c == MISSING_CODE).count()
            }
        }
    }

    /// A new column containing only the rows at `indices` (in order).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, dict } => Column::Categorical {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
            },
        }
    }

    /// Mean of the non-missing numeric values, or `None` for categorical or
    /// all-missing columns.
    pub fn mean(&self) -> Option<f64> {
        let v = self.as_numeric()?;
        let mut sum = 0.0;
        let mut n = 0usize;
        for &x in v {
            if !x.is_nan() {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Minimum and maximum over non-missing numeric values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let v = self.as_numeric()?;
        let mut it = v.iter().copied().filter(|x| !x.is_nan());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for x in it {
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_column_basics() {
        let c = Column::from_numeric(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.len(), 3);
        assert!(c.is_numeric());
        assert_eq!(c.get(0), Some(Value::Num(1.0)));
        assert_eq!(c.get(1), Some(Value::Missing));
        assert_eq!(c.get(3), None);
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.min_max(), Some((1.0, 3.0)));
    }

    #[test]
    fn numeric_from_options() {
        let c = Column::from_numeric_opt([Some(1.0), None, Some(2.0)]);
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.get(1), Some(Value::Missing));
    }

    #[test]
    fn categorical_column_basics() {
        let c = Column::from_strings(["red", "blue", "red"]);
        assert!(c.is_categorical());
        assert_eq!(c.n_categories(), 2);
        assert_eq!(c.get(0), Some(Value::Cat(0)));
        assert_eq!(c.get(2), Some(Value::Cat(0)));
        let (codes, dict) = c.as_categorical().unwrap();
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.name(1), Some("blue"));
    }

    #[test]
    fn categorical_with_missing() {
        let c = Column::from_strings_opt([Some("a"), None, Some("b")]);
        assert_eq!(c.n_missing(), 1);
        assert_eq!(c.get(1), Some(Value::Missing));
        assert_eq!(c.n_categories(), 2);
    }

    #[test]
    fn select_preserves_dictionary() {
        let c = Column::from_strings(["a", "b", "c", "a"]);
        let s = c.select(&[3, 1]);
        let (codes, dict) = s.as_categorical().unwrap();
        assert_eq!(codes, &[0, 1]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.name(0), Some("a"));
    }

    #[test]
    fn mean_all_missing_is_none() {
        let c = Column::from_numeric(vec![f64::NAN, f64::NAN]);
        assert_eq!(c.mean(), None);
        assert_eq!(c.min_max(), None);
    }

    #[test]
    fn mean_of_categorical_is_none() {
        let c = Column::from_strings(["a"]);
        assert_eq!(c.mean(), None);
    }
}
