//! A single cell of a dataset.

use std::fmt;

/// A single value held by a dataset cell.
///
/// Numeric columns yield [`Value::Num`], categorical columns yield
/// [`Value::Cat`] (an interned code resolvable through the column's
/// [`crate::Dict`]), and missing cells of either kind yield
/// [`Value::Missing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A numeric (floating point) value. Never NaN — NaN cells are
    /// surfaced as [`Value::Missing`].
    Num(f64),
    /// An interned categorical code.
    Cat(u32),
    /// A missing cell.
    Missing,
}

impl Value {
    /// Returns the numeric payload, if this is a [`Value::Num`].
    pub fn as_num(self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(x),
            _ => None,
        }
    }

    /// Returns the categorical code, if this is a [`Value::Cat`].
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(c),
            _ => None,
        }
    }

    /// Whether this cell is missing.
    pub fn is_missing(self) -> bool {
        matches!(self, Value::Missing)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Missing => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Num(2.5).as_num(), Some(2.5));
        assert_eq!(Value::Num(2.5).as_cat(), None);
        assert_eq!(Value::Cat(3).as_cat(), Some(3));
        assert_eq!(Value::Cat(3).as_num(), None);
        assert!(Value::Missing.is_missing());
        assert!(!Value::Num(0.0).is_missing());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Cat(7).to_string(), "#7");
        assert_eq!(Value::Missing.to_string(), "?");
    }
}
