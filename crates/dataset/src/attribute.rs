//! Attribute (column) metadata.

use std::fmt;

/// The kind of values an attribute holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Continuous floating-point values.
    Numeric,
    /// Discrete interned categories.
    Categorical,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKind::Numeric => write!(f, "numeric"),
            AttrKind::Categorical => write!(f, "categorical"),
        }
    }
}

/// Metadata describing one dataset column: its name and kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, kind: AttrKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Shorthand for a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Numeric)
    }

    /// Shorthand for a categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Categorical)
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's kind.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }

    /// Whether the attribute is numeric.
    pub fn is_numeric(&self) -> bool {
        self.kind == AttrKind::Numeric
    }

    /// Whether the attribute is categorical.
    pub fn is_categorical(&self) -> bool {
        self.kind == AttrKind::Categorical
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let a = Attribute::numeric("age");
        assert_eq!(a.name(), "age");
        assert_eq!(a.kind(), AttrKind::Numeric);
        assert!(a.is_numeric());
        assert!(!a.is_categorical());

        let b = Attribute::categorical("city");
        assert!(b.is_categorical());
        assert_eq!(b.to_string(), "city (categorical)");
    }
}
