//! Train/test and cross-validation index splitting.
//!
//! All splitters operate on *row indices* so they compose with any of
//! [`crate::Dataset::select_rows`], [`crate::Labels::select`] or
//! [`crate::Matrix::select_rows`].

use crate::error::DataError;
use rand::seq::SliceRandom;
use rand::Rng;

/// The `(train, test)` index pairs produced by a cross-validation
/// splitter, one per fold.
pub type Folds = Vec<(Vec<usize>, Vec<usize>)>;

/// Randomly splits `n` rows into `(train, test)` index sets, with
/// `test_fraction` of rows (rounded) in the test set.
pub fn train_test_split<R: Rng>(
    n: usize,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Vec<usize>, Vec<usize>), DataError> {
    if !(0.0..=1.0).contains(&test_fraction) {
        return Err(DataError::InvalidParameter(format!(
            "test_fraction {test_fraction} not in [0, 1]"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = (n as f64 * test_fraction).round() as usize;
    let test = idx.split_off(n - n_test.min(n));
    Ok((idx, test))
}

/// Draws a bootstrap sample of `n` indices (with replacement) from `0..n`.
pub fn bootstrap_sample<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Plain k-fold cross-validation splitter.
///
/// Folds are contiguous over a (optionally shuffled) permutation of the
/// rows, with the first `n % k` folds one element larger, so every row
/// appears in exactly one test fold.
#[derive(Debug, Clone)]
pub struct KFold {
    k: usize,
    shuffle_seed: Option<u64>,
}

impl KFold {
    /// Creates a k-fold splitter; `k >= 2`.
    pub fn new(k: usize) -> Result<Self, DataError> {
        if k < 2 {
            return Err(DataError::InvalidParameter(format!(
                "k-fold needs k >= 2, got {k}"
            )));
        }
        Ok(Self {
            k,
            shuffle_seed: None,
        })
    }

    /// Shuffles rows with the given seed before folding.
    pub fn shuffled(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Produces the `(train, test)` index pairs for `n` rows.
    pub fn split(&self, n: usize) -> Result<Folds, DataError> {
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot split {n} rows into {} folds",
                self.k
            )));
        }
        let mut order: Vec<usize> = (0..n).collect();
        if let Some(seed) = self.shuffle_seed {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let base = n / self.k;
        let extra = n % self.k;
        let mut out = Vec::with_capacity(self.k);
        let mut start = 0usize;
        for f in 0..self.k {
            let len = base + usize::from(f < extra);
            let test: Vec<usize> = order[start..start + len].to_vec();
            let train: Vec<usize> = order[..start]
                .iter()
                .chain(&order[start + len..])
                .copied()
                .collect();
            out.push((train, test));
            start += len;
        }
        Ok(out)
    }
}

/// Stratified k-fold: each fold's class proportions approximate the
/// overall proportions. Rows of each class are dealt round-robin (after an
/// optional shuffle) across folds.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    k: usize,
    shuffle_seed: Option<u64>,
}

impl StratifiedKFold {
    /// Creates a stratified splitter; `k >= 2`.
    pub fn new(k: usize) -> Result<Self, DataError> {
        if k < 2 {
            return Err(DataError::InvalidParameter(format!(
                "stratified k-fold needs k >= 2, got {k}"
            )));
        }
        Ok(Self {
            k,
            shuffle_seed: None,
        })
    }

    /// Shuffles within each class with the given seed before dealing.
    pub fn shuffled(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Produces `(train, test)` pairs stratified by `labels`.
    pub fn split(&self, labels: &[u32]) -> Result<Folds, DataError> {
        let n = labels.len();
        if n < self.k {
            return Err(DataError::InvalidParameter(format!(
                "cannot split {n} rows into {} folds",
                self.k
            )));
        }
        // Group row indices by class.
        let n_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for (i, &c) in labels.iter().enumerate() {
            by_class[c as usize].push(i);
        }
        if let Some(seed) = self.shuffle_seed {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for g in &mut by_class {
                g.shuffle(&mut rng);
            }
        }
        // Deal each class round-robin across folds.
        let mut fold_of_row = vec![0usize; n];
        let mut next_fold = 0usize;
        for group in &by_class {
            for &row in group {
                fold_of_row[row] = next_fold;
                next_fold = (next_fold + 1) % self.k;
            }
        }
        let mut out = Vec::with_capacity(self.k);
        for f in 0..self.k {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (row, &fold) in fold_of_row.iter().enumerate() {
                if fold == f {
                    test.push(row);
                } else {
                    train.push(row);
                }
            }
            if test.is_empty() {
                return Err(DataError::InvalidParameter(format!(
                    "fold {f} is empty; too few rows for {} folds",
                    self.k
                )));
            }
            out.push((train, test));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn train_test_partitions() {
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = train_test_split(100, 0.25, &mut rng).unwrap();
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        let all: HashSet<_> = train.iter().chain(&test).collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn train_test_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = train_test_split(10, 0.0, &mut rng).unwrap();
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(10, 1.0, &mut rng).unwrap();
        assert_eq!((train.len(), test.len()), (0, 10));
        assert!(train_test_split(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn kfold_covers_every_row_exactly_once() {
        let folds = KFold::new(3).unwrap().split(10).unwrap();
        assert_eq!(folds.len(), 3);
        let mut seen = [0usize; 10];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 10);
            for &i in test {
                seen[i] += 1;
            }
            let tr: HashSet<_> = train.iter().collect();
            assert!(test.iter().all(|i| !tr.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1));
        // 10 = 3+3+4 -> sizes 4,3,3
        let sizes: Vec<_> = folds.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn kfold_shuffle_is_deterministic() {
        let a = KFold::new(4).unwrap().shuffled(42).split(20).unwrap();
        let b = KFold::new(4).unwrap().shuffled(42).split(20).unwrap();
        assert_eq!(a, b);
        let c = KFold::new(4).unwrap().shuffled(43).split(20).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kfold_rejects_bad_params() {
        assert!(KFold::new(1).is_err());
        assert!(KFold::new(5).unwrap().split(3).is_err());
    }

    #[test]
    fn stratified_preserves_class_ratio() {
        // 40 of class 0, 20 of class 1.
        let labels: Vec<u32> = (0..60).map(|i| u32::from(i >= 40)).collect();
        let folds = StratifiedKFold::new(4).unwrap().split(&labels).unwrap();
        for (_, test) in &folds {
            let ones = test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(test.len(), 15);
            assert_eq!(ones, 5);
        }
    }

    #[test]
    fn stratified_covers_all_rows() {
        let labels = vec![0u32, 1, 0, 1, 2, 2, 0, 1, 2, 0];
        let folds = StratifiedKFold::new(2)
            .unwrap()
            .shuffled(1)
            .split(&labels)
            .unwrap();
        let mut seen = vec![0usize; labels.len()];
        for (_, test) in &folds {
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn bootstrap_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = bootstrap_sample(50, &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&i| i < 50));
    }
}
