//! Interned class-label vectors used as supervised-learning targets.

use crate::dict::Dict;
use crate::error::DataError;

/// A vector of class labels, interned to dense `u32` codes.
///
/// Classifiers in this workspace exchange predictions as `Vec<u32>` of
/// codes; `Labels` pins down the code ↔ name mapping and the class count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    codes: Vec<u32>,
    dict: Dict,
}

impl Labels {
    /// Interns a sequence of string labels.
    pub fn from_strs<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict = Dict::new();
        let codes = values
            .into_iter()
            .map(|s| dict.intern(s.as_ref()))
            .collect();
        Self { codes, dict }
    }

    /// Builds labels from pre-assigned codes and a dictionary.
    ///
    /// Every code must be in range for `dict`.
    pub fn from_codes(codes: Vec<u32>, dict: Dict) -> Result<Self, DataError> {
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict.len()) {
            return Err(DataError::InvalidParameter(format!(
                "label code {bad} out of range for {} classes",
                dict.len()
            )));
        }
        Ok(Self { codes, dict })
    }

    /// The label codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The class dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Number of labelled rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether there are no labels.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct classes in the dictionary.
    pub fn n_classes(&self) -> usize {
        self.dict.len()
    }

    /// The label code at row `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// The label name at row `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        self.dict
            .name(self.codes[i])
            .unwrap_or_else(|| panic!("label code at row {i} missing from dictionary"))
    }

    /// Per-class counts, indexed by code.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &c in &self.codes {
            counts[c as usize] += 1;
        }
        counts
    }

    /// The majority class code, ties broken toward the smaller code.
    /// Returns `None` when empty.
    pub fn majority(&self) -> Option<u32> {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .map(|(i, _)| i as u32)
    }

    /// Labels restricted to the rows at `indices` (dictionary shared).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> Labels {
        Labels {
            codes: indices.iter().map(|&i| self.codes[i]).collect(),
            dict: self.dict.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_and_counts() {
        let l = Labels::from_strs(["yes", "no", "yes", "yes"]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.n_classes(), 2);
        assert_eq!(l.codes(), &[0, 1, 0, 0]);
        assert_eq!(l.class_counts(), vec![3, 1]);
        assert_eq!(l.majority(), Some(0));
        assert_eq!(l.name(1), "no");
    }

    #[test]
    fn majority_tie_prefers_smaller_code() {
        let l = Labels::from_strs(["a", "b"]);
        assert_eq!(l.majority(), Some(0));
    }

    #[test]
    fn majority_empty_is_none() {
        let l = Labels::from_strs(Vec::<&str>::new());
        assert!(l.is_empty());
        assert_eq!(l.majority(), None);
    }

    #[test]
    fn from_codes_validates_range() {
        let dict = Dict::from_names(["a", "b"]);
        assert!(Labels::from_codes(vec![0, 1, 0], dict.clone()).is_ok());
        assert!(Labels::from_codes(vec![0, 2], dict).is_err());
    }

    #[test]
    fn select_shares_dictionary() {
        let l = Labels::from_strs(["a", "b", "c"]);
        let s = l.select(&[2, 0]);
        assert_eq!(s.codes(), &[2, 0]);
        assert_eq!(s.n_classes(), 3);
    }
}
