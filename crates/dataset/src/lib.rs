//! # dm-dataset
//!
//! The data substrate of the `datamining` workspace: an in-memory tabular
//! dataset model with mixed numeric/categorical columns, transaction
//! databases for association-rule mining, CSV I/O, train/test and k-fold
//! splitting, discretization and feature scaling.
//!
//! Everything in this crate is deterministic; any operation that involves
//! randomness (shuffled splits, bootstrap sampling) takes an explicit
//! [`rand::Rng`] so callers control seeding.
//!
//! ## Core types
//!
//! * [`Dataset`] — a named collection of equal-length [`Column`]s described
//!   by [`Attribute`]s. Missing values are first-class (`NaN` for numeric
//!   columns, a sentinel code for categorical ones).
//! * [`Labels`] — an interned class-label vector used as the supervised
//!   learning target.
//! * [`Matrix`] — a dense row-major `f64` matrix, the representation used
//!   by the purely numeric algorithms (clustering, k-NN).
//! * [`TransactionDb`] — a database of sparse item-id transactions, the
//!   input to the frequent-itemset miners.
//!
//! ## Example
//!
//! ```
//! use dm_dataset::{Dataset, Column};
//!
//! let ds = Dataset::from_columns(
//!     "people",
//!     vec![
//!         ("age".into(), Column::from_numeric(vec![31.0, 45.0, 23.0])),
//!         ("city".into(), Column::from_strings(["ny", "sf", "ny"])),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(ds.n_rows(), 3);
//! assert_eq!(ds.n_cols(), 2);
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod attribute;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod dict;
pub mod discretize;
pub mod error;
pub mod labels;
pub mod matrix;
pub mod scale;
pub mod split;
pub mod transactions;
pub mod value;
pub mod vertical;

pub use attribute::{AttrKind, Attribute};
pub use column::Column;
pub use dataset::Dataset;
pub use dict::Dict;
pub use discretize::{Discretizer, EqualFrequency, EqualWidth, FittedDiscretizer};
pub use error::DataError;
pub use labels::Labels;
pub use matrix::Matrix;
pub use scale::{FittedScaler, MinMaxScaler, Scaler, StandardScaler};
pub use split::{train_test_split, KFold, StratifiedKFold};
pub use transactions::TransactionDb;
pub use value::Value;
pub use vertical::{TidSet, VerticalDb};

/// Sentinel categorical code representing a missing value.
pub const MISSING_CODE: u32 = u32::MAX;
