//! The tabular [`Dataset`] container.

use crate::attribute::{AttrKind, Attribute};
use crate::column::Column;
use crate::error::DataError;
use crate::matrix::Matrix;
use crate::value::Value;
use crate::MISSING_CODE;

/// A named, immutable-after-construction table of equal-length columns.
///
/// `Dataset` is the lingua franca of the workspace: synthesizers produce
/// one, the classifiers consume one (together with a [`crate::Labels`]
/// target), and [`Dataset::to_matrix`] bridges to the purely numeric
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    attrs: Vec<Attribute>,
    columns: Vec<Column>,
    n_rows: usize,
}

/// How categorical columns are encoded by [`Dataset::to_matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixEncoding {
    /// Categorical codes are cast to `f64` (one matrix column per
    /// dataset column). Suitable for tree-style consumers; *not* metric.
    Codes,
    /// Each categorical column expands into one indicator column per
    /// category (one-hot). Suitable for distance-based consumers.
    OneHot,
}

impl Dataset {
    /// Builds a dataset from `(name, column)` pairs.
    ///
    /// Attribute kinds are inferred from the column variants. Fails if
    /// column lengths differ or names repeat.
    pub fn from_columns(
        name: impl Into<String>,
        columns: Vec<(String, Column)>,
    ) -> Result<Self, DataError> {
        let n_rows = columns.first().map_or(0, |(_, c)| c.len());
        let mut attrs = Vec::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        let mut seen = std::collections::HashSet::new();
        for (cname, col) in columns {
            if !seen.insert(cname.clone()) {
                return Err(DataError::DuplicateColumn(cname));
            }
            if col.len() != n_rows {
                return Err(DataError::ColumnLengthMismatch {
                    column: cname,
                    len: col.len(),
                    expected: n_rows,
                });
            }
            // NaN is the documented missing-value marker for numeric
            // columns, but ±inf has no meaning here and would poison
            // means, scalers, and split evaluation downstream.
            if let Some(values) = col.as_numeric() {
                if let Some(row) = values.iter().position(|v| v.is_infinite()) {
                    return Err(DataError::NonFinite {
                        location: format!("column `{cname}` row {row}"),
                        value: values[row].to_string(),
                    });
                }
            }
            let kind = if col.is_numeric() {
                AttrKind::Numeric
            } else {
                AttrKind::Categorical
            };
            attrs.push(Attribute::new(cname, kind));
            cols.push(col);
        }
        Ok(Self {
            name: name.into(),
            attrs,
            columns: cols,
            n_rows,
        })
    }

    /// The dataset's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The attribute metadata for column `j`.
    pub fn attr(&self, j: usize) -> &Attribute {
        &self.attrs[j]
    }

    /// All attributes in column order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The column at index `j`.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Looks a column up by name.
    pub fn column_by_name(&self, name: &str) -> Option<(usize, &Column)> {
        self.attrs
            .iter()
            .position(|a| a.name() == name)
            .map(|j| (j, &self.columns[j]))
    }

    /// The cell value at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn value(&self, row: usize, col: usize) -> Value {
        let column = self.columns.get(col).unwrap_or_else(|| {
            panic!(
                "column index {col} out of range for {} columns",
                self.columns.len()
            )
        });
        column
            .get(row)
            .unwrap_or_else(|| panic!("row index {row} out of range for {} rows", self.n_rows))
    }

    /// Iterates the values of row `i` in column order.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> impl Iterator<Item = Value> + '_ {
        self.columns.iter().map(move |c| {
            c.get(i)
                .unwrap_or_else(|| panic!("row index {i} out of range"))
        })
    }

    /// A new dataset containing only the rows at `indices` (in order,
    /// duplicates allowed — useful for bootstrap samples).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            attrs: self.attrs.clone(),
            columns: self.columns.iter().map(|c| c.select(indices)).collect(),
            n_rows: indices.len(),
        }
    }

    /// A new dataset containing only the columns at `indices` (in order).
    pub fn select_cols(&self, indices: &[usize]) -> Result<Dataset, DataError> {
        let mut attrs = Vec::with_capacity(indices.len());
        let mut cols = Vec::with_capacity(indices.len());
        for &j in indices {
            if j >= self.n_cols() {
                return Err(DataError::ColumnIndexOutOfRange {
                    index: j,
                    n_cols: self.n_cols(),
                });
            }
            attrs.push(self.attrs[j].clone());
            cols.push(self.columns[j].clone());
        }
        Ok(Dataset {
            name: self.name.clone(),
            attrs,
            columns: cols,
            n_rows: self.n_rows,
        })
    }

    /// Replaces column `j`, keeping its name. The new column must have the
    /// same length as the dataset.
    pub fn with_column(&self, j: usize, col: Column) -> Result<Dataset, DataError> {
        if j >= self.n_cols() {
            return Err(DataError::ColumnIndexOutOfRange {
                index: j,
                n_cols: self.n_cols(),
            });
        }
        if col.len() != self.n_rows {
            return Err(DataError::ColumnLengthMismatch {
                column: self.attrs[j].name().to_owned(),
                len: col.len(),
                expected: self.n_rows,
            });
        }
        let mut out = self.clone();
        out.attrs[j] = Attribute::new(
            self.attrs[j].name(),
            if col.is_numeric() {
                AttrKind::Numeric
            } else {
                AttrKind::Categorical
            },
        );
        out.columns[j] = col;
        Ok(out)
    }

    /// Total count of missing cells across all columns.
    pub fn n_missing(&self) -> usize {
        self.columns.iter().map(Column::n_missing).sum()
    }

    /// Converts the dataset to a dense `f64` matrix.
    ///
    /// Missing numeric cells become the column mean (0 if the whole column
    /// is missing); missing categorical cells become an all-zero indicator
    /// row under [`MatrixEncoding::OneHot`], or the value `-1.0` under
    /// [`MatrixEncoding::Codes`].
    pub fn to_matrix(&self, encoding: MatrixEncoding) -> Matrix {
        let mut width = 0usize;
        for c in &self.columns {
            width += match (c, encoding) {
                (Column::Numeric(_), _) => 1,
                (Column::Categorical { .. }, MatrixEncoding::Codes) => 1,
                (c @ Column::Categorical { .. }, MatrixEncoding::OneHot) => c.n_categories(),
            };
        }
        let mut data = vec![0.0f64; self.n_rows * width];
        let mut offset = 0usize;
        for c in &self.columns {
            match c {
                Column::Numeric(v) => {
                    let fill = c.mean().unwrap_or(0.0);
                    for (i, &x) in v.iter().enumerate() {
                        data[i * width + offset] = if x.is_nan() { fill } else { x };
                    }
                    offset += 1;
                }
                Column::Categorical { codes, dict } => match encoding {
                    MatrixEncoding::Codes => {
                        for (i, &code) in codes.iter().enumerate() {
                            data[i * width + offset] = if code == MISSING_CODE {
                                -1.0
                            } else {
                                code as f64
                            };
                        }
                        offset += 1;
                    }
                    MatrixEncoding::OneHot => {
                        for (i, &code) in codes.iter().enumerate() {
                            if code != MISSING_CODE {
                                data[i * width + offset + code as usize] = 1.0;
                            }
                        }
                        offset += dict.len();
                    }
                },
            }
        }
        Matrix::from_vec(data, self.n_rows, width)
            .unwrap_or_else(|e| panic!("internal dimension bug: {e}"))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Dataset `{}`: {} rows x {} cols",
            self.name,
            self.n_rows,
            self.n_cols()
        )?;
        for (a, c) in self.attrs.iter().zip(&self.columns) {
            writeln!(
                f,
                "  {a}{}",
                if c.n_missing() > 0 {
                    format!(", {} missing", c.n_missing())
                } else {
                    String::new()
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_columns(
            "t",
            vec![
                ("x".into(), Column::from_numeric(vec![1.0, 2.0, 3.0, 4.0])),
                ("c".into(), Column::from_strings(["a", "b", "a", "c"])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_cols(), 2);
        assert_eq!(ds.attr(0).name(), "x");
        assert!(ds.attr(0).is_numeric());
        assert!(ds.attr(1).is_categorical());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let err = Dataset::from_columns(
            "t",
            vec![
                ("x".into(), Column::from_numeric(vec![1.0])),
                ("y".into(), Column::from_numeric(vec![1.0, 2.0])),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Dataset::from_columns(
            "t",
            vec![
                ("x".into(), Column::from_numeric(vec![1.0])),
                ("x".into(), Column::from_numeric(vec![2.0])),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn(_)));
    }

    #[test]
    fn value_and_row_access() {
        let ds = sample();
        assert_eq!(ds.value(1, 0), Value::Num(2.0));
        assert_eq!(ds.value(3, 1), Value::Cat(2));
        let row: Vec<_> = ds.row(2).collect();
        assert_eq!(row, vec![Value::Num(3.0), Value::Cat(0)]);
    }

    #[test]
    fn column_by_name() {
        let ds = sample();
        let (j, col) = ds.column_by_name("c").unwrap();
        assert_eq!(j, 1);
        assert!(col.is_categorical());
        assert!(ds.column_by_name("nope").is_none());
    }

    #[test]
    fn select_rows_with_duplicates() {
        let ds = sample();
        let sub = ds.select_rows(&[3, 3, 0]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.value(0, 0), Value::Num(4.0));
        assert_eq!(sub.value(2, 0), Value::Num(1.0));
    }

    #[test]
    fn select_cols_subset() {
        let ds = sample();
        let sub = ds.select_cols(&[1]).unwrap();
        assert_eq!(sub.n_cols(), 1);
        assert_eq!(sub.attr(0).name(), "c");
        assert!(sub.select_cols(&[5]).is_err());
    }

    #[test]
    fn with_column_replaces_and_validates() {
        let ds = sample();
        let ds2 = ds
            .with_column(0, Column::from_strings(["p", "q", "p", "q"]))
            .unwrap();
        assert!(ds2.attr(0).is_categorical());
        assert_eq!(ds2.attr(0).name(), "x");
        assert!(ds.with_column(0, Column::from_numeric(vec![1.0])).is_err());
        assert!(ds
            .with_column(9, Column::from_numeric(vec![1.0; 4]))
            .is_err());
    }

    #[test]
    fn to_matrix_codes() {
        let ds = sample();
        let m = ds.to_matrix(MatrixEncoding::Codes);
        assert_eq!((m.rows(), m.cols()), (4, 2));
        assert_eq!(m.row(3), &[4.0, 2.0]);
    }

    #[test]
    fn to_matrix_onehot() {
        let ds = sample();
        let m = ds.to_matrix(MatrixEncoding::OneHot);
        assert_eq!((m.rows(), m.cols()), (4, 4)); // 1 numeric + 3 categories
        assert_eq!(m.row(0), &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.row(3), &[4.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn to_matrix_fills_missing_numeric_with_mean() {
        let ds = Dataset::from_columns(
            "m",
            vec![("x".into(), Column::from_numeric(vec![1.0, f64::NAN, 3.0]))],
        )
        .unwrap();
        let m = ds.to_matrix(MatrixEncoding::Codes);
        assert_eq!(m.row(1), &[2.0]);
    }

    #[test]
    fn missing_counts() {
        let ds = Dataset::from_columns(
            "m",
            vec![
                ("x".into(), Column::from_numeric(vec![f64::NAN, 1.0])),
                (
                    "c".into(),
                    Column::from_strings_opt([None::<&str>, Some("a")]),
                ),
            ],
        )
        .unwrap();
        assert_eq!(ds.n_missing(), 2);
    }

    #[test]
    fn display_mentions_shape() {
        let s = sample().to_string();
        assert!(s.contains("4 rows"));
        assert!(s.contains("x (numeric)"));
    }
}
