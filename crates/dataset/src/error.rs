//! Error type shared by the dataset substrate.

use std::fmt;

/// Errors produced while constructing or transforming datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Columns passed to a dataset constructor had differing lengths.
    ColumnLengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        len: usize,
        /// The length established by the first column.
        expected: usize,
    },
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A column or attribute name was not found.
    UnknownColumn(String),
    /// A column index was out of range.
    ColumnIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of columns available.
        n_cols: usize,
    },
    /// A row index was out of range.
    RowIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of rows available.
        n_rows: usize,
    },
    /// An operation required a numeric column but got a categorical one
    /// (or vice versa).
    WrongColumnKind {
        /// Name of the offending column.
        column: String,
        /// The kind the operation needed.
        expected: &'static str,
    },
    /// A labels vector did not match the dataset row count.
    LabelLengthMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of dataset rows.
        rows: usize,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number of the malformed input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An I/O failure while reading or writing data files.
    Io(String),
    /// A non-finite value (NaN or ±inf) reached a numeric container that
    /// requires finite data (e.g. a [`crate::Matrix`] feeding distance
    /// kernels).
    NonFinite {
        /// Where the value was found (column name, "row i col j", ...).
        location: String,
        /// The offending value, rendered (`NaN`, `inf`, `-inf`).
        value: String,
    },
    /// A parameter was outside its valid domain (e.g. zero bins).
    InvalidParameter(String),
    /// The operation needs at least one row/element and got none.
    Empty(&'static str),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ColumnLengthMismatch {
                column,
                len,
                expected,
            } => write!(
                f,
                "column `{column}` has {len} rows but the dataset has {expected}"
            ),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column name `{name}`"),
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::ColumnIndexOutOfRange { index, n_cols } => {
                write!(f, "column index {index} out of range for {n_cols} columns")
            }
            DataError::RowIndexOutOfRange { index, n_rows } => {
                write!(f, "row index {index} out of range for {n_rows} rows")
            }
            DataError::WrongColumnKind { column, expected } => {
                write!(f, "column `{column}` is not {expected}")
            }
            DataError::LabelLengthMismatch { labels, rows } => {
                write!(f, "{labels} labels supplied for a dataset with {rows} rows")
            }
            DataError::Csv { line, message } => {
                write!(f, "csv parse error on line {line}: {message}")
            }
            DataError::NonFinite { location, value } => {
                write!(f, "non-finite value {value} at {location}")
            }
            DataError::Io(msg) => write!(f, "i/o error: {msg}"),
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::Empty(what) => write!(f, "operation requires a non-empty {what}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::ColumnLengthMismatch {
            column: "age".into(),
            len: 3,
            expected: 5,
        };
        let s = e.to_string();
        assert!(s.contains("age"));
        assert!(s.contains('3'));
        assert!(s.contains('5'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }
}
