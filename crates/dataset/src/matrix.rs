//! Dense row-major `f64` matrix plus the distance kernels shared by the
//! distance-based algorithms (clustering, k-NN).

use crate::error::DataError;

/// A dense row-major matrix of `f64`.
///
/// Rows are observations, columns are features. The storage is a single
/// contiguous `Vec<f64>` so row access is cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

/// Rejects NaN / ±inf in a row-major buffer: the distance kernels and
/// every comparison-based algorithm downstream assume finite input (a
/// single NaN silently poisons `partial_cmp`-style comparisons).
fn check_finite(data: &[f64], cols: usize) -> Result<(), DataError> {
    if let Some(pos) = data.iter().position(|v| !v.is_finite()) {
        let (i, j) = match pos.checked_div(cols) {
            Some(row) => (row, pos % cols),
            None => (pos, 0),
        };
        return Err(DataError::NonFinite {
            location: format!("matrix row {i} col {j}"),
            value: data[pos].to_string(),
        });
    }
    Ok(())
}

impl Matrix {
    /// Builds a matrix from a flat row-major buffer. Zero-width matrices
    /// with rows are rejected (they would make `iter_rows` inconsistent
    /// with `rows()`), as are non-finite values (NaN / ±inf), which would
    /// poison the distance kernels.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self, DataError> {
        if data.len() != rows * cols {
            return Err(DataError::InvalidParameter(format!(
                "buffer of {} elements cannot be a {rows}x{cols} matrix",
                data.len()
            )));
        }
        if cols == 0 && rows > 0 {
            return Err(DataError::InvalidParameter(format!(
                "a matrix with {rows} rows must have at least one column"
            )));
        }
        check_finite(&data, cols)?;
        Ok(Self { data, rows, cols })
    }

    /// Builds a matrix from row slices. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, DataError> {
        if rows.is_empty() {
            return Ok(Self {
                data: Vec::new(),
                rows: 0,
                cols: 0,
            });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(DataError::InvalidParameter(format!(
                "a matrix with {} rows must have at least one column",
                rows.len()
            )));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(DataError::InvalidParameter(format!(
                    "row {i} has {} columns, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        check_finite(&data, cols)?;
        Ok(Self {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows (observations).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The cell at (`i`, `j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the cell at (`i`, `j`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterates rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A new matrix containing the rows at `indices` (in order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for r in self.iter_rows() {
            for (m, &x) in means.iter_mut().zip(r) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Euclidean (L2) distance.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Chebyshev (L∞) distance.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Minkowski distance of order `p` (`p >= 1`).
#[inline]
pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(p >= 1.0);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(vec![1.0, 2.0, 3.0], 2, 2).is_err());
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_validates_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn non_finite_values_are_rejected_with_location() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Matrix::from_vec(vec![1.0, 2.0, bad, 4.0], 2, 2).unwrap_err();
            match err {
                DataError::NonFinite { location, .. } => {
                    assert!(location.contains("row 1 col 0"), "{location}");
                }
                other => panic!("expected NonFinite, got {other:?}"),
            }
            assert!(Matrix::from_rows(&[vec![0.0], vec![bad]]).is_err());
        }
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.iter_rows().count(), 0);
        assert!(m.col_means().is_empty());
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = Matrix::zeros(2, 3);
        m.set(0, 2, 5.0);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn select_rows_copies_in_order() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn col_means() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        assert_eq!(m.col_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(euclidean_sq(&a, &b), 25.0);
        assert_eq!(euclidean(&a, &b), 5.0);
        assert_eq!(manhattan(&a, &b), 7.0);
        assert_eq!(chebyshev(&a, &b), 4.0);
        assert!((minkowski(&a, &b, 2.0) - 5.0).abs() < 1e-12);
        assert!((minkowski(&a, &b, 1.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn distance_identity() {
        let a = [1.5, -2.0, 0.25];
        assert_eq!(euclidean(&a, &a), 0.0);
        assert_eq!(manhattan(&a, &a), 0.0);
        assert_eq!(chebyshev(&a, &a), 0.0);
    }
}
