//! Transaction databases for frequent-itemset mining.

use crate::error::DataError;
use std::io::{BufRead, BufWriter, Write};

/// A database of transactions, each a sorted, deduplicated list of item
/// ids in `0..n_items`.
///
/// This is the input format of the association-rule miners. Items are
/// plain `u32` ids; callers that have named items keep their own mapping
/// (see [`crate::Dict`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionDb {
    txns: Vec<Vec<u32>>,
    n_items: u32,
}

impl TransactionDb {
    /// Builds a database from raw transactions.
    ///
    /// Each transaction is sorted and deduplicated; `n_items` is computed
    /// as one past the largest item id (0 for an empty database).
    pub fn new(raw: Vec<Vec<u32>>) -> Self {
        let mut n_items = 0u32;
        let txns = raw
            .into_iter()
            .map(|mut t| {
                t.sort_unstable();
                t.dedup();
                if let Some(&max) = t.last() {
                    n_items = n_items.max(max + 1);
                }
                t
            })
            .collect();
        Self { txns, n_items }
    }

    /// Builds a database asserting a fixed item universe of `n_items`.
    ///
    /// Fails if any transaction references an item `>= n_items`.
    pub fn with_universe(raw: Vec<Vec<u32>>, n_items: u32) -> Result<Self, DataError> {
        let db = Self::new(raw);
        if db.n_items > n_items {
            return Err(DataError::InvalidParameter(format!(
                "transaction references item {} outside universe of {n_items}",
                db.n_items - 1
            )));
        }
        Ok(Self { n_items, ..db })
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Size of the item universe (one past the largest id).
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// The transaction at index `i` (sorted item ids).
    pub fn transaction(&self, i: usize) -> &[u32] {
        &self.txns[i]
    }

    /// Iterates transactions as sorted slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.txns.iter().map(Vec::as_slice)
    }

    /// The transactions as a contiguous slice, for chunked (parallel)
    /// scans over the database.
    pub fn transactions(&self) -> &[Vec<u32>] {
        &self.txns
    }

    /// Mean transaction length.
    pub fn mean_len(&self) -> f64 {
        if self.txns.is_empty() {
            return 0.0;
        }
        self.txns.iter().map(Vec::len).sum::<usize>() as f64 / self.txns.len() as f64
    }

    /// Absolute support count of `itemset` (must be sorted, deduplicated).
    ///
    /// This is the O(|D| · |T|) reference counter used by tests and the
    /// brute-force miner; the real miners count during their passes.
    pub fn support_count(&self, itemset: &[u32]) -> usize {
        debug_assert!(itemset.windows(2).all(|w| w[0] < w[1]));
        self.iter().filter(|t| is_subset_sorted(itemset, t)).count()
    }

    /// Relative support of `itemset` in `[0, 1]`.
    pub fn support(&self, itemset: &[u32]) -> f64 {
        if self.txns.is_empty() {
            return 0.0;
        }
        self.support_count(itemset) as f64 / self.txns.len() as f64
    }

    /// Converts a fractional minimum support into an absolute count,
    /// rounding up (a set is frequent iff its count ≥ the returned value).
    pub fn min_support_count(&self, min_support: f64) -> usize {
        ((min_support * self.txns.len() as f64).ceil() as usize).max(1)
    }

    /// Writes the database in a simple line-per-transaction text format
    /// (space-separated item ids).
    pub fn write_to<W: Write>(&self, w: W) -> Result<(), DataError> {
        let mut out = BufWriter::new(w);
        for t in &self.txns {
            let mut first = true;
            for item in t {
                if !first {
                    write!(out, " ")?;
                }
                write!(out, "{item}")?;
                first = false;
            }
            writeln!(out)?;
        }
        out.flush()?;
        Ok(())
    }

    /// Reads the format written by [`TransactionDb::write_to`]. Blank lines
    /// are empty transactions.
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, DataError> {
        let mut raw = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            let mut t = Vec::new();
            for tok in line.split_whitespace() {
                let item: u32 = tok.parse().map_err(|_| DataError::Csv {
                    line: i + 1,
                    message: format!("invalid item id `{tok}`"),
                })?;
                t.push(item);
            }
            raw.push(t);
        }
        Ok(Self::new(raw))
    }
}

/// Whether sorted slice `small` is a subset of sorted slice `big`.
#[inline]
pub fn is_subset_sorted(small: &[u32], big: &[u32]) -> bool {
    let mut bi = 0usize;
    'outer: for &s in small {
        while bi < big.len() {
            match big[bi].cmp(&s) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
        ])
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let db = TransactionDb::new(vec![vec![3, 1, 3, 2]]);
        assert_eq!(db.transaction(0), &[1, 2, 3]);
        assert_eq!(db.n_items(), 4);
    }

    #[test]
    fn universe_validation() {
        assert!(TransactionDb::with_universe(vec![vec![0, 5]], 6).is_ok());
        assert!(TransactionDb::with_universe(vec![vec![0, 5]], 5).is_err());
        let db = TransactionDb::with_universe(vec![vec![0]], 100).unwrap();
        assert_eq!(db.n_items(), 100);
    }

    #[test]
    fn support_counting_matches_hand_computation() {
        let db = db();
        // Classic Agrawal–Srikant example database.
        assert_eq!(db.support_count(&[2, 3]), 2);
        assert_eq!(db.support_count(&[2, 5]), 3);
        assert_eq!(db.support_count(&[1]), 2);
        assert_eq!(db.support_count(&[2, 3, 5]), 2);
        assert_eq!(db.support_count(&[4, 5]), 0);
        assert_eq!(db.support_count(&[]), 4); // empty set in every txn
        assert!((db.support(&[2, 5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_support_count_rounds_up_and_floors_at_one() {
        let db = db(); // 4 transactions
        assert_eq!(db.min_support_count(0.5), 2);
        assert_eq!(db.min_support_count(0.51), 3);
        assert_eq!(db.min_support_count(0.0), 1);
        assert_eq!(db.min_support_count(1.0), 4);
    }

    #[test]
    fn subset_check() {
        assert!(is_subset_sorted(&[], &[1, 2]));
        assert!(is_subset_sorted(&[2], &[1, 2, 3]));
        assert!(is_subset_sorted(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[0], &[]));
    }

    #[test]
    fn text_roundtrip() {
        let db = db();
        let mut buf = Vec::new();
        db.write_to(&mut buf).unwrap();
        let back = TransactionDb::read_from(&buf[..]).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn read_rejects_garbage() {
        let err = TransactionDb::read_from("1 2\n3 x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }

    #[test]
    fn mean_len() {
        assert!((db().mean_len() - 3.0).abs() < 1e-12);
        assert_eq!(TransactionDb::new(vec![]).mean_len(), 0.0);
    }
}
