//! String interning dictionary for categorical columns and class labels.

use std::collections::HashMap;

/// A bidirectional mapping between category names and dense `u32` codes.
///
/// Codes are assigned in first-seen order starting from zero, so a `Dict`
/// built from the same sequence of strings is always identical — an
/// invariant the deterministic-pipeline tests rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dict {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary pre-populated from `names` in order.
    ///
    /// Duplicate names are collapsed onto their first code.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut d = Self::new();
        for n in names {
            d.intern(n.as_ref());
        }
        d
    }

    /// Returns the code for `name`, interning it if unseen.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&c) = self.index.get(name) {
            return c;
        }
        let code = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), code);
        code
    }

    /// Returns the code for `name` if already interned.
    pub fn code(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Returns the name for `code`, or `None` when out of range.
    pub fn name(&self, code: u32) -> Option<&str> {
        self.names.get(code as usize).map(String::as_str)
    }

    /// The number of distinct categories.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no category has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(code, name)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_order() {
        let mut d = Dict::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn lookup_roundtrip() {
        let d = Dict::from_names(["x", "y", "x", "z"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.code("y"), Some(1));
        assert_eq!(d.name(2), Some("z"));
        assert_eq!(d.code("missing"), None);
        assert_eq!(d.name(9), None);
    }

    #[test]
    fn iter_in_code_order() {
        let d = Dict::from_names(["p", "q"]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "p"), (1, "q")]);
    }

    #[test]
    fn empty_dict() {
        let d = Dict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
