//! Property tests for the data substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_dataset::csv::{read_csv, write_csv};
use dm_dataset::{
    Column, Dataset, Discretizer, EqualFrequency, EqualWidth, KFold, Matrix, Scaler,
    StandardScaler, StratifiedKFold,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a dataset with one numeric and one categorical column.
fn dataset() -> impl Strategy<Value = Dataset> {
    (1usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::option::of(-1e6f64..1e6), n..=n),
            prop::collection::vec(prop::option::of(0u8..5), n..=n),
        )
            .prop_map(|(nums, cats)| {
                Dataset::from_columns(
                    "prop",
                    vec![
                        ("num".into(), Column::from_numeric_opt(nums)),
                        (
                            "cat".into(),
                            Column::from_strings_opt(
                                cats.into_iter()
                                    .map(|c| c.map(|c| format!("v{c}")))
                                    .collect::<Vec<_>>(),
                            ),
                        ),
                    ],
                )
                .expect("consistent schema")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_is_identity_for_values(ds in dataset()) {
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv("prop", &buf[..]).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_cols(), ds.n_cols());
        for i in 0..ds.n_rows() {
            for j in 0..ds.n_cols() {
                match (ds.value(i, j), back.value(i, j)) {
                    (dm_dataset::Value::Num(a), dm_dataset::Value::Num(b)) => {
                        // f64 display roundtrips exactly in Rust.
                        prop_assert_eq!(a, b);
                    }
                    (dm_dataset::Value::Missing, dm_dataset::Value::Missing) => {}
                    (dm_dataset::Value::Cat(_), dm_dataset::Value::Cat(_)) => {
                        // Codes may differ; names must agree.
                        let (_, d1) = ds.column(j).as_categorical().unwrap();
                        let (_, d2) = back.column(j).as_categorical().unwrap();
                        let a = d1.name(ds.value(i, j).as_cat().unwrap()).unwrap();
                        let b = d2.name(back.value(i, j).as_cat().unwrap()).unwrap();
                        prop_assert_eq!(a, b);
                    }
                    (a, b) => prop_assert!(false, "kind mismatch {:?} vs {:?}", a, b),
                }
            }
        }
    }

    #[test]
    fn kfold_partitions_rows(n in 4usize..200, k in 2usize..6, seed in 0u64..4) {
        prop_assume!(n >= k);
        let folds = KFold::new(k).unwrap().shuffled(seed).split(n).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            let train_set: HashSet<_> = train.iter().collect();
            for i in test {
                prop_assert!(!train_set.contains(i));
                seen[*i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn stratified_kfold_balances_every_class(
        labels in prop::collection::vec(0u32..3, 12..100),
        seed in 0u64..4,
    ) {
        let k = 3usize;
        // Ensure each class has at least k members for clean stratification.
        let mut counts = [0usize; 3];
        for &l in &labels { counts[l as usize] += 1; }
        prop_assume!(counts.iter().all(|&c| c == 0 || c >= k));
        prop_assume!(counts.iter().filter(|&&c| c > 0).count() >= 1);
        let folds = StratifiedKFold::new(k).unwrap().shuffled(seed).split(&labels).unwrap();
        for (_, test) in &folds {
            for class in 0..3u32 {
                let total = counts[class as usize];
                if total == 0 { continue; }
                let in_fold = test.iter().filter(|&&i| labels[i] == class).count();
                // Round-robin dealing puts floor..ceil of total/k per fold.
                prop_assert!(in_fold >= total / k - 1 && in_fold <= total / k + 1,
                    "class {} fold share {} of {}", class, in_fold, total);
            }
        }
    }

    #[test]
    fn discretizers_bin_monotonically(values in prop::collection::vec(-1e3f64..1e3, 2..60), bins in 1usize..8) {
        for fitted in [
            EqualWidth { bins }.fit(&values).unwrap(),
            EqualFrequency { bins }.fit(&values).unwrap(),
        ] {
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let bins: Vec<u32> = sorted.iter().map(|&v| fitted.bin(v).unwrap()).collect();
            prop_assert!(bins.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(bins.iter().all(|&b| (b as usize) < fitted.n_bins()));
        }
    }

    #[test]
    fn standard_scaler_roundtrips(
        rows in (2usize..4).prop_flat_map(|d| {
            prop::collection::vec(prop::collection::vec(-1e3f64..1e3, d..=d), 2..30)
        }),
    ) {
        let m = Matrix::from_rows(&rows).unwrap();
        let fitted = StandardScaler.fit(&m).unwrap();
        let t = fitted.transform(&m).unwrap();
        let back = fitted.inverse_transform(&t).unwrap();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert!((back.get(i, j) - m.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn select_rows_matches_pointwise(ds in dataset(), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let indices: Vec<usize> = (0..ds.n_rows().min(10))
            .map(|_| rng.gen_range(0..ds.n_rows()))
            .collect();
        let sub = ds.select_rows(&indices);
        prop_assert_eq!(sub.n_rows(), indices.len());
        for (new_i, &old_i) in indices.iter().enumerate() {
            for j in 0..ds.n_cols() {
                prop_assert_eq!(sub.value(new_i, j), ds.value(old_i, j));
            }
        }
    }
}
