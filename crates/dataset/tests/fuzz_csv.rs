//! Fuzz-style robustness tests: `read_csv` over arbitrary byte soup must
//! never panic — every input yields `Ok` or a typed [`DataError`].

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_dataset::csv::read_csv;
use proptest::prelude::*;

/// Characters weighted toward the CSV dialect's tricky corners: quotes,
/// separators, the missing marker, and non-finite numeric literals.
const CSVISH: &[char] = &[
    ',', '"', '\n', '\r', '?', ' ', '.', '-', '+', 'e', '0', '1', '9', 'N', 'a', 'n', 'i', 'f',
    'x', '\t',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn read_csv_total_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255u8, 0..512)) {
        // Must return Ok or a typed error — never panic. Invalid UTF-8
        // surfaces as DataError::Io through the BufRead::lines path.
        match read_csv("fuzz", &bytes[..]) {
            Ok(ds) => {
                // Basic sanity on the accepted shape.
                prop_assert!(ds.n_cols() >= 1);
            }
            Err(e) => {
                // The error must render without panicking either.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn read_csv_total_on_csvish_text(picks in prop::collection::vec(0usize..CSVISH.len(), 0..256)) {
        let doc: String = picks.iter().map(|&i| CSVISH[i]).collect();
        match read_csv("fuzz", doc.as_bytes()) {
            Ok(ds) => prop_assert!(ds.n_cols() >= 1),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
