//! An exact k-d tree for nearest-neighbour queries.
//!
//! Works with every [`crate::Distance`] in the Minkowski family because
//! the per-axis coordinate difference is a lower bound on all of them,
//! which is the only property the pruning rule needs.

use crate::Distance;
use dm_dataset::Matrix;

#[derive(Debug, Clone)]
struct KdNode {
    /// Row index of the splitting point.
    point: usize,
    /// Splitting axis.
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// An exact k-d tree over the rows of a matrix.
///
/// The tree stores row *indices*; the matrix itself is supplied again at
/// query time (the model owns it), keeping the tree small and cloneable.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    root: Option<usize>,
}

impl KdTree {
    /// Builds a balanced tree by median splitting on cycling axes.
    pub fn build(data: &Matrix) -> Self {
        let mut indices: Vec<usize> = (0..data.rows()).collect();
        let mut nodes = Vec::with_capacity(data.rows());
        let root = Self::build_rec(data, &mut indices[..], 0, &mut nodes);
        Self { nodes, root }
    }

    fn build_rec(
        data: &Matrix,
        indices: &mut [usize],
        depth: usize,
        nodes: &mut Vec<KdNode>,
    ) -> Option<usize> {
        if indices.is_empty() {
            return None;
        }
        let axis = if data.cols() == 0 {
            0
        } else {
            depth % data.cols()
        };
        let mid = indices.len() / 2;
        indices.select_nth_unstable_by(mid, |&a, &b| {
            data.get(a, axis)
                .total_cmp(&data.get(b, axis))
                .then(a.cmp(&b))
        });
        let point = indices[mid];
        let (left_slice, rest) = indices.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = Self::build_rec(data, left_slice, depth + 1, nodes);
        let right = Self::build_rec(data, right_slice, depth + 1, nodes);
        nodes.push(KdNode {
            point,
            axis,
            left,
            right,
        });
        Some(nodes.len() - 1)
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `k` nearest rows to `query`, ascending by `(distance, index)`
    /// — exactly the ordering of a brute-force scan.
    pub fn nearest(
        &self,
        data: &Matrix,
        query: &[f64],
        k: usize,
        metric: Distance,
    ) -> Vec<(usize, f64)> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        if k == 0 {
            return best;
        }
        if let Some(root) = self.root {
            self.search(root, data, query, k, metric, &mut best);
        }
        best
    }

    fn search(
        &self,
        node_id: usize,
        data: &Matrix,
        query: &[f64],
        k: usize,
        metric: Distance,
        best: &mut Vec<(usize, f64)>,
    ) {
        let node = &self.nodes[node_id];
        let dist = metric.eval(data.row(node.point), query);
        // Insert in (distance, index) order; cap at k.
        let pos = best.partition_point(|&(i, d)| d < dist || (d == dist && i < node.point));
        if pos < k {
            best.insert(pos, (node.point, dist));
            best.truncate(k);
        }
        let diff = query[node.axis] - data.get(node.point, node.axis);
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.search(n, data, query, k, metric, best);
        }
        let worst = if best.len() == k {
            best[k - 1].1
        } else {
            f64::INFINITY
        };
        // The axis gap lower-bounds every Minkowski distance; ties must
        // still be visited because a tied point with a smaller index
        // outranks the current worst.
        if diff.abs() <= worst {
            if let Some(f) = far {
                self.search(f, data, query, k, metric, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute(data: &Matrix, query: &[f64], k: usize, metric: Distance) -> Vec<(usize, f64)> {
        let mut dists: Vec<(usize, f64)> = (0..data.rows())
            .map(|i| (i, metric.eval(data.row(i), query)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        dists.truncate(k);
        dists
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(42);
        for dims in [1usize, 2, 3, 5] {
            let rows: Vec<Vec<f64>> = (0..200)
                .map(|_| (0..dims).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let data = Matrix::from_rows(&rows).unwrap();
            let tree = KdTree::build(&data);
            for _ in 0..30 {
                let q: Vec<f64> = (0..dims).map(|_| rng.gen_range(-12.0..12.0)).collect();
                for metric in [
                    Distance::Euclidean,
                    Distance::Manhattan,
                    Distance::Chebyshev,
                ] {
                    for k in [1usize, 3, 10] {
                        assert_eq!(
                            tree.nearest(&data, &q, k, metric),
                            brute(&data, &q, k, metric),
                            "dims {dims} metric {metric:?} k {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn handles_duplicates_deterministically() {
        let data = Matrix::from_rows(&vec![vec![1.0, 2.0]; 10]).unwrap();
        let tree = KdTree::build(&data);
        let result = tree.nearest(&data, &[1.0, 2.0], 3, Distance::Euclidean);
        assert_eq!(result, vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let empty = Matrix::from_rows(&[]).unwrap();
        let tree = KdTree::build(&empty);
        assert!(tree.is_empty());
        assert!(tree.nearest(&empty, &[], 3, Distance::Euclidean).is_empty());

        let one = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let tree = KdTree::build(&one);
        assert_eq!(tree.len(), 1);
        assert_eq!(
            tree.nearest(&one, &[4.0], 2, Distance::Euclidean),
            vec![(0, 1.0)]
        );
    }

    #[test]
    fn k_zero_returns_nothing() {
        let data = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let tree = KdTree::build(&data);
        assert!(tree
            .nearest(&data, &[0.0], 0, Distance::Euclidean)
            .is_empty());
    }
}
