//! # dm-knn
//!
//! k-nearest-neighbour classification over dense numeric data, with
//! brute-force and k-d-tree search backends, four Minkowski-family
//! distance metrics, optional inverse-distance vote weighting, and
//! Hart's condensed-nearest-neighbour instance reduction.
//!
//! The two backends return identical predictions (enforced by property
//! tests); the k-d tree is the fast path in low dimensions while brute
//! force wins in high dimensions — the classic curse-of-dimensionality
//! trade-off.
//!
//! ```
//! use dm_dataset::Matrix;
//! use dm_knn::Knn;
//!
//! let train = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.1], vec![9.0, 9.0], vec![9.1, 9.2],
//! ]).unwrap();
//! let model = Knn::new(3).fit(&train, &[0, 0, 1, 1]).unwrap();
//! let test = Matrix::from_rows(&[vec![0.3, 0.2], vec![8.5, 9.4]]).unwrap();
//! assert_eq!(model.predict(&test).unwrap(), vec![0, 1]);
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub mod condensed;
pub mod kdtree;

pub use condensed::CondensedNn;
pub use kdtree::KdTree;

use dm_dataset::matrix::{chebyshev, euclidean, manhattan, minkowski};
use dm_dataset::{DataError, Matrix};
use dm_guard::{Guard, Outcome};
use dm_par::{par_range_map_reduce, Chunking, Parallelism};

/// Distance metric for neighbour search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distance {
    /// L2.
    Euclidean,
    /// L1.
    Manhattan,
    /// L∞.
    Chebyshev,
    /// Lp with the given order `p ≥ 1`.
    Minkowski(f64),
}

impl Distance {
    /// Evaluates the metric.
    #[inline]
    pub fn eval(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Distance::Euclidean => euclidean(a, b),
            Distance::Manhattan => manhattan(a, b),
            Distance::Chebyshev => chebyshev(a, b),
            Distance::Minkowski(p) => minkowski(a, b, p),
        }
    }
}

/// How neighbour votes are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// One vote per neighbour.
    Uniform,
    /// Votes weighted by `1 / (distance + ε)`.
    InverseDistance,
}

/// Neighbour-search backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Search {
    /// Scan all training points per query.
    Brute,
    /// k-d tree (exact, with per-axis pruning).
    KdTree,
}

/// The k-NN classifier configuration.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    distance: Distance,
    weighting: Weighting,
    search: Search,
    parallelism: Parallelism,
}

impl Knn {
    /// A Euclidean, uniform-vote classifier using the k-d tree backend.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            distance: Distance::Euclidean,
            weighting: Weighting::Uniform,
            search: Search::KdTree,
            parallelism: Parallelism::Sequential,
        }
    }

    /// Sets how batch prediction spreads queries across threads. Each
    /// query is searched independently, so predictions are identical
    /// for every [`Parallelism`] setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the distance metric.
    pub fn with_distance(mut self, distance: Distance) -> Self {
        self.distance = distance;
        self
    }

    /// Sets the vote weighting.
    pub fn with_weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Sets the search backend.
    pub fn with_search(mut self, search: Search) -> Self {
        self.search = search;
        self
    }

    /// "Trains" (stores) the model. `labels[i]` is the class of row `i`.
    pub fn fit(&self, train: &Matrix, labels: &[u32]) -> Result<KnnModel, DataError> {
        if self.k == 0 {
            return Err(DataError::InvalidParameter("k must be >= 1".into()));
        }
        if let Distance::Minkowski(p) = self.distance {
            if p < 1.0 {
                return Err(DataError::InvalidParameter(format!(
                    "minkowski order {p} must be >= 1"
                )));
            }
        }
        if train.rows() != labels.len() {
            return Err(DataError::LabelLengthMismatch {
                labels: labels.len(),
                rows: train.rows(),
            });
        }
        if train.rows() == 0 {
            return Err(DataError::Empty("training set"));
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        let kd = match self.search {
            Search::KdTree => Some(KdTree::build(train)),
            Search::Brute => None,
        };
        Ok(KnnModel {
            config: self.clone(),
            train: train.clone(),
            labels: labels.to_vec(),
            n_classes,
            kd,
        })
    }
}

/// A fitted k-NN model (stores the training data).
#[derive(Debug, Clone)]
pub struct KnnModel {
    config: Knn,
    train: Matrix,
    labels: Vec<u32>,
    n_classes: usize,
    kd: Option<KdTree>,
}

impl KnnModel {
    /// The stored training matrix (artifact serialization hook).
    pub fn train(&self) -> &Matrix {
        &self.train
    }

    /// The stored training labels, parallel to [`KnnModel::train`] rows.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of classes the model votes over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The configured neighbour count `k`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// The `(index, distance)` list of the k nearest training points to
    /// `query`, ascending by distance (ties by index).
    pub fn neighbors(&self, query: &[f64]) -> Result<Vec<(usize, f64)>, DataError> {
        if query.len() != self.train.cols() {
            return Err(DataError::InvalidParameter(format!(
                "query has {} dims, model {}",
                query.len(),
                self.train.cols()
            )));
        }
        let k = self.config.k.min(self.train.rows());
        match &self.kd {
            Some(tree) => Ok(tree.nearest(&self.train, query, k, self.config.distance)),
            None => {
                let mut dists: Vec<(usize, f64)> = (0..self.train.rows())
                    .map(|i| (i, self.config.distance.eval(self.train.row(i), query)))
                    .collect();
                dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                dists.truncate(k);
                Ok(dists)
            }
        }
    }

    /// Predicts the class of `query`.
    pub fn predict_one(&self, query: &[f64]) -> Result<u32, DataError> {
        let neighbors = self.neighbors(query)?;
        let mut votes = vec![0.0f64; self.n_classes];
        for &(idx, dist) in &neighbors {
            let w = match self.config.weighting {
                Weighting::Uniform => 1.0,
                Weighting::InverseDistance => 1.0 / (dist + 1e-9),
            };
            votes[self.labels[idx] as usize] += w;
        }
        Ok(votes
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
            .map(|(c, _)| c as u32)
            .unwrap_or(0))
    }

    /// Predicts every row of `data`.
    pub fn predict(&self, data: &Matrix) -> Result<Vec<u32>, DataError> {
        // Queries are independent; chunks of them run across threads and
        // concatenate in order (the first error in query order wins).
        par_range_map_reduce(
            self.config.parallelism,
            Chunking::Fixed(256),
            data.rows(),
            || Ok(Vec::new()),
            |range| {
                range
                    .map(|i| self.predict_one(data.row(i)))
                    .collect::<Result<Vec<u32>, DataError>>()
            },
            |a, b| {
                let (mut a, mut b) = (a?, b?);
                a.append(&mut b);
                Ok(a)
            },
        )
    }

    /// Predicts rows of `data` under a resource [`Guard`].
    ///
    /// Queries are answered in row order, one work unit each; when the
    /// guard trips, the predictions made so far are returned (a prefix
    /// of the full batch — each answered query is exact, never
    /// approximated). An unlimited guard returns exactly what
    /// [`KnnModel::predict`] would.
    pub fn predict_governed(
        &self,
        data: &Matrix,
        guard: &Guard,
    ) -> Result<Outcome<Vec<u32>>, DataError> {
        let mut out = Vec::with_capacity(data.rows());
        let span = guard.obs().span("knn.predict");
        for i in 0..data.rows() {
            if guard.try_work(1).is_err() {
                break;
            }
            out.push(self.predict_one(data.row(i))?);
        }
        drop(span);
        guard.obs().counter("knn.predict.queries", out.len() as u64);
        Ok(guard.outcome(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::GaussianMixture;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs() -> (Matrix, Vec<u32>) {
        GaussianMixture::well_separated(3, 2, 50, 10.0)
            .unwrap()
            .generate(2)
    }

    #[test]
    fn classifies_separated_blobs() {
        let (data, labels) = blobs();
        let model = Knn::new(5).fit(&data, &labels).unwrap();
        let pred = model.predict(&data).unwrap();
        let acc = pred.iter().zip(&labels).filter(|(p, t)| p == t).count();
        assert!(acc as f64 / labels.len() as f64 > 0.98);
    }

    #[test]
    fn brute_and_kdtree_agree() {
        let (data, labels) = blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let queries: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.gen_range(-5.0..25.0), rng.gen_range(-5.0..25.0)])
            .collect();
        let q = Matrix::from_rows(&queries).unwrap();
        for distance in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Chebyshev,
            Distance::Minkowski(3.0),
        ] {
            let brute = Knn::new(7)
                .with_distance(distance)
                .with_search(Search::Brute)
                .fit(&data, &labels)
                .unwrap();
            let kd = Knn::new(7)
                .with_distance(distance)
                .with_search(Search::KdTree)
                .fit(&data, &labels)
                .unwrap();
            assert_eq!(
                brute.predict(&q).unwrap(),
                kd.predict(&q).unwrap(),
                "{distance:?}"
            );
        }
    }

    #[test]
    fn neighbor_lists_match_exactly() {
        let (data, labels) = blobs();
        let brute = Knn::new(4)
            .with_search(Search::Brute)
            .fit(&data, &labels)
            .unwrap();
        let kd = Knn::new(4)
            .with_search(Search::KdTree)
            .fit(&data, &labels)
            .unwrap();
        let q = [3.0, 7.0];
        assert_eq!(brute.neighbors(&q).unwrap(), kd.neighbors(&q).unwrap());
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let (data, labels) = blobs();
        let model = Knn::new(1).fit(&data, &labels).unwrap();
        assert_eq!(model.predict(&data).unwrap(), labels);
    }

    #[test]
    fn inverse_distance_breaks_majority() {
        // Query next to a single class-1 point, with two class-0 points
        // farther away: uniform 3-NN says 0, weighted says 1.
        let data = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![10.4]]).unwrap();
        let labels = vec![1, 0, 0];
        let uniform = Knn::new(3).fit(&data, &labels).unwrap();
        let weighted = Knn::new(3)
            .with_weighting(Weighting::InverseDistance)
            .fit(&data, &labels)
            .unwrap();
        let q = [0.5];
        assert_eq!(uniform.predict_one(&q).unwrap(), 0);
        assert_eq!(weighted.predict_one(&q).unwrap(), 1);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let model = Knn::new(10).fit(&data, &[0, 1]).unwrap();
        assert_eq!(model.neighbors(&[0.2]).unwrap().len(), 2);
    }

    #[test]
    fn validates_inputs() {
        let data = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(Knn::new(0).fit(&data, &[0]).is_err());
        assert!(Knn::new(1).fit(&data, &[0, 1]).is_err());
        assert!(Knn::new(1)
            .with_distance(Distance::Minkowski(0.5))
            .fit(&data, &[0])
            .is_err());
        let empty = Matrix::from_rows(&[]).unwrap();
        assert!(Knn::new(1).fit(&empty, &[]).is_err());
        let model = Knn::new(1).fit(&data, &[0]).unwrap();
        assert!(model.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn governed_prediction_answers_a_prefix() {
        use dm_guard::{Budget, CancelToken, Guard, TruncationReason};
        let (data, labels) = blobs();
        let model = Knn::new(5).fit(&data, &labels).unwrap();
        let full = model.predict(&data).unwrap();

        // A work budget of m answers exactly the first m queries.
        let guard = Guard::new(Budget::unlimited().with_max_work(10));
        let out = model.predict_governed(&data, &guard).unwrap();
        assert_eq!(out.truncation(), Some(TruncationReason::WorkLimitExceeded));
        assert_eq!(out.result, full[..10]);

        // Pre-cancelled: nothing answered, status says why.
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(Budget::unlimited(), token);
        let out = model.predict_governed(&data, &guard).unwrap();
        assert_eq!(out.truncation(), Some(TruncationReason::Cancelled));
        assert!(out.result.is_empty());

        // Unlimited guard matches the parallel batch path exactly.
        let out = model.predict_governed(&data, &Guard::unlimited()).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.result, full);
    }

    #[test]
    fn exact_duplicate_points() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 6]).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let model = Knn::new(6).fit(&data, &labels).unwrap();
        // All distances zero; tie broken toward the smaller class.
        assert_eq!(model.predict_one(&[1.0, 1.0]).unwrap(), 0);
    }
}
