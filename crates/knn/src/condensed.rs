//! Condensed nearest neighbour (Hart, IEEE Trans. IT 1968): instance
//! reduction for k-NN.
//!
//! CNN builds a small *prototype set* that classifies the full training
//! set consistently under 1-NN: starting from one instance per class, it
//! repeatedly scans the training data and absorbs every instance the
//! current prototypes misclassify, until a full pass adds nothing. The
//! resulting model answers queries against the (much smaller) prototype
//! set — the storage/speed fix for k-NN's main operational complaint.

use crate::{Distance, Knn, KnnModel, Search};
use dm_dataset::{DataError, Matrix};

/// Condensed 1-NN learner.
#[derive(Debug, Clone)]
pub struct CondensedNn {
    distance: Distance,
    max_passes: usize,
}

impl Default for CondensedNn {
    fn default() -> Self {
        Self::new()
    }
}

impl CondensedNn {
    /// A Euclidean condenser with at most 50 absorption passes.
    pub fn new() -> Self {
        Self {
            distance: Distance::Euclidean,
            max_passes: 50,
        }
    }

    /// Sets the distance metric.
    pub fn with_distance(mut self, distance: Distance) -> Self {
        self.distance = distance;
        self
    }

    /// Selects the prototype row indices for `(train, labels)`.
    pub fn select_prototypes(
        &self,
        train: &Matrix,
        labels: &[u32],
    ) -> Result<Vec<usize>, DataError> {
        if train.rows() != labels.len() {
            return Err(DataError::LabelLengthMismatch {
                labels: labels.len(),
                rows: train.rows(),
            });
        }
        if train.rows() == 0 {
            return Err(DataError::Empty("training set"));
        }
        // Seed: the first instance of each class, in row order.
        let mut prototypes: Vec<usize> = Vec::new();
        let mut seen_classes: Vec<u32> = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if !seen_classes.contains(&l) {
                seen_classes.push(l);
                prototypes.push(i);
            }
        }
        let nearest_label = |prototypes: &[usize], q: &[f64]| -> u32 {
            let best = prototypes
                .iter()
                .min_by(|&&a, &&b| {
                    self.distance
                        .eval(train.row(a), q)
                        .total_cmp(&self.distance.eval(train.row(b), q))
                })
                .copied()
                .unwrap_or(0);
            labels[best]
        };
        for _ in 0..self.max_passes {
            let mut added = false;
            for (i, &label) in labels.iter().enumerate() {
                if prototypes.contains(&i) {
                    continue;
                }
                if nearest_label(&prototypes, train.row(i)) != label {
                    prototypes.push(i);
                    added = true;
                }
            }
            if !added {
                break;
            }
        }
        prototypes.sort_unstable();
        Ok(prototypes)
    }

    /// Fits a 1-NN model over the selected prototypes, returning the
    /// model and the number of prototypes kept.
    pub fn fit(&self, train: &Matrix, labels: &[u32]) -> Result<(KnnModel, usize), DataError> {
        let prototypes = self.select_prototypes(train, labels)?;
        let sub = train.select_rows(&prototypes);
        let sub_labels: Vec<u32> = prototypes.iter().map(|&i| labels[i]).collect();
        let kept = prototypes.len();
        let model = Knn::new(1)
            .with_distance(self.distance)
            .with_search(Search::KdTree)
            .fit(&sub, &sub_labels)?;
        Ok((model, kept))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_synth::GaussianMixture;

    #[test]
    fn training_set_consistency() {
        // Hart's guarantee: the condensed set classifies every training
        // point correctly under 1-NN.
        let (data, labels) = GaussianMixture::well_separated(3, 2, 60, 6.0)
            .unwrap()
            .generate(2);
        let cnn = CondensedNn::new();
        let (model, _) = cnn.fit(&data, &labels).unwrap();
        let pred = model.predict(&data).unwrap();
        assert_eq!(pred, labels);
    }

    #[test]
    fn condenses_separable_data_aggressively() {
        let (data, labels) = GaussianMixture::well_separated(2, 2, 200, 12.0)
            .unwrap()
            .generate(3);
        let (_, kept) = CondensedNn::new().fit(&data, &labels).unwrap();
        assert!(
            kept < data.rows() / 10,
            "kept {kept} of {} points",
            data.rows()
        );
    }

    #[test]
    fn keeps_more_prototypes_near_class_overlap() {
        let far = GaussianMixture::well_separated(2, 2, 150, 12.0)
            .unwrap()
            .generate(4);
        let near = GaussianMixture::well_separated(2, 2, 150, 2.0)
            .unwrap()
            .generate(4);
        let kept_far = CondensedNn::new().fit(&far.0, &far.1).unwrap().1;
        let kept_near = CondensedNn::new().fit(&near.0, &near.1).unwrap().1;
        assert!(
            kept_near > kept_far,
            "overlap {kept_near} vs separated {kept_far}"
        );
    }

    #[test]
    fn generalizes_close_to_full_knn() {
        let (train, train_l) = GaussianMixture::well_separated(3, 2, 120, 8.0)
            .unwrap()
            .generate(5);
        let (test, test_l) = GaussianMixture::well_separated(3, 2, 60, 8.0)
            .unwrap()
            .generate(6);
        let full = Knn::new(1).fit(&train, &train_l).unwrap();
        let (condensed, kept) = CondensedNn::new().fit(&train, &train_l).unwrap();
        let acc = |pred: Vec<u32>| {
            pred.iter().zip(&test_l).filter(|(p, t)| p == t).count() as f64 / test_l.len() as f64
        };
        let full_acc = acc(full.predict(&test).unwrap());
        let cnn_acc = acc(condensed.predict(&test).unwrap());
        assert!(kept < train.rows());
        assert!(
            cnn_acc >= full_acc - 0.05,
            "condensed {cnn_acc} vs full {full_acc}"
        );
    }

    #[test]
    fn validates_inputs() {
        let m = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(CondensedNn::new().fit(&m, &[0, 1]).is_err());
        let empty = Matrix::from_rows(&[]).unwrap();
        assert!(CondensedNn::new().fit(&empty, &[]).is_err());
    }

    #[test]
    fn single_class_needs_one_prototype() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let protos = CondensedNn::new()
            .select_prototypes(&data, &[0, 0, 0])
            .unwrap();
        assert_eq!(protos, vec![0]);
    }
}
