//! Property tests: the k-d tree backend must be exactly equivalent to
//! brute force for every metric, k, and query.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use dm_dataset::Matrix;
use dm_knn::{Distance, Knn, Search};
use proptest::prelude::*;

fn fixed_width_points(max_n: usize) -> impl Strategy<Value = (Matrix, Vec<Vec<f64>>)> {
    (1usize..4, 2usize..max_n).prop_flat_map(|(d, n)| {
        (
            prop::collection::vec(prop::collection::vec(-100.0f64..100.0, d..=d), n..=n),
            prop::collection::vec(prop::collection::vec(-120.0f64..120.0, d..=d), 1..8),
        )
            .prop_map(|(train, queries)| (Matrix::from_rows(&train).expect("rectangular"), queries))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_equals_brute_force(
        (train, queries) in fixed_width_points(50),
        k in 1usize..8,
        metric_idx in 0usize..4,
    ) {
        let metric = [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Chebyshev,
            Distance::Minkowski(3.0),
        ][metric_idx];
        let labels: Vec<u32> = (0..train.rows() as u32).map(|i| i % 3).collect();
        let brute = Knn::new(k)
            .with_distance(metric)
            .with_search(Search::Brute)
            .fit(&train, &labels)
            .unwrap();
        let kd = Knn::new(k)
            .with_distance(metric)
            .with_search(Search::KdTree)
            .fit(&train, &labels)
            .unwrap();
        for q in &queries {
            prop_assert_eq!(brute.neighbors(q).unwrap(), kd.neighbors(q).unwrap());
            prop_assert_eq!(brute.predict_one(q).unwrap(), kd.predict_one(q).unwrap());
        }
    }

    #[test]
    fn neighbors_sorted_and_self_is_nearest((train, _) in fixed_width_points(40), k in 1usize..6) {
        let labels: Vec<u32> = vec![0; train.rows()];
        let model = Knn::new(k).fit(&train, &labels).unwrap();
        for i in 0..train.rows() {
            let neighbors = model.neighbors(train.row(i)).unwrap();
            // Ascending by (distance, index).
            let sorted = neighbors
                .windows(2)
                .all(|w| w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
            prop_assert!(sorted, "unsorted neighbor list {:?}", neighbors);
            // The query point itself (distance 0) heads the list.
            prop_assert_eq!(neighbors[0].1, 0.0);
        }
    }

    #[test]
    fn condensed_set_is_training_consistent((train, _) in fixed_width_points(30)) {
        use dm_knn::CondensedNn;
        // Labels from a deterministic spatial rule so they are learnable.
        let labels: Vec<u32> = (0..train.rows())
            .map(|i| u32::from(train.row(i)[0] > 0.0))
            .collect();
        let (model, kept) = CondensedNn::new().fit(&train, &labels).unwrap();
        prop_assert!(kept >= 1 && kept <= train.rows());
        prop_assert_eq!(model.predict(&train).unwrap(), labels);
    }
}
